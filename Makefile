# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench bench-smoke examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_BENCH_SCALE=0.25 REPRO_BENCH_WINDOW=10 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py 0.2
	$(PYTHON) examples/bottleneck_shift.py 0.2
	$(PYTHON) examples/capacity_planning.py 0.2
	$(PYTHON) examples/admission_control.py 0.2
	$(PYTHON) examples/service_differentiation.py 0.2
	$(PYTHON) examples/three_tier_chain.py 0.2

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +

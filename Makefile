# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test lint type bench bench-smoke bench-compare obs-overhead serve-demo serve-http-demo slo-check examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	ruff check .

type:
	mypy

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_BENCH_SCALE=0.25 REPRO_BENCH_WINDOW=10 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# gate fresh smoke-scale benchmark artifacts against committed baselines
bench-compare:
	$(PYTHON) benchmarks/compare_baselines.py --time-tolerance 2.0

# measure the instrumentation layer's own decision-path cost
obs-overhead:
	$(PYTHON) -m repro.cli obs overhead --scale 0.2

# two monitored sites behind AIMD admission gates, live
serve-demo:
	$(PYTHON) -m repro.cli serve --sites 2 --profile stress --scale 0.2 --seed 7

# the same two sites behind the HTTP front end; curl /admit, /decide,
# /healthz or /metrics on port 8127, Ctrl-C drains gracefully
serve-http-demo:
	$(PYTHON) -m repro.cli serve-http --sites 2 --profile stress --scale 0.2 --seed 7 --port 8127

# end-to-end SLO check: serve, drive open-loop, gate p99 + zero errors
slo-check:
	$(PYTHON) benchmarks/run_http_slo.py --rps 200 --duration 10
	$(PYTHON) benchmarks/compare_baselines.py --only http --time-tolerance 2.0

examples:
	$(PYTHON) examples/quickstart.py 0.2
	$(PYTHON) examples/bottleneck_shift.py 0.2
	$(PYTHON) examples/capacity_planning.py 0.2
	$(PYTHON) examples/admission_control.py 0.2
	$(PYTHON) examples/service_differentiation.py 0.2
	$(PYTHON) examples/three_tier_chain.py 0.2

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks .repro-cache htmlcov .coverage
	find benchmarks/results -type f ! -name baselines.json -delete 2>/dev/null || true
	find . -name __pycache__ -type d -exec rm -rf {} +

"""Shared benchmark fixtures.

Every benchmark draws its artifacts from one session-wide
:class:`~repro.experiments.pipeline.ExperimentPipeline` at paper scale
(3000 s training runs, 30 s windows).  Set ``REPRO_BENCH_SCALE`` to a
smaller value (e.g. 0.3) for a quick pass.

Each benchmark also writes the regenerated table/figure rows to
``benchmarks/results/<artifact>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

import pytest

from repro.experiments.pipeline import ExperimentPipeline, PipelineConfig, get_pipeline

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_WINDOW = int(os.environ.get("REPRO_BENCH_WINDOW", "30"))

#: the paper-shape assertions are calibrated for full-scale runs with
#: the paper's 30 s windows; smaller smoke-scale runs still regenerate
#: every artifact but only the loose invariants are enforced
PAPER_SCALE = BENCH_SCALE >= 0.8 and BENCH_WINDOW >= 30

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def paper_pipeline() -> ExperimentPipeline:
    return get_pipeline(PipelineConfig(scale=BENCH_SCALE, window=BENCH_WINDOW))


@pytest.fixture(scope="session")
def record_result():
    """Writer that persists an artifact's text rows under results/."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, rows: Iterable[str]) -> str:
        text = "\n".join(rows) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n{text}")
        return text

    return write


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    """True when the run is large enough for strict shape assertions."""
    return PAPER_SCALE

"""R1 — drift-triggered retrain cost: cold build vs. warm cache reload.

The drift loop's zero-downtime claim rests on two numbers: the cold
retrain (full simulation + training, what a cache-less trigger pays)
and the warm retrain (every run and synopsis loaded from the
content-addressed :class:`~repro.parallel.ArtifactCache` — zero
simulation, zero training).  The warm path is the one the serving loop
actually takes after the first trigger at a given traffic scale, so it
is the one ``compare_baselines.py`` gates (``retrain_s.warm_s``, via
``--only retrain``); the cold number rides along for the trajectory.

Also measured: the background-retrainer overlap — a retrain running on
its dedicated pool worker while the submitting thread keeps doing work,
pinning the "never blocks the tick loop" contract with a wall clock.

Numbers land in ``benchmarks/results/BENCH_retrain.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro.drift import BackgroundRetrainer, RetrainSpec, retrain_meter
from repro.telemetry.sampler import HPC_LEVEL

from conftest import BENCH_SCALE, BENCH_WINDOW, RESULTS_DIR

#: like the parallel-engine bench, this times full rebuilds, so it caps
#: its own scale — the cache win is scale-independent, the wall is not
SCALE = min(BENCH_SCALE, 0.25)
WINDOW = min(BENCH_WINDOW, 10)


def test_retrain_cold_vs_warm(record_result, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("retrain-cache"))
    spec = RetrainSpec(
        level=HPC_LEVEL, scale=SCALE, window=WINDOW, cache_dir=cache_dir
    )
    cpu_count = os.cpu_count() or 1

    # cold: the first trigger at this scale builds and stores everything
    cold = retrain_meter(spec)
    assert sum(cold.builds.values()) > 0
    assert not cold.warm

    # warm: same spec, populated cache — zero builds, same payload
    warm = retrain_meter(spec)
    assert warm.warm, f"warm retrain rebuilt artifacts: {warm.builds}"
    assert json.dumps(warm.payload, sort_keys=True) == json.dumps(
        cold.payload, sort_keys=True
    )

    warm_speedup = (
        cold.duration_s / warm.duration_s if warm.duration_s > 0 else None
    )

    # background overlap: while the pool worker rebuilds, the submitting
    # thread must stay free — the ticks it completes meanwhile are the
    # proof the retrain never blocked it
    retrainer = BackgroundRetrainer()
    try:
        start = time.perf_counter()
        retrainer.start(spec)
        foreground_ticks = 0
        while retrainer.poll() is None:
            foreground_ticks += 1
            time.sleep(0.001)
        background_s = time.perf_counter() - start
    finally:
        retrainer.close()
    assert foreground_ticks > 0

    payload = {
        "name": "retrain",
        "scale": SCALE,
        "window": WINDOW,
        "cpu_count": cpu_count,
        "cold_s": round(cold.duration_s, 4),
        "warm_s": round(warm.duration_s, 4),
        "warm_speedup": round(warm_speedup, 3),
        "builds_cold": dict(cold.builds),
        "builds_warm": dict(warm.builds),
        "background_s": round(background_s, 4),
        "foreground_ticks_during_retrain": foreground_ticks,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_retrain.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_result(
        "retrain",
        [f"{key}: {value}" for key, value in payload.items()],
    )

    # the cache win holds on any host — a warm retrain that is not
    # dramatically cheaper than the cold one means the cache missed
    assert warm_speedup >= 2.0

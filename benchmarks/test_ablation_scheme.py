"""A-SCHEME — φ scheme, δ and λ-fallback ablations (Section V.C).

The paper reports that the optimistic/pessimistic schemes "had little
impact on the coordinated accuracy"; δ and the pattern-level fallback
are this reproduction's own design knobs called out in DESIGN.md.
"""

import pytest

from repro.experiments.ablation import (
    run_delta_ablation,
    run_fallback_ablation,
    run_scheme_ablation,
)


@pytest.fixture(scope="module")
def scheme(paper_pipeline):
    return run_scheme_ablation(paper_pipeline)


def test_scheme_has_little_impact(scheme, record_result, benchmark, paper_pipeline):
    record_result("ablation_scheme", scheme.rows())

    meter = paper_pipeline.meter("hpc")
    run = paper_pipeline.test_run("interleaved")
    benchmark.pedantic(
        meter.evaluate_run, args=(run,), rounds=3, iterations=1
    )

    for workload in ("ordering", "browsing", "interleaved", "unknown"):
        assert scheme.spread(workload) < 0.15


def test_delta_sweep(paper_pipeline, record_result, benchmark):
    ablation = run_delta_ablation(paper_pipeline, deltas=(1.0, 3.0, 5.0, 8.0, 12.0))
    benchmark(ablation.rows)
    record_result("ablation_delta", ablation.rows())
    # a usable band exists across two orders of confidence threshold
    for scores in ablation.results.values():
        assert sum(scores.values()) / len(scores) > 0.7


def test_pattern_fallback_contribution(paper_pipeline, record_result, benchmark):
    ablation = run_fallback_ablation(paper_pipeline)
    benchmark(ablation.rows)
    record_result("ablation_fallback", ablation.rows())
    with_fb = ablation.results[True]
    without_fb = ablation.results[False]
    # the refinement never hurts, and it rescues the unknown workload
    for workload in with_fb:
        assert with_fb[workload] >= without_fb[workload] - 0.05
    assert with_fb["unknown"] >= without_fb["unknown"]

"""P2 — fleet-scale CapacityService throughput (sites × windows / s).

Replays one recorded interval stream through ``REPRO_BENCH_SITES``
monitored sites (default 1000, the fleet-scale operating point) twice:
once through the per-site Python loop (``use_fleet=False,
batch_votes=False``) and once through the structure-of-arrays
:class:`~repro.control.fleet.FleetState` backend.  Decisions must be
bit-identical; the fleet path must deliver at least a 5x windows/sec
speedup.  The numbers land in machine-readable
``benchmarks/results/BENCH_serve.json`` (with the host's CPU core
count, so downstream gates can tell a regression from a small runner).
"""

from __future__ import annotations

import json
import os
import time

from repro.control import CapacityService, SiteSpec
from repro.experiments.pipeline import ExperimentPipeline, PipelineConfig
from repro.faults import decision_signature

from conftest import BENCH_SCALE, BENCH_WINDOW, RESULTS_DIR

#: the fleet win is interpreter-bound, not simulation-bound, so the
#: recorded stream can come from a smoke-scale pipeline
SCALE = min(BENCH_SCALE, 0.2)
WINDOW = min(BENCH_WINDOW, 10)

SITES = int(os.environ.get("REPRO_BENCH_SITES", "1000"))
#: decision windows replayed per site
WINDOWS_PER_SITE = 6


def _signatures(decisions):
    per_site = {}
    for name, decision in decisions:
        per_site.setdefault(name, []).append(decision)
    return {
        name: decision_signature(site_decisions)
        for name, site_decisions in per_site.items()
    }


def test_serve_fleet_throughput(record_result):
    pipeline = ExperimentPipeline(
        PipelineConfig(scale=SCALE, window=WINDOW)
    )
    meter = pipeline.meter("hpc")
    records = pipeline.test_run("ordering").records[
        : WINDOW * WINDOWS_PER_SITE
    ]
    assert len(records) == WINDOW * WINDOWS_PER_SITE
    specs = [SiteSpec(name=f"site{i}", seed=i) for i in range(SITES)]

    per_site = CapacityService(
        meter,
        specs,
        labeler=pipeline.labeler,
        use_fleet=False,
        batch_votes=False,
    )
    start = time.perf_counter()
    scalar_decisions = per_site.replay(records)
    per_site_s = time.perf_counter() - start

    fleet = CapacityService(
        meter, specs, labeler=pipeline.labeler, use_fleet=True
    )
    start = time.perf_counter()
    fleet_decisions = fleet.replay(records)
    fleet_s = time.perf_counter() - start

    windows = SITES * WINDOWS_PER_SITE
    assert len(scalar_decisions) == len(fleet_decisions) == windows
    assert _signatures(scalar_decisions) == _signatures(fleet_decisions)

    speedup = per_site_s / fleet_s if fleet_s > 0 else float("inf")
    payload = {
        "name": "serve_fleet",
        "scale": SCALE,
        "window": WINDOW,
        "cpu_count": os.cpu_count() or 1,
        "sites": SITES,
        "windows": windows,
        "per_site_s": round(per_site_s, 4),
        "fleet_s": round(fleet_s, 4),
        "per_site_windows_per_s": round(windows / per_site_s, 1),
        "fleet_windows_per_s": round(windows / fleet_s, 1),
        "fleet_speedup": round(speedup, 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_result(
        "serve_fleet",
        [f"{key}: {value}" for key, value in payload.items()],
    )

    # the tentpole's acceptance bar: >= 5x windows/sec at fleet scale
    assert speedup >= 5.0, (
        f"fleet path only {speedup:.2f}x faster than the per-site loop "
        f"({windows / fleet_s:.0f} vs {windows / per_site_s:.0f} "
        f"windows/s at {SITES} sites)"
    )

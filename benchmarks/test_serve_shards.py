"""P3 — multi-process sharded CapacityService throughput.

Replays one recorded interval stream through ``REPRO_BENCH_SITES``
monitored sites (default 1000) three times: once through the
single-process structure-of-arrays
:class:`~repro.control.fleet.FleetState` backend, and twice through
the 4-worker :class:`~repro.control.shard.ShardedCapacityService` —
supervision off (``recover=False``: no replay buffering, the PR 7
baseline path) and supervision on (the default self-healing
configuration).  All three merged decision streams must be
bit-identical; on a host with at least 4 real cores the sharded path
must deliver at least a 2x windows/sec speedup, and the supervised
run must stay within 10% of the unsupervised one
(``supervised_overhead`` <= 1.10, gated by the comparator).

The numbers ALWAYS land in ``benchmarks/results/BENCH_shards.json``
(with the host's ``cpu_count``) — on smaller hosts the speedup
assertion is then SKIPPED rather than vacuously passed, and the
comparator applies the same cores-aware gate from the artifact.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.control import CapacityService, ShardedCapacityService, SiteSpec
from repro.experiments.pipeline import ExperimentPipeline, PipelineConfig
from repro.faults import decision_signature

from conftest import BENCH_SCALE, BENCH_WINDOW, RESULTS_DIR

#: interpreter-bound like the fleet bench — a smoke-scale stream is fine
SCALE = min(BENCH_SCALE, 0.2)
WINDOW = min(BENCH_WINDOW, 10)

SITES = int(os.environ.get("REPRO_BENCH_SITES", "1000"))
#: decision windows replayed per site
WINDOWS_PER_SITE = 6
WORKERS = 4
#: real cores needed before the speedup floor is meaningful
CORES_NEEDED = 4
SPEEDUP_FLOOR = 2.0


def _signatures(decisions):
    per_site = {}
    for name, decision in decisions:
        per_site.setdefault(name, []).append(decision)
    return {
        name: decision_signature(site_decisions)
        for name, site_decisions in per_site.items()
    }


def test_serve_sharded_throughput(record_result):
    pipeline = ExperimentPipeline(
        PipelineConfig(scale=SCALE, window=WINDOW)
    )
    meter = pipeline.meter("hpc")
    records = pipeline.test_run("ordering").records[
        : WINDOW * WINDOWS_PER_SITE
    ]
    assert len(records) == WINDOW * WINDOWS_PER_SITE
    specs = [SiteSpec(name=f"site{i}", seed=i) for i in range(SITES)]

    fleet = CapacityService(
        meter, specs, labeler=pipeline.labeler, use_fleet=True
    )
    start = time.perf_counter()
    fleet_decisions = fleet.replay(records)
    fleet_s = time.perf_counter() - start

    def timed_sharded(recover):
        with ShardedCapacityService(
            meter,
            specs,
            workers=WORKERS,
            labeler=pipeline.labeler,
            recover=recover,
        ) as sharded:
            start = time.perf_counter()
            decisions = sharded.replay(records)
            return decisions, time.perf_counter() - start

    # one untimed pass absorbs first-fork costs (page faults, pickle
    # memo warm-up) that would otherwise bias whichever timed sharded
    # configuration happens to run first
    timed_sharded(recover=False)
    # PR 7 baseline path: recover=False — no buffering, no supervision
    unsupervised_decisions, unsupervised_s = timed_sharded(recover=False)
    # the default self-healing configuration
    sharded_decisions, sharded_s = timed_sharded(recover=True)

    windows = SITES * WINDOWS_PER_SITE
    assert len(fleet_decisions) == len(sharded_decisions) == windows
    assert len(unsupervised_decisions) == windows
    # the tentpole's correctness bar: bit-identical merged stream,
    # with and without the self-healing supervisor riding the loop
    assert [n for n, _ in sharded_decisions] == [
        n for n, _ in fleet_decisions
    ]
    assert _signatures(sharded_decisions) == _signatures(fleet_decisions)
    assert _signatures(unsupervised_decisions) == _signatures(
        fleet_decisions
    )

    cpu_count = os.cpu_count() or 1
    speedup = fleet_s / sharded_s if sharded_s > 0 else float("inf")
    overhead = (
        sharded_s / unsupervised_s if unsupervised_s > 0 else float("inf")
    )
    payload = {
        "name": "serve_shards",
        "scale": SCALE,
        "window": WINDOW,
        "cpu_count": cpu_count,
        "sites": SITES,
        "workers": WORKERS,
        "windows": windows,
        "fleet_s": round(fleet_s, 4),
        "unsupervised_s": round(unsupervised_s, 4),
        "sharded_s": round(sharded_s, 4),
        "fleet_windows_per_s": round(windows / fleet_s, 1),
        "sharded_windows_per_s": round(windows / sharded_s, 1),
        "shard_speedup": round(speedup, 3),
        "supervised_overhead": round(overhead, 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_shards.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_result(
        "serve_shards",
        [f"{key}: {value}" for key, value in payload.items()],
    )

    if cpu_count < CORES_NEEDED:
        pytest.skip(
            f"shard speedup floor needs {CORES_NEEDED} cores, host has "
            f"{cpu_count} (artifact written; recorded "
            f"{speedup:.2f}x)"
        )
    # the tentpole's acceptance bar: >= 2x windows/sec at 4 workers
    assert speedup >= SPEEDUP_FLOOR, (
        f"sharded path only {speedup:.2f}x faster than single-process "
        f"FleetState ({windows / sharded_s:.0f} vs "
        f"{windows / fleet_s:.0f} windows/s at {SITES} sites, "
        f"{WORKERS} workers)"
    )

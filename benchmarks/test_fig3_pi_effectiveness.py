"""FIG3 — effectiveness of the Productivity Index (paper Figure 3).

Regenerates the normalized PI / throughput comparison on an
ordering-mix capacity-stress run and reports the Corr selection.  The
benchmarked operation is the online PI computation over a full run —
the per-interval cost of maintaining the index.
"""

import pytest

from repro.experiments.fig3 import run_fig3
from repro.core.pi import pi_series


@pytest.fixture(scope="module")
def fig3(paper_pipeline):
    return run_fig3(paper_pipeline, "ordering")


def test_fig3_pi_tracks_throughput(paper_pipeline, fig3, record_result, benchmark):
    run = paper_pipeline.stress_run("ordering")
    benchmark(pi_series, run, fig3.definition)

    record_result("fig3_pi_effectiveness", fig3.rows(every=60))

    # ordering traffic bottlenecks the app tier: Corr must select it
    assert fig3.definition.tier == "app"
    # PI and throughput agree (paper: "in high agreement")
    assert fig3.corr > 0.3
    # both series are normalized to geometric mean 1
    positive = fig3.pi_normalized[fig3.pi_normalized > 0]
    assert abs(float(positive.prod() ** (1.0 / len(positive))) - 1.0) < 0.05


def test_fig3_browsing_selects_db_tier(paper_pipeline, record_result, benchmark):
    result = run_fig3(paper_pipeline, "browsing")
    record_result("fig3_pi_effectiveness_browsing", result.rows(every=60))

    # benchmark Corr-based PI selection over the whole stress run
    from repro.core.pi import select_best_pi

    run = paper_pipeline.stress_run("browsing")
    benchmark.pedantic(select_best_pi, args=(run,), rounds=3, iterations=1)

    assert result.definition.tier == "db"
    assert result.corr > 0.3

"""P1 — parallel engine + artifact cache wall-clock trajectory.

Measures the four costs the `repro.parallel` subsystem trades between:

* serial in-process build (the reference path);
* process-pool fan-out (``--jobs N``), which must be bit-identical;
* cold content-addressed cache (build + store);
* warm cache (load only — zero simulation, zero training).

The numbers land in machine-readable
``benchmarks/results/BENCH_parallel.json`` so the perf trajectory is
tracked across PRs; the hard speedup assertions are conditional on the
host actually having cores to parallelize over.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments.pipeline import ExperimentPipeline, PipelineConfig
from repro.parallel import ArtifactCache, resolve_jobs
from repro.telemetry.persistence import run_to_dict

from conftest import BENCH_SCALE, BENCH_WINDOW, RESULTS_DIR

#: this benchmark times four full rebuilds, so it caps its own scale —
#: the parallel/cache win is scale-independent, the wall-clock is not
SCALE = min(BENCH_SCALE, 0.25)
WINDOW = min(BENCH_WINDOW, 10)

#: artifact subset: both training runs and the HPC-level synopses of
#: the two cheap-to-train learners across both tiers (8 synopses)
WARM_KWARGS = dict(test_workloads=(), levels=("hpc",), learners=("naive", "tan"))


def _timed_warm(pipeline: ExperimentPipeline, jobs: int):
    start = time.perf_counter()
    report = pipeline.warm(jobs=jobs, **WARM_KWARGS)
    return time.perf_counter() - start, report


def test_parallel_engine_and_cache(benchmark, record_result, tmp_path_factory):
    config = PipelineConfig(scale=SCALE, window=WINDOW)
    cpu_count = os.cpu_count() or 1
    parallel_jobs = max(2, resolve_jobs(None))

    # serial reference build
    serial = ExperimentPipeline(config)
    serial_s, serial_report = _timed_warm(serial, jobs=1)
    assert serial_report.runs_built == 2
    assert serial_report.synopses_built == 8

    # process-pool fan-out (oversubscribed on single-core hosts, which
    # still exercises the merge path and the bit-equality guarantee)
    parallel = ExperimentPipeline(config)
    parallel_s, parallel_report = _timed_warm(parallel, jobs=parallel_jobs)
    assert parallel_report.runs_built == 2
    assert parallel_report.synopses_built == 8

    bit_identical = all(
        run_to_dict(serial.training_run(w)) == run_to_dict(parallel.training_run(w))
        for w in ("ordering", "browsing")
    ) and all(
        serial.synopsis(w, tier, "hpc", learner).to_dict()
        == parallel.synopsis(w, tier, "hpc", learner).to_dict()
        for w in ("ordering", "browsing")
        for tier in ("app", "db")
        for learner in ("naive", "tan")
    )
    assert bit_identical

    # cold cache: build everything once and store it
    cache_dir = tmp_path_factory.mktemp("bench-cache")
    cold = ExperimentPipeline(config, cache=ArtifactCache(cache_dir))
    cold_s, _ = _timed_warm(cold, jobs=1)
    assert cold.cache.stores["run"] == 2
    assert cold.cache.stores["synopsis"] == 8

    # warm cache: a fresh process-equivalent pipeline loads everything
    warm = ExperimentPipeline(config, cache=ArtifactCache(cache_dir))
    warm_s, _ = _timed_warm(warm, jobs=1)
    assert warm.builds["run"] == 0
    assert warm.builds["synopsis"] == 0

    parallel_speedup = serial_s / parallel_s if parallel_s > 0 else None
    warm_speedup = cold_s / warm_s if warm_s > 0 else None

    # the ≥2x bars only mean something where the host can deliver them:
    # fan-out needs real cores, the cache win holds everywhere
    if cpu_count >= 4:
        assert parallel_speedup >= 2.0
    assert warm_speedup >= 2.0

    payload = {
        "name": "parallel_engine",
        "scale": SCALE,
        "window": WINDOW,
        "cpu_count": cpu_count,
        "parallel_jobs": parallel_jobs,
        "runs_built": serial_report.runs_built,
        "synopses_built": serial_report.synopses_built,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "parallel_speedup": round(parallel_speedup, 3),
        "cold_cache_s": round(cold_s, 4),
        "warm_cache_s": round(warm_s, 4),
        "warm_speedup": round(warm_speedup, 3),
        "bit_identical": bit_identical,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_result(
        "parallel_engine",
        [f"{key}: {value}" for key, value in payload.items()],
    )

    # headline number: the restart cost of a fully warmed invocation
    def warm_restart():
        restarted = ExperimentPipeline(config, cache=ArtifactCache(cache_dir))
        restarted.warm(jobs=1, **WARM_KWARGS)
        assert restarted.builds["run"] == 0
        return restarted

    benchmark.pedantic(warm_restart, rounds=3, iterations=1)

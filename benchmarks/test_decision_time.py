"""T-TIME — synopsis build + single-decision cost (paper Section V.B).

The paper reports LR 90 ms, Naive 10 ms, SVM 1710 ms, TAN 50 ms with
WEKA on 2008 hardware.  Absolute values are incomparable; the ordering
that drives the paper's choice of TAN must hold:

* naive Bayes is the cheapest to build;
* LR (with WEKA-style internal attribute elimination) costs more than
  naive Bayes;
* the SVM is one to two orders of magnitude more expensive than TAN.
"""

import pytest

from repro.experiments.timing import run_timing
from repro.learners.base import make_learner


@pytest.fixture(scope="module")
def training_data(paper_pipeline):
    dataset = paper_pipeline.dataset("ordering", "app", "hpc", training=True)
    return dataset.matrix(), dataset.labels()


@pytest.mark.parametrize("learner", ["lr", "naive", "svm", "tan"])
def test_build_and_decide(benchmark, training_data, learner):
    X, y = training_data
    probe = X[:1]

    def build_and_decide():
        model = make_learner(learner)
        model.fit(X, y)
        return model.predict(probe)

    benchmark(build_and_decide)


def test_timing_ordering_matches_paper(paper_pipeline, record_result, benchmark):
    result = benchmark.pedantic(
        run_timing,
        args=(paper_pipeline,),
        kwargs={"repeats": 3},
        rounds=1,
        iterations=1,
    )
    record_result("decision_time", result.rows())
    ms = result.milliseconds
    assert ms["naive"] < ms["lr"]
    assert ms["naive"] < ms["svm"]
    assert ms["tan"] < ms["svm"]
    assert ms["svm"] > 3 * ms["tan"]

"""T-TIME — synopsis build + single-decision cost (paper Section V.B).

The paper reports LR 90 ms, Naive 10 ms, SVM 1710 ms, TAN 50 ms with
WEKA on 2008 hardware.  Absolute values are incomparable; the ordering
that drives the paper's choice of TAN must hold:

* naive Bayes is the cheapest to build;
* LR (with WEKA-style internal attribute elimination) costs more than
  naive Bayes;
* the SVM is one to two orders of magnitude more expensive than TAN.
"""

import time

import numpy as np
import pytest

from repro.experiments.timing import run_timing
from repro.learners.base import make_learner


@pytest.fixture(scope="module")
def training_data(paper_pipeline):
    dataset = paper_pipeline.dataset("ordering", "app", "hpc", training=True)
    return dataset.matrix(), dataset.labels()


@pytest.mark.parametrize("learner", ["lr", "naive", "svm", "tan"])
def test_build_and_decide(benchmark, training_data, learner):
    X, y = training_data
    probe = X[:1]

    def build_and_decide():
        model = make_learner(learner)
        model.fit(X, y)
        return model.predict(probe)

    benchmark(build_and_decide)


def test_timing_ordering_matches_paper(paper_pipeline, record_result, benchmark):
    result = benchmark.pedantic(
        run_timing,
        args=(paper_pipeline,),
        kwargs={"repeats": 3},
        rounds=1,
        iterations=1,
    )
    record_result("decision_time", result.rows())
    ms = result.milliseconds
    assert ms["naive"] < ms["lr"]
    assert ms["naive"] < ms["svm"]
    assert ms["tan"] < ms["svm"]
    assert ms["svm"] > 3 * ms["tan"]


def test_batch_decisions_beat_per_window_loop(paper_pipeline):
    """The vectorized decision path is >=3x faster with identical output.

    Scores >=1000 windows through a trained synopsis both ways: one
    predict() call per window dict (the naive online loop) versus a
    single predict_batch() over the memoized design matrix (the path
    the offline experiments use).
    """
    synopsis = paper_pipeline.synopsis("ordering", "app", "hpc", "tan")
    dataset = paper_pipeline.dataset("ordering", "app", "hpc", training=False)
    reps = -(-1000 // len(dataset))  # ceil: tile the run to >=1000 windows
    instances = list(dataset.instances) * reps
    X = np.tile(dataset.matrix(synopsis.attributes), (reps, 1))
    assert len(instances) >= 1000

    loop_out = np.array(
        [synopsis.predict(inst.attributes) for inst in instances]
    )
    batch_out = synopsis.predict_batch(X)
    assert np.array_equal(loop_out, batch_out)

    loop_best = float("inf")
    batch_best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for inst in instances:
            synopsis.predict(inst.attributes)
        loop_best = min(loop_best, time.perf_counter() - start)
        start = time.perf_counter()
        synopsis.predict_batch(X)
        batch_best = min(batch_best, time.perf_counter() - start)
    assert loop_best >= 3 * batch_best, (
        f"batch path only {loop_best / batch_best:.1f}x faster "
        f"({loop_best * 1e3:.1f} ms loop vs {batch_best * 1e3:.1f} ms batch "
        f"over {len(instances)} windows)"
    )

"""Compare fresh benchmark results against committed baselines.

The bench-regression CI job (and any developer, locally) runs the
benchmark suite and then this comparator.  Five artifacts are
tracked, covering the repository's performance-sensitive subsystems:

* ``decision_time.txt`` — per-learner synopsis build + decide cost;
* ``BENCH_parallel.json`` — serial build, cold-cache and warm-cache
  wall clock (``parallel_s`` is deliberately ignored: it depends on
  the host's core count, not on the code);
* ``BENCH_serve.json`` — fleet-scale serving throughput: the per-site
  loop and the structure-of-arrays fleet path over the same 1k-site
  replay;
* ``BENCH_shards.json`` — the multi-process sharded service against
  the single-process fleet path (absolute wall clocks are deliberately
  not baseline-compared: like ``parallel_s`` they depend on the host's
  core count; the recorded ``shard_speedup`` gates instead);
* ``fig4_coordinated_accuracy.txt`` — coordinated prediction accuracy
  across the four workloads at both metric levels.

Two more artifacts gate standalone because they come from dedicated CI
jobs, not the benchmark suite.  ``BENCH_retrain.json`` (``--only
retrain``, written by ``benchmarks/test_retrain.py`` for the
drift-retrain job) asserts the warm retrain reused the artifact cache —
zero rebuilt artifacts and a >= 2x cold/warm speedup on any host — and
compares its wall clock against the ``retrain_warm_s`` baseline on
hosts with at least 4 cores.  And ``BENCH_http.json`` (written by ``repro loadgen``
against a live ``repro serve-http``), is gated separately via
``--only http`` because it is produced by the http-slo CI job, not the
benchmark suite: its admit-latency percentiles compare against the
``http_ms`` baselines, its p99 must clear a hard SLO ceiling, and its
error/timeout/5xx counters must all be zero.  Latency gates are
cores-aware — hosts below 4 CPUs report SKIPPED rather than passing an
SLO they cannot meaningfully measure — but the zero-error gates apply
on any host.

Timing metrics are compared one-sidedly: a fresh number may beat the
baseline by any margin but may exceed it only by ``--time-tolerance``
(a fraction; 0.2 means +20%).  Accuracy metrics are deterministic at
fixed seed and scale, so they must match the baseline exactly unless
``--accuracy-tolerance`` loosens them.

On top of the baseline deltas, three *speedup floors* gate from the
fresh artifacts alone.  The fleet-serving floor (``fleet_speedup``
>= 5) compares two interpreter-bound runs on the same host, so it
always applies; the parallel-engine floor (``parallel_speedup`` >= 2)
and the sharded-serving floor (``shard_speedup`` >= 2 at 4 workers)
need real cores, so hosts reporting fewer than 4 CPUs show those rows
as SKIPPED instead of letting a 1-core runner pass them vacuously —
each bench records ``cpu_count`` in its artifact for exactly this.
One *overhead ceiling* gates the other way: the self-healing
supervisor's no-fault tax (``supervised_overhead``, supervised over
supervision-off sharded wall clock) must stay at or below 1.10x.

Usage::

    # refresh committed baselines after an intentional perf change
    REPRO_BENCH_SCALE=0.25 REPRO_BENCH_WINDOW=10 \
        python -m pytest benchmarks/test_decision_time.py \
            benchmarks/test_parallel_engine.py \
            benchmarks/test_serve_fleet.py \
            benchmarks/test_serve_shards.py \
            benchmarks/test_fig4_coordinated_accuracy.py
    python benchmarks/compare_baselines.py --update

    # gate a change (CI uses a wider tolerance for shared runners)
    python benchmarks/compare_baselines.py --time-tolerance 0.2

Exit status: 0 all within tolerance, 1 regression, 2 missing inputs.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

RESULTS_DIR = Path(__file__).parent / "results"
BASELINES = RESULTS_DIR / "baselines.json"

#: BENCH_parallel.json keys that gate (host-independent wall clocks)
PARALLEL_KEYS = ("serial_s", "cold_cache_s", "warm_cache_s")

#: BENCH_serve.json keys that gate against the committed baseline
SERVE_KEYS = ("per_site_s", "fleet_s")

#: hard speedup floors checked from the fresh artifacts alone:
#: (artifact, speedup key, floor, cores needed or None for always)
SPEEDUP_FLOORS = (
    ("BENCH_parallel.json", "parallel_speedup", 2.0, 4),
    ("BENCH_serve.json", "fleet_speedup", 5.0, None),
    ("BENCH_shards.json", "shard_speedup", 2.0, 4),
)

#: hard overhead ceilings checked from the fresh artifacts alone:
#: (artifact, ratio key, ceiling, cores needed or None for always).
#: ``supervised_overhead`` is the self-healing supervisor's no-fault
#: tax: supervised sharded wall clock over the supervision-off run on
#: the same host — a ratio of two like runs, so host-independent.
OVERHEAD_CEILINGS = (
    ("BENCH_shards.json", "supervised_overhead", 1.10, 4),
)

#: BENCH_http.json admit-latency percentiles gated against ``http_ms``
HTTP_KEYS = ("p50", "p99", "p999")

#: the warm-retrain wall clock gated against ``retrain_warm_s``; the
#: cache-reuse floor (``warm_speedup`` >= 2) is a ratio of two like
#: runs on the same host, so it applies everywhere
RETRAIN_WARM_SPEEDUP_FLOOR = 2.0

#: cores below which the warm-retrain wall-clock comparison SKIPs
#: (shared 1-core runners jitter; the drift-retrain CI job separately
#: asserts its runner is big enough, so the gate never passes vacuously)
RETRAIN_CORES = 4

#: the hard SLO on the HTTP decision path: admit p99 in milliseconds.
#: Calibrated from a loaded smoke run (p99 ~7 ms on a small host) with
#: generous headroom for shared CI runners.
HTTP_SLO_P99_MS = 50.0

#: cores below which latency gates SKIP instead of passing vacuously
HTTP_SLO_CORES = 4

_DECISION_ROW = re.compile(r"^(\w+)\s+([\d.]+)\s+(?:[\d.]+|-)\s*$")
_FIG4_ROW = re.compile(
    r"^(\w+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s*$"
)
_FIG4_COLUMNS = ("os_ba", "hpc_ba", "os_bottleneck", "hpc_bottleneck")


def parse_decision_time(path: Path) -> Dict[str, float]:
    """``{learner: measured_ms}`` from the T-TIME text artifact."""
    out: Dict[str, float] = {}
    for line in path.read_text().splitlines():
        match = _DECISION_ROW.match(line.strip())
        if match and match.group(1) != "Learner":
            out[match.group(1)] = float(match.group(2))
    if not out:
        raise ValueError(f"no learner rows found in {path}")
    return out


def parse_fig4(path: Path) -> Dict[str, Dict[str, float]]:
    """``{workload: {column: value}}`` from the Fig. 4 text artifact.

    The trailing bar-chart lines contain ``|`` and never match the
    four-float row pattern, so only the table body is read.
    """
    out: Dict[str, Dict[str, float]] = {}
    for line in path.read_text().splitlines():
        match = _FIG4_ROW.match(line.strip())
        if match and match.group(1) != "Workload":
            out[match.group(1)] = {
                column: float(match.group(i + 2))
                for i, column in enumerate(_FIG4_COLUMNS)
            }
    if not out:
        raise ValueError(f"no workload rows found in {path}")
    return out


def parse_parallel(path: Path) -> Dict[str, float]:
    payload = json.loads(path.read_text())
    return {key: float(payload[key]) for key in PARALLEL_KEYS}


def parse_serve(path: Path) -> Dict[str, float]:
    payload = json.loads(path.read_text())
    return {key: float(payload[key]) for key in SERVE_KEYS}


def parse_http(path: Path) -> Dict[str, float]:
    """``{percentile: ms}`` from the loadgen's BENCH_http.json."""
    latency = json.loads(path.read_text())["admit_latency_ms"]
    return {key: float(latency[key]) for key in HTTP_KEYS}


def check_http_slo(
    results_dir: Path, failures: List[str], rows: List[str]
) -> None:
    """Gate the HTTP decision path: zero errors, p99 under the SLO.

    The correctness gates (errors / timeouts / 5xx all zero, and the
    run actually drove traffic) apply on any host.  The p99 ceiling is
    cores-aware like the parallelism floors: below ``HTTP_SLO_CORES``
    the row reports SKIPPED — the http-slo CI job separately asserts
    its runner is big enough, so the gate never passes vacuously there.
    """
    payload = json.loads((results_dir / "BENCH_http.json").read_text())
    requests = int(payload.get("requests", 0))
    verdict = "ok" if requests > 0 else "REGRESSION"
    rows.append(f"  http.{'requests':16} {requests:21d}  must be > 0  {verdict}")
    if requests <= 0:
        failures.append("BENCH_http.json: the loadgen drove no requests")
    for key in ("errors", "timeouts", "status_5xx"):
        count = int(payload.get(key, 0))
        verdict = "ok" if count == 0 else "REGRESSION"
        rows.append(f"  http.{key:16} {count:21d}  must be 0    {verdict}")
        if count:
            failures.append(f"BENCH_http.json:{key}: {count} != 0")
    p99 = float(payload["admit_latency_ms"]["p99"])
    cpu_count = int(payload.get("cpu_count") or 1)
    if cpu_count < HTTP_SLO_CORES:
        rows.append(
            f"  http.p99          {p99:18.3f} ms  SLO {HTTP_SLO_P99_MS:.0f} ms"
            f"      SKIPPED ({cpu_count} < {HTTP_SLO_CORES} cores)"
        )
        return
    verdict = "ok" if p99 <= HTTP_SLO_P99_MS else "REGRESSION"
    rows.append(
        f"  http.p99          {p99:18.3f} ms  SLO {HTTP_SLO_P99_MS:.0f} ms"
        f"      {verdict}"
    )
    if p99 > HTTP_SLO_P99_MS:
        failures.append(
            f"BENCH_http.json: admit p99 {p99:.3f} ms breaches the "
            f"{HTTP_SLO_P99_MS:.0f} ms SLO"
        )


def collect(results_dir: Path) -> Dict[str, object]:
    """Current benchmark numbers, or raise FileNotFoundError."""
    shards = json.loads((results_dir / "BENCH_shards.json").read_text())
    return {
        "decision_time_ms": parse_decision_time(
            results_dir / "decision_time.txt"
        ),
        "parallel_engine_s": parse_parallel(
            results_dir / "BENCH_parallel.json"
        ),
        "serve_s": parse_serve(results_dir / "BENCH_serve.json"),
        # informational (floor/ceiling-gated from the fresh artifact,
        # never baseline-compared: wall clocks scale with the host's
        # cores)
        "shard_speedup": float(shards["shard_speedup"]),
        "supervised_overhead": float(
            shards.get("supervised_overhead", 1.0)
        ),
        "fig4_accuracy": parse_fig4(
            results_dir / "fig4_coordinated_accuracy.txt"
        ),
    }


def check_speedup_floors(
    results_dir: Path, failures: List[str], rows: List[str]
) -> None:
    """Gate the recorded speedups against their hard floors.

    A floor that needs more cores than the artifact's ``cpu_count``
    reports SKIPPED — a small runner must not pass a parallelism gate
    it never actually exercised.
    """
    for artifact, key, floor, cores_needed in SPEEDUP_FLOORS:
        payload = json.loads((results_dir / artifact).read_text())
        speedup = float(payload[key])
        cpu_count = int(payload.get("cpu_count", 1))
        if cores_needed is not None and cpu_count < cores_needed:
            rows.append(
                f"  {key:28} {speedup:6.2f}x  floor {floor:.1f}x  "
                f"SKIPPED ({cpu_count} < {cores_needed} cores)"
            )
            continue
        verdict = "ok" if speedup >= floor else "REGRESSION"
        rows.append(
            f"  {key:28} {speedup:6.2f}x  floor {floor:.1f}x  {verdict}"
        )
        if speedup < floor:
            failures.append(
                f"{artifact}:{key}: {speedup:.2f}x below the "
                f"{floor:.1f}x floor"
            )


def check_overhead_ceilings(
    results_dir: Path, failures: List[str], rows: List[str]
) -> None:
    """Gate the recorded overhead ratios against their hard ceilings.

    Mirrors :func:`check_speedup_floors` with the inequality flipped:
    a ratio *above* its ceiling is a regression.  Artifacts written
    before the ratio existed pass (there is nothing to gate yet).
    """
    for artifact, key, ceiling, cores_needed in OVERHEAD_CEILINGS:
        payload = json.loads((results_dir / artifact).read_text())
        if key not in payload:
            rows.append(
                f"  {key:28}    n/a   ceiling {ceiling:.2f}x  "
                f"SKIPPED (not recorded)"
            )
            continue
        overhead = float(payload[key])
        cpu_count = int(payload.get("cpu_count", 1))
        if cores_needed is not None and cpu_count < cores_needed:
            rows.append(
                f"  {key:28} {overhead:6.2f}x  ceiling {ceiling:.2f}x  "
                f"SKIPPED ({cpu_count} < {cores_needed} cores)"
            )
            continue
        verdict = "ok" if overhead <= ceiling else "REGRESSION"
        rows.append(
            f"  {key:28} {overhead:6.2f}x  ceiling {ceiling:.2f}x  "
            f"{verdict}"
        )
        if overhead > ceiling:
            failures.append(
                f"{artifact}:{key}: {overhead:.2f}x above the "
                f"{ceiling:.2f}x ceiling"
            )


def _compare_timing(
    label: str,
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    tolerance: float,
    failures: List[str],
    rows: List[str],
) -> None:
    for key, base in sorted(baseline.items()):
        current: Optional[float] = fresh.get(key)
        if current is None:
            failures.append(f"{label}.{key}: missing from fresh results")
            continue
        ceiling = base * (1.0 + tolerance)
        verdict = "ok" if current <= ceiling else "REGRESSION"
        rows.append(
            f"  {label}.{key:16} base {base:10.4f}  "
            f"now {current:10.4f}  ceiling {ceiling:10.4f}  {verdict}"
        )
        if current > ceiling:
            failures.append(
                f"{label}.{key}: {current:.4f} exceeds "
                f"{base:.4f} +{tolerance * 100:.0f}% = {ceiling:.4f}"
            )


def _compare_accuracy(
    baseline: Dict[str, Dict[str, float]],
    fresh: Dict[str, Dict[str, float]],
    tolerance: float,
    failures: List[str],
    rows: List[str],
) -> None:
    for workload, columns in sorted(baseline.items()):
        got = fresh.get(workload)
        if got is None:
            failures.append(f"fig4.{workload}: missing from fresh results")
            continue
        for column, base in columns.items():
            current = got.get(column)
            if current is None:
                failures.append(f"fig4.{workload}.{column}: missing")
                continue
            delta = abs(current - base)
            verdict = "ok" if delta <= tolerance else "MISMATCH"
            rows.append(
                f"  fig4.{workload}.{column:15} base {base:6.3f}  "
                f"now {current:6.3f}  {verdict}"
            )
            if delta > tolerance:
                failures.append(
                    f"fig4.{workload}.{column}: {current:.3f} != "
                    f"{base:.3f} (tolerance {tolerance})"
                )


def compare(
    baselines: Dict[str, object],
    fresh: Dict[str, object],
    *,
    time_tolerance: float,
    accuracy_tolerance: float,
) -> Tuple[List[str], List[str]]:
    """(report rows, failure messages) for fresh vs. baseline."""
    failures: List[str] = []
    rows: List[str] = []
    _compare_timing(
        "decision_time_ms",
        baselines["decision_time_ms"],
        fresh["decision_time_ms"],
        time_tolerance,
        failures,
        rows,
    )
    _compare_timing(
        "parallel_engine_s",
        baselines["parallel_engine_s"],
        fresh["parallel_engine_s"],
        time_tolerance,
        failures,
        rows,
    )
    _compare_timing(
        "serve_s",
        baselines.get("serve_s", {}),
        fresh["serve_s"],
        time_tolerance,
        failures,
        rows,
    )
    _compare_accuracy(
        baselines["fig4_accuracy"],
        fresh["fig4_accuracy"],
        accuracy_tolerance,
        failures,
        rows,
    )
    return rows, failures


def main_http(args: argparse.Namespace) -> int:
    """The ``--only http`` path: gate BENCH_http.json by itself.

    The artifact is *required* — a missing file is exit 2, never a
    pass — and ``--update`` merges the fresh ``http_ms`` percentiles
    into the committed baselines without touching the suite's numbers.
    """
    http_path = args.results_dir / "BENCH_http.json"
    try:
        fresh = parse_http(http_path)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"cannot read {http_path}: {exc}")
        print(
            "drive the server first, e.g.\n"
            "  make slo-check\n"
            "or manually:\n"
            "  repro serve-http --sites 2 --scale 0.2 --port 8127 "
            "--duration 45 &\n"
            "  repro loadgen --url http://127.0.0.1:8127 --rps 200 "
            "--duration 10 --out benchmarks/results/BENCH_http.json"
        )
        return 2

    if args.update:
        merged: Dict[str, object] = {}
        if args.baselines.is_file():
            merged = json.loads(args.baselines.read_text())
        merged["http_ms"] = fresh
        args.baselines.parent.mkdir(parents=True, exist_ok=True)
        args.baselines.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"http_ms baselines updated: {args.baselines}")
        return 0

    if not args.baselines.is_file():
        print(f"no baselines at {args.baselines}; run with --update first")
        return 2
    baselines = json.loads(args.baselines.read_text())
    if "http_ms" not in baselines:
        print(
            f"{args.baselines} has no http_ms section; "
            "run --only http --update first"
        )
        return 2

    failures: List[str] = []
    rows: List[str] = []
    payload = json.loads(http_path.read_text())
    cpu_count = int(payload.get("cpu_count") or 1)
    if cpu_count >= HTTP_SLO_CORES:
        _compare_timing(
            "http_ms",
            baselines["http_ms"],
            fresh,
            args.time_tolerance,
            failures,
            rows,
        )
    else:
        rows.append(
            f"  http_ms baseline comparison SKIPPED "
            f"({cpu_count} < {HTTP_SLO_CORES} cores)"
        )
    check_http_slo(args.results_dir, failures, rows)
    print(
        f"gating {http_path} against {args.baselines} "
        f"(time +{args.time_tolerance * 100:.0f}%, "
        f"SLO p99 <= {HTTP_SLO_P99_MS:.0f} ms)"
    )
    for row in rows:
        print(row)
    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("\nhttp decision path within SLO")
    return 0


def main_retrain(args: argparse.Namespace) -> int:
    """The ``--only retrain`` path: gate BENCH_retrain.json by itself.

    Three gates.  The cache-reuse gates apply on any host: a warm
    retrain must report zero run/synopsis builds (the artifact cache
    satisfied everything) and must beat the cold build by at least
    ``RETRAIN_WARM_SPEEDUP_FLOOR`` (a same-host ratio).  The
    ``retrain_warm_s`` wall-clock baseline is cores-aware like the
    latency gates: below ``RETRAIN_CORES`` the row reports SKIPPED —
    the drift-retrain CI job separately asserts its runner is big
    enough, so the comparison never passes vacuously there.
    """
    retrain_path = args.results_dir / "BENCH_retrain.json"
    try:
        payload = json.loads(retrain_path.read_text())
        warm_s = float(payload["warm_s"])
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"cannot read {retrain_path}: {exc}")
        print(
            "run the retrain benchmark first, e.g.\n"
            "  REPRO_BENCH_SCALE=0.25 REPRO_BENCH_WINDOW=10 "
            "python -m pytest benchmarks/test_retrain.py"
        )
        return 2

    if args.update:
        merged: Dict[str, object] = {}
        if args.baselines.is_file():
            merged = json.loads(args.baselines.read_text())
        merged["retrain_warm_s"] = warm_s
        args.baselines.parent.mkdir(parents=True, exist_ok=True)
        args.baselines.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"retrain_warm_s baseline updated: {args.baselines}")
        return 0

    if not args.baselines.is_file():
        print(f"no baselines at {args.baselines}; run with --update first")
        return 2
    baselines = json.loads(args.baselines.read_text())
    if "retrain_warm_s" not in baselines:
        print(
            f"{args.baselines} has no retrain_warm_s entry; "
            "run --only retrain --update first"
        )
        return 2

    failures: List[str] = []
    rows: List[str] = []

    # cache reuse: the warm retrain must not rebuild anything, anywhere
    rebuilt = sum(int(v) for v in payload.get("builds_warm", {}).values())
    verdict = "ok" if rebuilt == 0 else "REGRESSION"
    rows.append(
        f"  retrain.warm_builds  {rebuilt:18d}  must be 0    {verdict}"
    )
    if rebuilt:
        failures.append(
            f"BENCH_retrain.json: warm retrain rebuilt {rebuilt} "
            f"artifact(s) instead of loading the cache"
        )
    speedup = float(payload.get("warm_speedup", 0.0))
    verdict = (
        "ok" if speedup >= RETRAIN_WARM_SPEEDUP_FLOOR else "REGRESSION"
    )
    rows.append(
        f"  retrain.warm_speedup {speedup:17.2f}x  floor "
        f"{RETRAIN_WARM_SPEEDUP_FLOOR:.1f}x  {verdict}"
    )
    if speedup < RETRAIN_WARM_SPEEDUP_FLOOR:
        failures.append(
            f"BENCH_retrain.json: warm_speedup {speedup:.2f}x below the "
            f"{RETRAIN_WARM_SPEEDUP_FLOOR:.1f}x cache-reuse floor"
        )

    cpu_count = int(payload.get("cpu_count") or 1)
    if cpu_count >= RETRAIN_CORES:
        _compare_timing(
            "retrain_s",
            {"warm_s": float(baselines["retrain_warm_s"])},
            {"warm_s": warm_s},
            args.time_tolerance,
            failures,
            rows,
        )
    else:
        rows.append(
            f"  retrain_warm_s baseline comparison SKIPPED "
            f"({cpu_count} < {RETRAIN_CORES} cores)"
        )

    print(
        f"gating {retrain_path} against {args.baselines} "
        f"(time +{args.time_tolerance * 100:.0f}%, warm speedup >= "
        f"{RETRAIN_WARM_SPEEDUP_FLOOR:.1f}x)"
    )
    for row in rows:
        print(row)
    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("\nwarm retrain reuses the artifact cache")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=RESULTS_DIR,
        help="directory holding the fresh benchmark artifacts",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=BASELINES,
        help="committed baselines JSON to compare against (or update)",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=0.2,
        help="allowed fractional slowdown for timing metrics "
        "(0.2 = +20%%; speedups always pass)",
    )
    parser.add_argument(
        "--accuracy-tolerance",
        type=float,
        default=0.0,
        help="allowed absolute accuracy drift (default: exact match)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the fresh numbers as the new baselines and exit",
    )
    parser.add_argument(
        "--only",
        choices=("all", "http", "retrain"),
        default="all",
        help="'http' gates BENCH_http.json alone (the http-slo CI job "
        "produces no other artifacts); 'retrain' gates "
        "BENCH_retrain.json alone (likewise the drift-retrain job); "
        "'all' gates the benchmark suite",
    )
    args = parser.parse_args(argv)

    if args.only == "http":
        return main_http(args)
    if args.only == "retrain":
        return main_retrain(args)

    try:
        fresh = collect(args.results_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"cannot read fresh benchmark results: {exc}")
        print(
            "run the benchmark suite first, e.g.\n"
            "  REPRO_BENCH_SCALE=0.25 REPRO_BENCH_WINDOW=10 "
            "python -m pytest benchmarks/test_decision_time.py "
            "benchmarks/test_parallel_engine.py "
            "benchmarks/test_serve_fleet.py "
            "benchmarks/test_serve_shards.py "
            "benchmarks/test_fig4_coordinated_accuracy.py"
        )
        return 2

    if args.update:
        args.baselines.parent.mkdir(parents=True, exist_ok=True)
        args.baselines.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"baselines updated: {args.baselines}")
        return 0

    if not args.baselines.is_file():
        print(f"no baselines at {args.baselines}; run with --update first")
        return 2
    baselines = json.loads(args.baselines.read_text())

    rows, failures = compare(
        baselines,
        fresh,
        time_tolerance=args.time_tolerance,
        accuracy_tolerance=args.accuracy_tolerance,
    )
    check_speedup_floors(args.results_dir, failures, rows)
    check_overhead_ceilings(args.results_dir, failures, rows)
    print(
        f"comparing {args.results_dir} against {args.baselines} "
        f"(time +{args.time_tolerance * 100:.0f}%, "
        f"accuracy ±{args.accuracy_tolerance})"
    )
    for row in rows:
        print(row)
    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

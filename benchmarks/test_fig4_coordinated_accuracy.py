"""FIG4a/FIG4b — coordinated prediction accuracy (paper Figure 4).

Regenerates both panels (overload prediction and bottleneck
identification, OS vs HPC, four workloads) and benchmarks the online
coordinated decision, which the paper bounds at 50 ms.
"""

import pytest

from repro.experiments.fig4 import run_fig4
from repro.telemetry.sampler import HPC_LEVEL, OS_LEVEL


@pytest.fixture(scope="module")
def fig4(paper_pipeline):
    return run_fig4(paper_pipeline)


def test_fig4a_overload_prediction(fig4, record_result, paper_pipeline, benchmark, paper_scale):
    record_result("fig4_coordinated_accuracy", fig4.rows())

    # benchmark one coordinated online decision (paper: <= 50 ms)
    meter = paper_pipeline.meter(HPC_LEVEL)
    instance = meter.instances_for(paper_pipeline.test_run("ordering"))[0]
    result = benchmark(meter.predict_window, instance.metrics)
    assert result.state in (0, 1)
    assert benchmark.stats["mean"] < 0.050  # the paper's 50 ms budget

    # HPC: ~90% for a-priori-known traffic, >85% with bottleneck
    # shifting, ~80% or better for unknown traffic
    assert fig4.get("ordering", HPC_LEVEL).overload_ba > 0.85
    assert fig4.get("browsing", HPC_LEVEL).overload_ba > 0.85
    assert fig4.get("interleaved", HPC_LEVEL).overload_ba > 0.85
    assert fig4.get("unknown", HPC_LEVEL).overload_ba > 0.75

    # OS metrics collapse on the browsing mix (strict only at paper
    # scale: short smoke runs have too few boundary windows)
    if paper_scale:
        assert (
            fig4.get("browsing", HPC_LEVEL).overload_ba
            > fig4.get("browsing", OS_LEVEL).overload_ba + 0.05
        )


def test_fig4b_bottleneck_identification(fig4, paper_pipeline, benchmark):
    # benchmark a full-run coordinated evaluation (per-window decisions)
    meter = paper_pipeline.meter(HPC_LEVEL)
    run = paper_pipeline.test_run("browsing")
    benchmark.pedantic(meter.evaluate_run, args=(run,), rounds=3, iterations=1)

    for workload in ("ordering", "browsing", "interleaved", "unknown"):
        cell = fig4.get(workload, HPC_LEVEL)
        assert cell.bottleneck_accuracy > 0.8

    # the interleaved workload genuinely shifts the bottleneck and the
    # predictor still names the right tier most of the time
    assert fig4.get("interleaved", HPC_LEVEL).bottleneck_accuracy > 0.8


def test_fig4_trends_match_between_panels(fig4, benchmark):
    """Paper: bottleneck accuracy trends like overload accuracy."""
    benchmark(fig4.rows)

    hpc_overload = [
        fig4.get(w, HPC_LEVEL).overload_ba
        for w in ("ordering", "browsing", "interleaved", "unknown")
    ]
    hpc_bneck = [
        fig4.get(w, HPC_LEVEL).bottleneck_accuracy
        for w in ("ordering", "browsing", "interleaved", "unknown")
    ]
    # both panels stay in a tight high band rather than diverging
    assert max(hpc_overload) - min(hpc_overload) < 0.2
    assert max(hpc_bneck) - min(hpc_bneck) < 0.25

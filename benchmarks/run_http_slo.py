"""Drive the HTTP SLO benchmark end to end: serve, load, report.

Starts ``repro serve-http`` as a subprocess, waits for ``/healthz``,
runs the seeded open-loop load driver against it in-process, writes
``BENCH_http.json``, then SIGTERMs the server and checks it drained
cleanly.  The artifact is gated afterwards by::

    python benchmarks/compare_baselines.py --only http

The server trains a fresh meter at ``--scale`` unless ``--meter``
points at a saved one (``repro train --out meter.json`` makes one in a
few seconds at smoke scale and is the cheaper path for repeat runs).
"""

from __future__ import annotations

import argparse
import json
import shlex
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).parent / "results"


def wait_for_port(stdout) -> int:
    """Parse the bound port from the server's '# serving ...' line."""
    deadline = time.monotonic() + 180.0
    while time.monotonic() < deadline:
        line = stdout.readline()
        if not line:
            raise RuntimeError("server exited before announcing its port")
        sys.stdout.write(line)
        sys.stdout.flush()
        if line.startswith("# serving") and "http://" in line:
            return int(line.split("http://")[1].split()[0].rsplit(":", 1)[1])
    raise RuntimeError("server did not announce its port within 180s")


def wait_for_health(port: int, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    url = f"http://127.0.0.1:{port}/healthz"
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=2.0) as response:
                if response.status == 200:
                    return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.25)
    raise RuntimeError(f"server never became healthy on port {port}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sites", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--meter", default=None, help="saved meter JSON")
    parser.add_argument("--rps", type=float, default=200.0)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--mix", default="tpcw")
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument(
        "--out", type=Path, default=RESULTS_DIR / "BENCH_http.json"
    )
    parser.add_argument(
        "--server-args",
        default="",
        help="extra arguments appended to the serve-http command "
        "(e.g. '--retrain-on-drift --cache-dir .repro-cache')",
    )
    parser.add_argument(
        "--require-swap",
        action="store_true",
        help="fail unless the server hot-swapped its meter during the "
        "run AND the load report shows zero errors/timeouts/5xx — the "
        "zero-downtime gate of the drift-retrain CI job",
    )
    args = parser.parse_args(argv)

    command = [
        sys.executable, "-m", "repro.cli", "serve-http",
        "--sites", str(args.sites),
        "--scale", str(args.scale),
        "--seed", str(args.seed),
        "--port", "0",
    ]
    if args.meter:
        command += ["--meter", args.meter]
    if args.server_args:
        command += shlex.split(args.server_args)
    server = subprocess.Popen(
        command,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    report = None
    server_tail = []
    try:
        port = wait_for_port(server.stdout)
        wait_for_health(port)

        from repro.frontend.loadgen import run_load

        report = run_load(
            host="127.0.0.1",
            port=port,
            rps=args.rps,
            duration=args.duration,
            mix_name=args.mix,
            sites=[f"site{i}" for i in range(args.sites)],
            seed=args.seed,
            connections=args.connections,
        )
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        latency = report["admit_latency_ms"]
        print(
            f"# {report['requests']} requests, "
            f"admitted={report['admitted']} rejected={report['rejected']} "
            f"errors={report['errors']} timeouts={report['timeouts']} "
            f"5xx={report['status_5xx']}"
        )
        print(
            f"# admit latency ms: p50={latency['p50']:.3f} "
            f"p99={latency['p99']:.3f} p999={latency['p999']:.3f}"
        )
        print(f"# wrote {args.out}")
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
        for line in server.stdout:
            sys.stdout.write(line)
            server_tail.append(line)
    if server.returncode != 0:
        print(f"server exited with {server.returncode}")
        return 1
    if args.require_swap:
        # the zero-downtime contract: the server crossed a meter
        # hot-swap while the open-loop driver was firing, and not one
        # request was dropped, errored or timed out
        if not any(line.startswith("# swap @") for line in server_tail):
            print("FAIL: the server never hot-swapped its meter")
            return 1
        if report is None:
            print("FAIL: no load report to check against the swap")
            return 1
        dropped = {
            key: int(report.get(key, 0))
            for key in ("errors", "timeouts", "status_5xx")
        }
        if any(dropped.values()):
            print(f"FAIL: requests dropped across the swap: {dropped}")
            return 1
        print("# hot-swap crossed with zero dropped requests")
    return 0


if __name__ == "__main__":
    sys.exit(main())

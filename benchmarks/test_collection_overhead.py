"""T-OVH — runtime overhead of metrics collection (paper Section V.D).

The paper runs five executions with and without each collection agent
and normalizes throughput/latency against the no-collection baseline:
hardware-counter collection costs under 0.5%, OS-level collection
about 4%.  The same protocol runs here on the simulated testbed; the
benchmarked operation is one collection burst injection.
"""

import itertools

import pytest

from repro.experiments.overhead import run_overhead
from repro.simulator import AppServer, DatabaseServer, MultiTierWebsite, Simulator
from repro.telemetry.perfctr import (
    PERFCTR_PROFILE,
    SYSSTAT_PROFILE,
    MetricsCollector,
)
from repro.telemetry.streaming import StreamingWindowAggregator


@pytest.fixture(scope="module")
def overhead(paper_pipeline):
    return run_overhead(paper_pipeline, executions=5)


def test_collection_overhead(overhead, record_result, benchmark):
    record_result("collection_overhead", overhead.rows())

    # benchmark the per-sample cost of injecting one collection burst
    sim = Simulator()
    site = MultiTierWebsite(sim, AppServer(sim), DatabaseServer(sim))
    collector = MetricsCollector(sim, site, SYSSTAT_PROFILE)
    benchmark(collector._collect)

    perfctr = overhead.loss_percent(PERFCTR_PROFILE.name)
    sysstat = overhead.loss_percent(SYSSTAT_PROFILE.name)

    # paper: HPC collection within 0.5%, OS collection around 4%
    assert perfctr < 1.0
    assert 1.0 < sysstat < 10.0
    assert sysstat > 3 * perfctr

    # latency degrades in the same direction
    assert (
        overhead.latency[SYSSTAT_PROFILE.name]
        >= overhead.latency[PERFCTR_PROFILE.name] - 0.02
    )


def test_streaming_push_cost(paper_pipeline, benchmark):
    """Per-tick cost of the online window fold (the monitoring hot path).

    One push folds a 1 s interval record into the ring-buffered window
    accumulators; its cost bounds the sampling rate an online monitor
    can sustain.  Memory stays O(window) no matter how many ticks flow
    through.
    """
    records = paper_pipeline.test_run("ordering").records
    aggregator = StreamingWindowAggregator(
        level="hpc", tiers=["app", "db"], window=30
    )
    stream = itertools.cycle(records)

    benchmark(lambda: aggregator.push(next(stream)))

    assert aggregator.ticks_seen > 0
    assert len(aggregator.recent) == 0  # retain_records=0 keeps nothing

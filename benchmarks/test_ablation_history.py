"""A-HIST — history-length sensitivity (paper Section V.C).

The paper notes that a single history bit improved accuracy by about
10% over the 3-bit default in their runs, and that longer histories
add only marginal change.  The sweep regenerates that comparison; the
robust part of the claim — that accuracy does not keep improving with
more history — is asserted.
"""

import pytest

from repro.experiments.ablation import run_history_ablation


@pytest.fixture(scope="module")
def history(paper_pipeline):
    return run_history_ablation(paper_pipeline, history_lengths=(1, 2, 3, 4, 5))


@pytest.fixture(scope="module")
def history_paper_lambda(paper_pipeline):
    """The sweep under the paper's exact λ (no pattern fallback)."""
    return run_history_ablation(
        paper_pipeline,
        history_lengths=(1, 2, 3, 4, 5),
        pattern_fallback=False,
    )


def test_history_length_sweep(history, record_result, paper_pipeline, benchmark):
    record_result("ablation_history", history.rows())

    # benchmark retraining the coordinator at h=3 (the online-tuning cost)
    meter = paper_pipeline.meter("hpc")
    runs = {
        w: paper_pipeline.training_run(w) for w in ("ordering", "browsing")
    }
    benchmark.pedantic(
        meter.train_coordinator, args=(runs,), rounds=3, iterations=1
    )

    means = {h: history.mean(h) for h in history.results}
    # every history length stays in a usable band
    assert all(m > 0.7 for m in means.values())
    # no monotone improvement from longer histories (paper: marginal)
    assert means[5] < means[1] + 0.05
    # short histories are at least competitive with the 3-bit default
    assert means[1] > means[3] - 0.1


def test_history_matters_under_paper_lambda(
    history_paper_lambda, history, record_result, benchmark
):
    """The paper's ~10%-better-with-1-bit effect lives in its exact λ.

    With the pattern fallback enabled, undecided history cells defer to
    the pattern aggregate and the sweep flattens; without it (the
    paper's λ), longer histories fragment the LHT training counts, so
    short histories win — the direction the paper reports.
    """
    record_result(
        "ablation_history_paper_lambda", history_paper_lambda.rows()
    )
    benchmark(history_paper_lambda.mean, 1)

    means = {h: history_paper_lambda.mean(h) for h in (1, 3, 5)}
    # a single history bit is at least as good as three (paper: ~+10%)
    assert means[1] >= means[3] - 0.02
    # and the fallback variant dominates the paper's λ at every length
    for h in (1, 3, 5):
        assert history.mean(h) >= history_paper_lambda.mean(h) - 0.02

"""T1a/T1b — individual synopsis accuracy (paper Table I).

Regenerates both sub-tables over all four learners and both metric
levels, checks the paper's three observations, and benchmarks the
online cost of a single synopsis decision.
"""

import pytest

from repro.experiments.table1 import run_table1
from repro.telemetry.sampler import HPC_LEVEL, OS_LEVEL

LEARNERS = ["lr", "naive", "svm", "tan"]


@pytest.fixture(scope="module")
def table1a(paper_pipeline):
    return run_table1(paper_pipeline, "browsing", learners=LEARNERS)


@pytest.fixture(scope="module")
def table1b(paper_pipeline):
    return run_table1(paper_pipeline, "ordering", learners=LEARNERS)


def test_table1a_browsing_input(table1a, record_result, benchmark, paper_pipeline, paper_scale):
    record_result("table1a_browsing_input", table1a.rows())

    # benchmark one online decision of the winning synopsis
    synopsis = paper_pipeline.synopsis("browsing", "db", HPC_LEVEL, "tan")
    instance = paper_pipeline.dataset(
        "browsing", "db", HPC_LEVEL, training=False
    )[0]
    benchmark(synopsis.predict, instance.attributes)

    # Obs 1: only the bottleneck-tier, same-workload synopsis is good
    best = table1a.best_cell()
    assert best.synopsis_workload == "browsing"
    assert best.tier == "db"
    assert best.balanced_accuracy > 0.85
    # mismatched-workload synopses stay near chance
    assert table1a.get("ordering", "db", HPC_LEVEL, "tan") < 0.7

    # Obs 2: HPC metrics beat OS metrics for the browsing mix, where
    # the database hides its backlog from the OS.  Compared on TAN —
    # the learner the paper selects for the coordinated system —
    # strictly at paper scale.
    hpc_tan = table1a.get("browsing", "db", HPC_LEVEL, "tan")
    os_tan = table1a.get("browsing", "db", OS_LEVEL, "tan")
    if paper_scale:
        assert hpc_tan > os_tan + 0.1
    else:
        assert hpc_tan >= os_tan - 0.05


def test_table1b_ordering_input(table1b, record_result, benchmark, paper_pipeline):
    record_result("table1b_ordering_input", table1b.rows())

    # benchmark an OS-level online decision for symmetry with Table Ia
    synopsis = paper_pipeline.synopsis("ordering", "app", OS_LEVEL, "tan")
    instance = paper_pipeline.dataset(
        "ordering", "app", OS_LEVEL, training=False
    )[0]
    benchmark(synopsis.predict, instance.attributes)

    best = table1b.best_cell()
    assert best.synopsis_workload == "ordering"
    assert best.tier == "app"
    assert best.balanced_accuracy > 0.85

    # for ordering traffic the OS *can* see the overload (thread storms
    # on the app tier), so both levels are accurate — paper Table I(b)
    assert table1b.get("ordering", "app", OS_LEVEL, "tan") > 0.8
    assert table1b.get("ordering", "app", HPC_LEVEL, "tan") > 0.8


def test_table1_learner_ordering(table1a, table1b, benchmark, paper_pipeline):
    """Obs 3: SVM/TAN lead, naive Bayes trails, LR worst overall."""
    # benchmark the expensive learner's online decision for contrast
    synopsis = paper_pipeline.synopsis("browsing", "db", HPC_LEVEL, "svm")
    instance = paper_pipeline.dataset(
        "browsing", "db", HPC_LEVEL, training=False
    )[0]
    benchmark(synopsis.predict, instance.attributes)


    def mean_matched(table, learner):
        matched = {
            "browsing": ("browsing", "db"),
            "ordering": ("ordering", "app"),
        }[table.input_workload]
        return table.get(matched[0], matched[1], HPC_LEVEL, learner)

    scores = {
        learner: (
            mean_matched(table1a, learner) + mean_matched(table1b, learner)
        )
        / 2.0
        for learner in LEARNERS
    }
    # every learner handles its matched diagonal (the easy cells)...
    assert all(score > 0.8 for score in scores.values())
    # ...and the SVM at least matches naive Bayes, as in the paper.
    assert scores["svm"] >= scores["naive"] - 0.02
    # Deviation note (see EXPERIMENTS.md): the paper finds LR worst
    # overall; our from-scratch LR with WEKA-style attribute
    # elimination is competitive on matched workloads, so the strict
    # LR-last ordering does not reproduce cell-for-cell.

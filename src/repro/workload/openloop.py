"""Open-loop workload source (Poisson arrivals).

The RBE is *closed-loop*: overloaded servers push back on clients, so
the offered rate self-throttles as response times grow.  Real internet
traffic is better approximated as open-loop at short time scales — new
users keep arriving regardless of how slow the site currently is —
which makes overloads deeper and admission control more valuable.

:class:`OpenLoopSource` injects requests as a (piecewise-constant,
optionally modulated) Poisson process with interactions drawn from a
traffic mix.  Together with the RBE this covers both classic load
models; the admission-control experiments use it to generate flash
crowds that do not politely back off.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..simulator.engine import Event, Simulator
from ..simulator.website import CompletedRequest, MultiTierWebsite
from .tpcw import TrafficMix

__all__ = ["OpenLoopSource"]


class OpenLoopSource:
    """Poisson request injector with a controllable rate."""

    def __init__(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        mix: TrafficMix,
        *,
        rate: float = 0.0,
        seed: int = 1,
        on_complete: Optional[Callable[[CompletedRequest], None]] = None,
    ):
        if rate < 0:
            raise ValueError("arrival rate must be non-negative")
        self.sim = sim
        self.website = website
        self.mix = mix
        self._rate = rate
        self._rng = np.random.default_rng(seed)
        self._on_complete = (
            on_complete if on_complete is not None else (lambda outcome: None)
        )
        self._next_arrival: Optional[Event] = None
        self.submitted = 0
        if rate > 0:
            self._schedule_next()

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Current arrival rate (requests per second)."""
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Change the arrival rate; takes effect from the next arrival."""
        if rate < 0:
            raise ValueError("arrival rate must be non-negative")
        was_idle = self._rate == 0
        self._rate = rate
        if was_idle and rate > 0 and self._next_arrival is None:
            self._schedule_next()
        if rate == 0 and self._next_arrival is not None:
            self._next_arrival.cancel()
            self._next_arrival = None

    def set_mix(self, mix: TrafficMix) -> None:
        self.mix = mix

    def stop(self) -> None:
        self.set_rate(0.0)

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self._rate))
        self._next_arrival = self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        self._next_arrival = None
        request = self.mix.sample(self._rng)
        self.submitted += 1
        self.website.submit(request, self._on_complete)
        if self._rate > 0:
            self._schedule_next()

"""Remote Browser Emulator (RBE).

The paper drives its testbed with the RBE shipped with the Rice TPC-W
implementation: a population of **Emulated Browsers** (EBs), each an
independent closed-loop client that issues an interaction, waits for
the response, thinks for an exponentially distributed time, and moves
to its next page via the session navigation model.  Concurrency is
controlled by the EB population, which the paper's modified RBE varies
to produce ramp-up and spike workloads; we expose the same control as
:meth:`RemoteBrowserEmulator.set_population`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..simulator.engine import Simulator
from ..simulator.website import CompletedRequest, MultiTierWebsite, Request
from .tpcw import MarkovSessionModel, TrafficMix

__all__ = ["EmulatedBrowser", "RemoteBrowserEmulator"]


class EmulatedBrowser:
    """One closed-loop client session."""

    def __init__(
        self,
        eb_id: int,
        rbe: "RemoteBrowserEmulator",
        rng: np.random.Generator,
    ):
        self.eb_id = eb_id
        self.rbe = rbe
        self.rng = rng
        self.active = True
        self.requests_issued = 0
        self._current: Optional[Request] = None

    # ------------------------------------------------------------------
    def start(self, initial_delay: float) -> None:
        """Begin the browse loop after a small desynchronizing delay."""
        self.rbe.sim.schedule(initial_delay, self._issue)

    def retire(self) -> None:
        """Stop after the in-flight interaction (if any) completes."""
        self.active = False

    # ------------------------------------------------------------------
    def _issue(self) -> None:
        if not self.active:
            self.rbe._on_browser_exit(self)
            return
        model = self.rbe.session_model
        if self._current is None:
            request = model.first(self.rng)
        else:
            request = model.next(self._current, self.rng)
        self._current = request
        self.requests_issued += 1
        self.rbe.website.submit(request, self._on_response)

    def _on_response(self, outcome: CompletedRequest) -> None:
        self.rbe._on_response(outcome)
        if not self.active:
            self.rbe._on_browser_exit(self)
            return
        think = self.rng.exponential(self.rbe.think_time_mean)
        self.rbe.sim.schedule(think, self._issue)


class RemoteBrowserEmulator:
    """Manages the EB population against one website.

    Parameters
    ----------
    think_time_mean:
        Mean of the exponential think time between interactions.  TPC-W
        specifies 7 s; the simulator default is scaled down so the same
        saturation points are reached with a smaller EB population.
    on_complete:
        Optional observer invoked for every finished request (used by
        trace recorders and admission-control experiments).
    """

    def __init__(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        mix: TrafficMix,
        *,
        think_time_mean: float = 1.0,
        continuity: float = 0.3,
        seed: int = 1,
        on_complete: Optional[Callable[[CompletedRequest], None]] = None,
    ):
        if think_time_mean <= 0:
            raise ValueError("think time must be positive")
        self.sim = sim
        self.website = website
        self.think_time_mean = think_time_mean
        self.session_model = MarkovSessionModel(mix, continuity=continuity)
        self._rng = np.random.default_rng(seed)
        self._on_complete = on_complete
        self._browsers: List[EmulatedBrowser] = []
        self._next_id = 0
        self._retiring = 0

    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        """Number of EBs currently meant to be running."""
        return len(self._browsers)

    @property
    def mix(self) -> TrafficMix:
        return self.session_model.mix

    def set_mix(self, mix: TrafficMix, continuity: Optional[float] = None) -> None:
        """Switch traffic mix (used by interleaved workloads)."""
        if continuity is None:
            continuity = self.session_model.continuity
        self.session_model = MarkovSessionModel(mix, continuity=continuity)

    def set_population(self, n: int) -> None:
        """Grow or shrink the EB population to ``n``."""
        if n < 0:
            raise ValueError("population must be non-negative")
        while len(self._browsers) < n:
            self._spawn()
        while len(self._browsers) > n:
            eb = self._browsers.pop()
            eb.retire()
            self._retiring += 1

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        eb = EmulatedBrowser(
            self._next_id,
            self,
            np.random.default_rng(self._rng.integers(0, 2**63)),
        )
        self._next_id += 1
        self._browsers.append(eb)
        # stagger start within one think time to avoid arrival bursts
        eb.start(float(eb.rng.uniform(0.0, self.think_time_mean)))

    def _on_browser_exit(self, eb: EmulatedBrowser) -> None:
        if self._retiring > 0:
            self._retiring -= 1

    def _on_response(self, outcome: CompletedRequest) -> None:
        if self._on_complete is not None:
            self._on_complete(outcome)

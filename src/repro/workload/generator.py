"""Workload schedules: ramp-up, spike, staircase, interleaved traffic.

The paper composes its training workload from a **ramp-up** part
(gradually adding client sessions until the site is overloaded) and a
**spike** part (an occasional extreme burst); testing uses steady mixes,
an **interleaved** mix that keeps switching between browsing and
ordering traffic, and an **unknown** mix with altered transition
probabilities.  This module expresses all of those as piecewise
schedules of (EB population, traffic mix) over time, and a driver that
applies a schedule to a :class:`~repro.workload.rbe.RemoteBrowserEmulator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..simulator.engine import Simulator
from .rbe import RemoteBrowserEmulator
from .tpcw import TrafficMix

__all__ = [
    "Phase",
    "WorkloadSchedule",
    "ramp_up",
    "spike",
    "steady",
    "staircase",
    "interleaved",
    "ScheduleDriver",
]


@dataclass(frozen=True)
class Phase:
    """One segment of a schedule.

    ``population`` maps local time within the phase (0..duration) to
    the desired EB count.  ``mix`` overrides the RBE's traffic mix for
    the duration of the phase when given.
    """

    duration: float
    population: Callable[[float], int]
    mix: Optional[TrafficMix] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("phase duration must be positive")


class WorkloadSchedule:
    """A concatenation of phases, queryable at any absolute time."""

    def __init__(self, phases: Sequence[Phase]):
        if not phases:
            raise ValueError("schedule needs at least one phase")
        self.phases = list(phases)

    @property
    def duration(self) -> float:
        return sum(p.duration for p in self.phases)

    def at(self, t: float) -> Tuple[int, Optional[TrafficMix]]:
        """(population, mix) at absolute schedule time ``t``.

        Past the end, the final phase's terminal value holds.
        """
        if t < 0:
            raise ValueError("schedule time must be non-negative")
        offset = 0.0
        for phase in self.phases:
            if t < offset + phase.duration:
                return phase.population(t - offset), phase.mix
            offset += phase.duration
        last = self.phases[-1]
        return last.population(last.duration), last.mix

    def then(self, other: "WorkloadSchedule") -> "WorkloadSchedule":
        """Concatenate two schedules."""
        return WorkloadSchedule(self.phases + other.phases)


# ----------------------------------------------------------------------
# schedule constructors
# ----------------------------------------------------------------------
def ramp_up(
    start: int,
    end: int,
    duration: float,
    *,
    hold: float = 0.0,
    mix: Optional[TrafficMix] = None,
) -> WorkloadSchedule:
    """Linearly grow the population from ``start`` to ``end`` EBs.

    ``hold`` keeps the terminal population for an extra period so the
    system spends time fully overloaded, as the paper's ramp-up
    training workload does.
    """
    if duration <= 0:
        raise ValueError("ramp duration must be positive")

    def pop(t: float) -> int:
        frac = min(1.0, t / duration)
        return int(round(start + (end - start) * frac))

    phases = [Phase(duration, pop, mix)]
    if hold > 0:
        phases.append(Phase(hold, lambda _t: end, mix))
    return WorkloadSchedule(phases)


def spike(
    base: int,
    peak: int,
    *,
    lead: float,
    width: float,
    tail: float,
    mix: Optional[TrafficMix] = None,
) -> WorkloadSchedule:
    """A traffic burst: ``base`` EBs, jump to ``peak`` for ``width`` s."""
    phases = []
    if lead > 0:
        phases.append(Phase(lead, lambda _t: base, mix))
    phases.append(Phase(width, lambda _t: peak, mix))
    if tail > 0:
        phases.append(Phase(tail, lambda _t: base, mix))
    return WorkloadSchedule(phases)


def steady(
    population: int, duration: float, *, mix: Optional[TrafficMix] = None
) -> WorkloadSchedule:
    """Constant population."""
    return WorkloadSchedule([Phase(duration, lambda _t: population, mix)])


def staircase(
    levels: Sequence[int],
    step_duration: float,
    *,
    mix: Optional[TrafficMix] = None,
) -> WorkloadSchedule:
    """Hold each population level in turn (stress-test staircase)."""
    if not levels:
        raise ValueError("staircase needs at least one level")
    return WorkloadSchedule(
        [
            Phase(step_duration, (lambda n: lambda _t: n)(level), mix)
            for level in levels
        ]
    )


def interleaved(
    mix_a: TrafficMix,
    population_a: int,
    mix_b: TrafficMix,
    population_b: int,
    *,
    period: float,
    cycles: int,
) -> WorkloadSchedule:
    """Alternate between two (mix, population) regimes.

    This is the paper's *interleaved* testing workload: traffic keeps
    switching between the browsing and ordering mixes, moving the
    bottleneck back and forth between tiers.
    """
    if cycles <= 0:
        raise ValueError("need at least one cycle")
    phases: List[Phase] = []
    for _ in range(cycles):
        phases.append(Phase(period, (lambda n: lambda _t: n)(population_a), mix_a))
        phases.append(Phase(period, (lambda n: lambda _t: n)(population_b), mix_b))
    return WorkloadSchedule(phases)


# ----------------------------------------------------------------------
class ScheduleDriver:
    """Applies a schedule to an RBE at a fixed control granularity."""

    def __init__(
        self,
        sim: Simulator,
        rbe: RemoteBrowserEmulator,
        schedule: WorkloadSchedule,
        *,
        control_interval: float = 1.0,
    ):
        if control_interval <= 0:
            raise ValueError("control interval must be positive")
        self.sim = sim
        self.rbe = rbe
        self.schedule = schedule
        self.control_interval = control_interval
        self._t0 = sim.now
        self._apply()  # take effect immediately
        ticks = max(1, math.ceil(schedule.duration / control_interval))
        self._remaining = ticks
        self._timer = sim.every(control_interval, self._tick)

    def _apply(self) -> None:
        population, mix = self.schedule.at(self.sim.now - self._t0)
        if mix is not None and mix is not self.rbe.mix:
            self.rbe.set_mix(mix)
        if population != self.rbe.population:
            self.rbe.set_population(population)

    def _tick(self) -> None:
        self._apply()
        self._remaining -= 1
        if self._remaining <= 0:
            self._timer.cancel()

"""Request-level trace recording and replay.

A :class:`TraceRecorder` captures every completed request as a flat
record; traces can be saved to and loaded from JSON-lines files and
replayed against a website as an *open-loop* workload (arrivals at the
recorded instants regardless of response times), which is useful for
reproducible regression runs and for stress tests beyond the closed-loop
saturation point.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Union

from ..simulator.engine import Simulator
from ..simulator.website import CompletedRequest, MultiTierWebsite
from .tpcw import INTERACTIONS

__all__ = ["TraceRecord", "TraceRecorder", "save_trace", "load_trace", "TraceReplayer"]


@dataclass(frozen=True)
class TraceRecord:
    """One completed request, flattened for serialization."""

    interaction: str
    submit_time: float
    finish_time: float
    dropped: bool

    @property
    def response_time(self) -> float:
        return self.finish_time - self.submit_time

    @classmethod
    def from_completed(cls, outcome: CompletedRequest) -> "TraceRecord":
        return cls(
            interaction=outcome.request.name,
            submit_time=outcome.submit_time,
            finish_time=outcome.finish_time,
            dropped=outcome.dropped,
        )


class TraceRecorder:
    """Collects :class:`TraceRecord` objects via an RBE observer hook."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def __call__(self, outcome: CompletedRequest) -> None:
        self.records.append(TraceRecord.from_completed(outcome))

    def __len__(self) -> int:
        return len(self.records)

    def throughput(self, t_start: float, t_end: float) -> float:
        """Completed (non-dropped) requests per second in a window."""
        if t_end <= t_start:
            raise ValueError("empty window")
        n = sum(
            1
            for r in self.records
            if not r.dropped and t_start <= r.finish_time < t_end
        )
        return n / (t_end - t_start)


def save_trace(
    records: Iterable[TraceRecord], path: Union[str, Path]
) -> None:
    """Write records as JSON lines."""
    path = Path(path)
    with path.open("w") as fh:
        for record in records:
            fh.write(json.dumps(asdict(record)) + "\n")


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read records written by :func:`save_trace`."""
    records = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            records.append(
                TraceRecord(
                    interaction=data["interaction"],
                    submit_time=float(data["submit_time"]),
                    finish_time=float(data["finish_time"]),
                    dropped=bool(data["dropped"]),
                )
            )
    return records


class TraceReplayer:
    """Open-loop replay of a recorded trace against a website.

    Each recorded request is re-submitted at its original submit time
    (shifted to the current simulation clock).  Unknown interaction
    names raise immediately rather than silently skipping records.
    """

    def __init__(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        records: Iterable[TraceRecord],
        *,
        on_complete: Optional[Callable[[CompletedRequest], None]] = None,
        time_scale: float = 1.0,
    ):
        if time_scale <= 0:
            raise ValueError("time scale must be positive")
        self.sim = sim
        self.website = website
        self._on_complete = (
            on_complete if on_complete is not None else (lambda outcome: None)
        )
        self.scheduled = 0
        base = sim.now
        records = list(records)
        if records:
            origin = min(r.submit_time for r in records)
            for record in records:
                if record.interaction not in INTERACTIONS:
                    raise KeyError(
                        f"trace contains unknown interaction {record.interaction!r}"
                    )
                request = INTERACTIONS[record.interaction]
                at = base + (record.submit_time - origin) * time_scale
                sim.schedule_at(
                    at,
                    lambda req=request: website.submit(req, self._on_complete),
                )
                self.scheduled += 1

"""TPC-W workload model: the 14 web interactions and standard mixes.

TPC-W (www.tpc.org/tpcw) defines 14 interaction types for an online
bookstore and classifies each as **Browse** (browsing/searching the
site) or **Order** (explicit part of the ordering process).  The three
standard mixes differ in the Browse:Order split:

* Browsing mix — 95% browse, 5% order
* Shopping mix — 80% browse, 20% order (the WIPS mix)
* Ordering mix — 50% browse, 50% order

Interaction resource demands below are calibrated against the paper's
testbed behaviour rather than copied from any implementation: browse
interactions are dominated by heavy read queries (best sellers,
full-text search) and stress the database; order interactions are
servlet/transaction heavy and stress the application server.  With the
calibrated hardware specs this reproduces the paper's observation that
the browsing mix bottlenecks the DB tier and the ordering mix the app
tier, with the shopping mix near the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..simulator.website import BROWSE, ORDER, Request

__all__ = [
    "INTERACTIONS",
    "BROWSE_INTERACTIONS",
    "ORDER_INTERACTIONS",
    "TrafficMix",
    "BROWSING_MIX",
    "SHOPPING_MIX",
    "ORDERING_MIX",
    "STANDARD_MIXES",
    "make_unknown_mix",
    "MarkovSessionModel",
]


def _ms(x: float) -> float:
    return x / 1000.0


#: The 14 TPC-W interactions with calibrated per-tier demands.
#: Demands are nominal CPU seconds on the reference (app-tier) machine.
INTERACTIONS: Dict[str, Request] = {
    r.name: r
    for r in [
        # ---- Browse class: light servlets, some very heavy queries ----
        Request(
            "home", BROWSE, app_demand=_ms(8), db_demand=_ms(5),
            app_footprint_kb=24, db_footprint_kb=512,
            response_bytes=9000, db_result_bytes=1500,
        ),
        Request(
            "new_products", BROWSE, app_demand=_ms(10), db_demand=_ms(50),
            app_footprint_kb=28, db_footprint_kb=6 * 1024,
            response_bytes=12000, db_result_bytes=6000,
        ),
        Request(
            "best_sellers", BROWSE, app_demand=_ms(10), db_demand=_ms(100),
            app_footprint_kb=28, db_footprint_kb=10 * 1024,
            response_bytes=12000, db_result_bytes=6000,
        ),
        Request(
            "product_detail", BROWSE, app_demand=_ms(6), db_demand=_ms(8),
            app_footprint_kb=20, db_footprint_kb=768,
            response_bytes=10000, db_result_bytes=2500,
        ),
        Request(
            "search_request", BROWSE, app_demand=_ms(5), db_demand=_ms(2),
            app_footprint_kb=16, db_footprint_kb=128,
            response_bytes=6000, db_result_bytes=500,
        ),
        Request(
            "search_results", BROWSE, app_demand=_ms(12), db_demand=_ms(120),
            app_footprint_kb=32, db_footprint_kb=12 * 1024,
            response_bytes=14000, db_result_bytes=8000,
        ),
        # ---- Order class: heavy servlets/transactions, light queries ----
        Request(
            "shopping_cart", ORDER, app_demand=_ms(25), db_demand=_ms(10),
            app_footprint_kb=48, db_footprint_kb=512,
            response_bytes=9000, db_result_bytes=1500,
        ),
        Request(
            "customer_registration", ORDER, app_demand=_ms(30),
            db_demand=_ms(4),
            app_footprint_kb=56, db_footprint_kb=256,
            response_bytes=7000, db_result_bytes=600,
        ),
        Request(
            "buy_request", ORDER, app_demand=_ms(35), db_demand=_ms(12),
            app_footprint_kb=56, db_footprint_kb=640,
            response_bytes=9000, db_result_bytes=1800,
        ),
        Request(
            "buy_confirm", ORDER, app_demand=_ms(45), db_demand=_ms(15),
            app_footprint_kb=64, db_footprint_kb=768,
            response_bytes=8000, db_result_bytes=1200,
        ),
        Request(
            "order_inquiry", ORDER, app_demand=_ms(15), db_demand=_ms(5),
            app_footprint_kb=40, db_footprint_kb=384,
            response_bytes=6000, db_result_bytes=900,
        ),
        Request(
            "order_display", ORDER, app_demand=_ms(20), db_demand=_ms(10),
            app_footprint_kb=48, db_footprint_kb=512,
            response_bytes=9000, db_result_bytes=2000,
        ),
        Request(
            "admin_request", ORDER, app_demand=_ms(18), db_demand=_ms(6),
            app_footprint_kb=40, db_footprint_kb=384,
            response_bytes=7000, db_result_bytes=1000,
        ),
        Request(
            "admin_confirm", ORDER, app_demand=_ms(40), db_demand=_ms(20),
            app_footprint_kb=64, db_footprint_kb=1024,
            response_bytes=7000, db_result_bytes=1500,
        ),
    ]
}

BROWSE_INTERACTIONS: Tuple[str, ...] = tuple(
    name for name, r in INTERACTIONS.items() if r.category == BROWSE
)
ORDER_INTERACTIONS: Tuple[str, ...] = tuple(
    name for name, r in INTERACTIONS.items() if r.category == ORDER
)

#: Relative frequency of interactions *within* their class.
_DEFAULT_BROWSE_WEIGHTS: Dict[str, float] = {
    "home": 0.20,
    "new_products": 0.15,
    "best_sellers": 0.10,
    "product_detail": 0.25,
    "search_request": 0.15,
    "search_results": 0.15,
}
_DEFAULT_ORDER_WEIGHTS: Dict[str, float] = {
    "shopping_cart": 0.25,
    "customer_registration": 0.10,
    "buy_request": 0.15,
    "buy_confirm": 0.15,
    "order_inquiry": 0.15,
    "order_display": 0.10,
    "admin_request": 0.05,
    "admin_confirm": 0.05,
}


def _normalized(weights: Mapping[str, float], names: Iterable[str]) -> Dict[str, float]:
    selected = {n: float(weights[n]) for n in names}
    total = sum(selected.values())
    if total <= 0:
        raise ValueError("weights must have positive total")
    if any(v < 0 for v in selected.values()):
        raise ValueError("weights must be non-negative")
    return {n: v / total for n, v in selected.items()}


@dataclass(frozen=True)
class TrafficMix:
    """A distribution over the 14 interactions.

    ``browse_fraction`` is the probability that the next interaction is
    of the Browse class; within each class, interactions follow the
    class weight tables.
    """

    name: str
    browse_fraction: float
    browse_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_BROWSE_WEIGHTS)
    )
    order_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_ORDER_WEIGHTS)
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.browse_fraction <= 1.0:
            raise ValueError("browse_fraction must be in [0, 1]")
        object.__setattr__(
            self,
            "browse_weights",
            _normalized(self.browse_weights, BROWSE_INTERACTIONS),
        )
        object.__setattr__(
            self,
            "order_weights",
            _normalized(self.order_weights, ORDER_INTERACTIONS),
        )

    # ------------------------------------------------------------------
    def probabilities(self) -> Dict[str, float]:
        """Stationary probability of each of the 14 interactions."""
        probs = {
            n: self.browse_fraction * w for n, w in self.browse_weights.items()
        }
        probs.update(
            {
                n: (1.0 - self.browse_fraction) * w
                for n, w in self.order_weights.items()
            }
        )
        return probs

    def sample(self, rng: np.random.Generator) -> Request:
        """Draw one interaction i.i.d. from the mix."""
        names = list(INTERACTIONS)
        probs = self.probabilities()
        idx = rng.choice(len(names), p=[probs[n] for n in names])
        return INTERACTIONS[names[idx]]

    # ------------------------------------------------------------------
    def mean_demands(self) -> Dict[str, float]:
        """Expected nominal CPU demand per request on each tier."""
        probs = self.probabilities()
        app = sum(p * INTERACTIONS[n].app_demand for n, p in probs.items())
        db = sum(p * INTERACTIONS[n].db_demand for n, p in probs.items())
        return {"app": app, "db": db}

    def with_browse_fraction(self, fraction: float, name: Optional[str] = None) -> "TrafficMix":
        """Copy of this mix with a different Browse:Order split."""
        return replace(
            self, name=name or f"{self.name}@{fraction:.2f}", browse_fraction=fraction
        )


BROWSING_MIX = TrafficMix("browsing", browse_fraction=0.95)
SHOPPING_MIX = TrafficMix("shopping", browse_fraction=0.80)
ORDERING_MIX = TrafficMix("ordering", browse_fraction=0.50)

STANDARD_MIXES: Dict[str, TrafficMix] = {
    m.name: m for m in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX)
}


def make_unknown_mix(
    seed: int = 7, browse_fraction: float = 0.70
) -> TrafficMix:
    """A mix unlike either training extreme (paper Section IV.A).

    The paper generates its *unknown* workload by altering the RBE
    transition probabilities.  We perturb the within-class weight tables
    with a seeded multiplicative jitter and move the Browse:Order split
    between the two training extremes, so the resulting traffic matches
    neither training synopsis.
    """
    rng = np.random.default_rng(seed)
    browse = {
        n: w * float(rng.uniform(0.5, 2.0))
        for n, w in _DEFAULT_BROWSE_WEIGHTS.items()
    }
    order = {
        n: w * float(rng.uniform(0.5, 2.0))
        for n, w in _DEFAULT_ORDER_WEIGHTS.items()
    }
    return TrafficMix(
        f"unknown-{seed}",
        browse_fraction=browse_fraction,
        browse_weights=browse,
        order_weights=order,
    )


#: Canonical navigation edges of the TPC-W bookstore used by the Markov
#: session model: after the key, a user tends to visit the value next.
_FLOW_EDGES: Dict[str, str] = {
    "home": "search_request",
    "search_request": "search_results",
    "search_results": "product_detail",
    "new_products": "product_detail",
    "best_sellers": "product_detail",
    "product_detail": "shopping_cart",
    "shopping_cart": "buy_request",
    "customer_registration": "buy_request",
    "buy_request": "buy_confirm",
    "buy_confirm": "order_inquiry",
    "order_inquiry": "order_display",
    "order_display": "home",
    "admin_request": "admin_confirm",
    "admin_confirm": "home",
}


class MarkovSessionModel:
    """Session-level navigation model for an Emulated Browser.

    With probability ``continuity`` the browser follows the canonical
    TPC-W navigation edge from its current page; otherwise it jumps to
    an interaction drawn from the mix distribution.  ``continuity=0``
    degenerates to i.i.d. sampling from the mix.
    """

    def __init__(self, mix: TrafficMix, continuity: float = 0.3):
        if not 0.0 <= continuity < 1.0:
            raise ValueError("continuity must be in [0, 1)")
        self.mix = mix
        self.continuity = continuity
        self._names = list(INTERACTIONS)
        self._index = {n: i for i, n in enumerate(self._names)}

    # ------------------------------------------------------------------
    def transition_matrix(self) -> np.ndarray:
        """Row-stochastic 14x14 matrix of the navigation chain."""
        n = len(self._names)
        probs = self.mix.probabilities()
        base = np.array([probs[name] for name in self._names])
        matrix = np.tile(base, (n, 1)) * (1.0 - self.continuity)
        for src, dst in _FLOW_EDGES.items():
            matrix[self._index[src], self._index[dst]] += self.continuity
        return matrix

    def stationary_distribution(self, tol: float = 1e-12) -> Dict[str, float]:
        """Stationary distribution of the chain (power iteration)."""
        matrix = self.transition_matrix()
        pi = np.full(len(self._names), 1.0 / len(self._names))
        for _ in range(10_000):
            nxt = pi @ matrix
            if np.abs(nxt - pi).max() < tol:
                pi = nxt
                break
            pi = nxt
        return {name: float(p) for name, p in zip(self._names, pi)}

    def stationary_browse_fraction(self) -> float:
        pi = self.stationary_distribution()
        return sum(pi[n] for n in BROWSE_INTERACTIONS)

    # ------------------------------------------------------------------
    def first(self, rng: np.random.Generator) -> Request:
        """Entry page of a new session."""
        return INTERACTIONS["home"] if rng.uniform() < 0.5 else self.mix.sample(rng)

    def next(self, current: Request, rng: np.random.Generator) -> Request:
        """Next interaction after ``current``."""
        if rng.uniform() < self.continuity:
            follow = _FLOW_EDGES.get(current.name)
            if follow is not None:
                return INTERACTIONS[follow]
        return self.mix.sample(rng)

"""TPC-W workload model, Remote Browser Emulator and schedules.

Replaces the Rice TPC-W implementation and its RBE client used by the
paper: interaction types and mixes (:mod:`~repro.workload.tpcw`),
closed-loop emulated browsers (:mod:`~repro.workload.rbe`), schedule
generators for ramp-up / spike / interleaved / unknown workloads
(:mod:`~repro.workload.generator`) and request-level traces
(:mod:`~repro.workload.traces`).
"""

from .generator import (
    Phase,
    ScheduleDriver,
    WorkloadSchedule,
    interleaved,
    ramp_up,
    spike,
    staircase,
    steady,
)
from .openloop import OpenLoopSource
from .rbe import EmulatedBrowser, RemoteBrowserEmulator
from .tpcw import (
    BROWSE_INTERACTIONS,
    BROWSING_MIX,
    INTERACTIONS,
    MarkovSessionModel,
    ORDER_INTERACTIONS,
    ORDERING_MIX,
    SHOPPING_MIX,
    STANDARD_MIXES,
    TrafficMix,
    make_unknown_mix,
)
from .traces import TraceRecord, TraceRecorder, TraceReplayer, load_trace, save_trace

__all__ = [
    "BROWSE_INTERACTIONS",
    "BROWSING_MIX",
    "EmulatedBrowser",
    "INTERACTIONS",
    "MarkovSessionModel",
    "ORDERING_MIX",
    "OpenLoopSource",
    "ORDER_INTERACTIONS",
    "Phase",
    "RemoteBrowserEmulator",
    "SHOPPING_MIX",
    "STANDARD_MIXES",
    "ScheduleDriver",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayer",
    "TrafficMix",
    "WorkloadSchedule",
    "interleaved",
    "load_trace",
    "make_unknown_mix",
    "ramp_up",
    "save_trace",
    "spike",
    "staircase",
    "steady",
]

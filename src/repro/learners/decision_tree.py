"""C4.5-style decision-tree synopsis builder (extension baseline).

Not one of the paper's four learners, but the standard WEKA-era
comparison point (J48) its contemporaries report against — included as
an extension baseline.  The tree makes binary splits on continuous
attributes chosen by *gain ratio* (information gain normalized by split
entropy, Quinlan's correction against many-valued bias), grows to a
depth/leaf-size bound, and prunes bottom-up whenever a subtree fails to
beat its parent's majority-leaf pessimistic error.  The default gain
threshold is zero — XOR-shaped interactions have no first-split gain,
so any positive cutoff would reduce the tree to a stump on exactly the
problems that motivate nonlinear learners; pruning handles the noise
splits instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .base import SynopsisLearner, register_learner

__all__ = ["DecisionTreeSynopsis"]


@dataclass
class _Node:
    """One tree node: a split or a leaf holding P(overload)."""

    proba: float
    n: int
    attribute: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.attribute is None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"proba": self.proba, "n": self.n}
        if not self.is_leaf:
            payload.update(
                attribute=self.attribute,
                threshold=self.threshold,
                left=self.left.to_dict(),
                right=self.right.to_dict(),
            )
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "_Node":
        node = cls(proba=float(payload["proba"]), n=int(payload["n"]))
        if "attribute" in payload:
            node.attribute = int(payload["attribute"])
            node.threshold = float(payload["threshold"])
            node.left = cls.from_dict(payload["left"])
            node.right = cls.from_dict(payload["right"])
        return node


def _entropy(y: np.ndarray) -> float:
    if y.size == 0:
        return 0.0
    p = y.mean()
    if p in (0.0, 1.0):
        return 0.0
    return float(-(p * np.log2(p) + (1 - p) * np.log2(1 - p)))


@register_learner("tree")
class DecisionTreeSynopsis(SynopsisLearner):
    """Binary classification tree with gain-ratio splits and pruning."""

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_leaf: int = 3,
        min_gain_ratio: float = 0.0,
        prune: bool = True,
    ):
        super().__init__()
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_leaf < 1:
            raise ValueError("min_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.min_gain_ratio = min_gain_ratio
        self.prune = prune
        self.root_: Optional[_Node] = None

    # ------------------------------------------------------------------
    def _best_split(self, X: np.ndarray, y: np.ndarray):
        """(attribute, threshold, gain_ratio) of the best binary split.

        C4.5's actual rule: rank by gain *ratio*, but only among
        candidates whose raw gain is at least the average positive gain.
        Naively maximizing the ratio alone would reward extreme cuts
        (tiny split-info denominators) and nibble useless slivers off
        the data.
        """
        n, p = X.shape
        base = _entropy(y)
        candidates = []  # (gain, ratio, attribute, threshold)
        for j in range(p):
            order = np.argsort(X[:, j], kind="stable")
            values = X[order, j]
            labels = y[order]
            # candidate thresholds wherever the value changes
            change = np.nonzero(np.diff(values) > 0)[0]
            for idx in change:
                left_n = idx + 1
                right_n = n - left_n
                if left_n < self.min_leaf or right_n < self.min_leaf:
                    continue
                gain = base - (
                    left_n * _entropy(labels[:left_n])
                    + right_n * _entropy(labels[left_n:])
                ) / n
                if gain <= 0:
                    continue
                frac = left_n / n
                split_info = -(
                    frac * np.log2(frac) + (1 - frac) * np.log2(1 - frac)
                )
                ratio = gain / split_info if split_info > 0 else 0.0
                threshold = (values[idx] + values[idx + 1]) / 2.0
                candidates.append((gain, ratio, j, threshold))
        if not candidates:
            return None, 0.0, 0.0
        mean_gain = sum(c[0] for c in candidates) / len(candidates)
        eligible = [c for c in candidates if c[0] >= mean_gain]
        gain, ratio, attribute, threshold = max(
            eligible, key=lambda c: c[1]
        )
        if ratio <= self.min_gain_ratio:
            return None, 0.0, 0.0
        return attribute, threshold, ratio

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(proba=float(y.mean()), n=y.size)
        if (
            depth >= self.max_depth
            or y.size < 2 * self.min_leaf
            or node.proba in (0.0, 1.0)
        ):
            return node
        attribute, threshold, _ = self._best_split(X, y)
        if attribute is None:
            return node
        mask = X[:, attribute] <= threshold
        node.attribute = attribute
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    @staticmethod
    def _pessimistic_errors(node: _Node) -> float:
        """Quinlan's continuity-corrected error count for a leaf."""
        p = max(node.proba, 1.0 - node.proba)
        return node.n * (1.0 - p) + 0.5

    def _prune(self, node: _Node) -> float:
        """Bottom-up: collapse subtrees that don't beat the leaf error."""
        if node.is_leaf:
            return self._pessimistic_errors(node)
        subtree_errors = self._prune(node.left) + self._prune(node.right)
        leaf_errors = self._pessimistic_errors(node)
        if leaf_errors <= subtree_errors:
            node.attribute = None
            node.left = None
            node.right = None
            return leaf_errors
        return subtree_errors

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.root_ = self._grow(X, y.astype(float), depth=0)
        if self.prune:
            self._prune(self.root_)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.attribute] <= node.threshold else node.right
            out[i] = node.proba
        return out

    # ------------------------------------------------------------------
    def n_leaves(self) -> int:
        """Leaf count of the fitted tree."""
        if self.root_ is None:
            return 0

        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self.root_)

    def _get_params(self):
        return {
            "max_depth": self.max_depth,
            "min_leaf": self.min_leaf,
            "min_gain_ratio": self.min_gain_ratio,
            "prune": self.prune,
        }

    def _get_state(self):
        return {"root": self.root_.to_dict()}

    def _set_state(self, state):
        self.root_ = _Node.from_dict(state["root"])

"""Synopsis learners: from-scratch WEKA-algorithm substitutes.

Linear regression, Gaussian naive Bayes, tree-augmented naive Bayes and
an SMO-trained SVM (:mod:`~repro.learners.linear_regression`,
:mod:`~repro.learners.naive_bayes`, :mod:`~repro.learners.tan`,
:mod:`~repro.learners.svm`) behind a common interface
(:mod:`~repro.learners.base`), plus discretization, information-gain
ranking and stratified cross-validation utilities.
"""

from .base import SynopsisLearner, learner_names, make_learner, register_learner
from .decision_tree import DecisionTreeSynopsis
from .discretize import EntropyDiscretizer, EqualFrequencyDiscretizer
from .information_gain import information_gain, rank_attributes
from .linear_regression import LinearRegressionSynopsis
from .naive_bayes import NaiveBayesSynopsis
from .svm import SvmSynopsis
from .tan import TanSynopsis
from .validation import (
    ConfusionMatrix,
    balanced_accuracy,
    cross_validate,
    stratified_kfold_indices,
)

__all__ = [
    "ConfusionMatrix",
    "DecisionTreeSynopsis",
    "EntropyDiscretizer",
    "EqualFrequencyDiscretizer",
    "LinearRegressionSynopsis",
    "NaiveBayesSynopsis",
    "SvmSynopsis",
    "SynopsisLearner",
    "TanSynopsis",
    "balanced_accuracy",
    "cross_validate",
    "information_gain",
    "learner_names",
    "make_learner",
    "rank_attributes",
    "register_learner",
    "stratified_kfold_indices",
]

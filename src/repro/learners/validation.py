"""Model validation: stratified k-fold CV and the paper's metrics.

The paper evaluates synopses with **Balanced Accuracy** — "an average
of the probabilities of true positive and true negative" (Section
IV.A) — and validates attribute subsets with 10-fold cross-validation
(Section II.B.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .base import SynopsisLearner

__all__ = [
    "ConfusionMatrix",
    "balanced_accuracy",
    "stratified_kfold_indices",
    "CrossValidationResult",
    "cross_validate",
    "cross_validate_detailed",
]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts (positive class = overload = 1)."""

    tp: int
    tn: int
    fp: int
    fn: int

    @classmethod
    def from_predictions(
        cls, y_true: np.ndarray, y_pred: np.ndarray
    ) -> "ConfusionMatrix":
        y_true = np.asarray(y_true, dtype=int)
        y_pred = np.asarray(y_pred, dtype=int)
        if y_true.shape != y_pred.shape:
            raise ValueError("prediction/label length mismatch")
        return cls(
            tp=int(((y_true == 1) & (y_pred == 1)).sum()),
            tn=int(((y_true == 0) & (y_pred == 0)).sum()),
            fp=int(((y_true == 0) & (y_pred == 1)).sum()),
            fn=int(((y_true == 1) & (y_pred == 0)).sum()),
        )

    @property
    def true_positive_rate(self) -> float:
        pos = self.tp + self.fn
        return self.tp / pos if pos else 1.0

    @property
    def true_negative_rate(self) -> float:
        neg = self.tn + self.fp
        return self.tn / neg if neg else 1.0

    @property
    def balanced_accuracy(self) -> float:
        """Mean of TPR and TNR; 0.5 for a constant predictor."""
        return 0.5 * (self.true_positive_rate + self.true_negative_rate)

    @property
    def accuracy(self) -> float:
        total = self.tp + self.tn + self.fp + self.fn
        return (self.tp + self.tn) / total if total else 0.0


def balanced_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """The paper's BA metric for a batch of predictions."""
    return ConfusionMatrix.from_predictions(y_true, y_pred).balanced_accuracy


def stratified_kfold_indices(
    y: np.ndarray, k: int = 10, seed: int = 0
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs with per-class stratification.

    Folds are as equal as possible and every instance appears in
    exactly one test fold.  ``k`` is clipped to the size of the
    smallest class so each fold sees both classes whenever possible.
    """
    y = np.asarray(y, dtype=int)
    n = y.size
    if n < 2:
        raise ValueError("need at least 2 instances for cross-validation")
    class_sizes = [max(1, int((y == c).sum())) for c in np.unique(y)]
    k = max(2, min(k, n, *class_sizes)) if len(class_sizes) > 1 else max(2, min(k, n))
    rng = np.random.default_rng(seed)
    folds: List[List[int]] = [[] for _ in range(k)]
    for c in np.unique(y):
        idx = np.flatnonzero(y == c)
        rng.shuffle(idx)
        for pos, i in enumerate(idx):
            folds[pos % k].append(int(i))
    all_idx = np.arange(n)
    for fold in folds:
        test = np.array(sorted(fold), dtype=int)
        train = np.setdiff1d(all_idx, test)
        yield train, test


@dataclass(frozen=True)
class CrossValidationResult:
    """Per-fold balanced accuracies plus their mean and spread.

    ``std`` is the population standard deviation of the fold scores and
    ``sem`` the standard error of the mean — the yardstick forward
    selection can hold a candidate's improvement against, instead of
    treating the CV mean as exact.
    """

    scores: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores)) if self.scores else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.scores)) if self.scores else 0.0

    @property
    def sem(self) -> float:
        n = len(self.scores)
        return self.std / math.sqrt(n) if n else 0.0


def _fit_and_score_fold(
    learner_factory: Callable[[], SynopsisLearner],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
) -> float:
    """One fold's balanced accuracy (module-level: picklable for pools)."""
    learner = learner_factory()
    learner.fit(X_train, y_train)
    return balanced_accuracy(y_test, learner.predict(X_test))


def cross_validate_detailed(
    learner_factory: Callable[[], SynopsisLearner],
    X: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 10,
    seed: int = 0,
    folds: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    executor=None,
) -> CrossValidationResult:
    """Stratified k-fold CV with per-fold scores.

    ``learner_factory`` builds a fresh, unfitted learner per fold so no
    state leaks between folds.  ``folds`` accepts precomputed
    ``(train_idx, test_idx)`` pairs so repeated calls over the same
    labels (forward selection's candidate scan) split only once — the
    pairs must come from :func:`stratified_kfold_indices` with the same
    ``k``/``seed`` for results to match the unshared path bit for bit.

    ``executor`` (any ``concurrent.futures.Executor``) fans the folds
    out; scores are collected in fold order, so parallel execution is
    bit-identical to serial.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if folds is None:
        folds = list(stratified_kfold_indices(y, k=k, seed=seed))
    if executor is None:
        scores = [
            _fit_and_score_fold(learner_factory, X[train], y[train], X[test], y[test])
            for train, test in folds
        ]
    else:
        futures = [
            executor.submit(
                _fit_and_score_fold,
                learner_factory,
                X[train],
                y[train],
                X[test],
                y[test],
            )
            for train, test in folds
        ]
        scores = [future.result() for future in futures]
    return CrossValidationResult(scores=tuple(scores))


def cross_validate(
    learner_factory: Callable[[], SynopsisLearner],
    X: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 10,
    seed: int = 0,
    folds: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    executor=None,
) -> float:
    """Mean balanced accuracy over stratified k-fold CV.

    The historical scalar-return entry point; use
    :func:`cross_validate_detailed` for per-fold scores.
    """
    return cross_validate_detailed(
        learner_factory, X, y, k=k, seed=seed, folds=folds, executor=executor
    ).mean

"""Tree-Augmented Naive Bayes (TAN) synopsis builder.

TAN relaxes naive Bayes' independence assumption by letting each
attribute depend on one other attribute besides the class.  The
augmenting tree is the maximum spanning tree over pairwise conditional
mutual information I(Ai; Aj | C) — the classic Friedman/Geiger/
Goldszmidt construction used by WEKA's ``BayesNet`` TAN search.

The paper finds TAN the best accuracy/cost trade-off for synopsis
construction (Section V.B): nearly SVM accuracy at a fraction of the
build-and-decide time.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import SynopsisLearner, register_learner
from .discretize import EqualFrequencyDiscretizer

__all__ = ["TanSynopsis"]


def _conditional_mutual_information(
    a: np.ndarray, b: np.ndarray, y: np.ndarray, la: int, lb: int
) -> float:
    """I(A; B | C) from discrete codes with levels ``la``/``lb``.

    Per-class joint counts come from one ``np.bincount`` over the
    combined ``(class, a, b)`` code — an order of magnitude faster than
    ``np.add.at`` scatter-adds, with identical integer counts.
    """
    n = a.size
    joint_counts = np.bincount(
        (y * la + a) * lb + b, minlength=2 * la * lb
    ).reshape(2, la, lb)
    cmi = 0.0
    for c in (0, 1):
        nc = int(joint_counts[c].sum())
        if nc == 0:
            continue
        joint = joint_counts[c].astype(float)
        joint /= nc
        pa = joint.sum(axis=1, keepdims=True)
        pb = joint.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(joint > 0, joint / (pa @ pb), 1.0)
            terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
        cmi += nc / n * float(terms.sum())
    return max(0.0, cmi)


@register_learner("tan")
class TanSynopsis(SynopsisLearner):
    """TAN over equal-frequency-discretized attributes."""

    def __init__(self, *, bins: int = 5, alpha: float = 1.0):
        """``alpha`` is the Laplace smoothing pseudo-count."""
        super().__init__()
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.bins = bins
        self.alpha = alpha
        self.discretizer = EqualFrequencyDiscretizer(bins=bins)
        self.parents_: Optional[List[Optional[int]]] = None
        self.log_prior_: Optional[np.ndarray] = None
        # cpt_[j][c] is P(A_j | parent value, C=c): (levels_parent, levels_j)
        self.cpt_: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------
    def _build_tree(self, codes: np.ndarray, y: np.ndarray) -> List[Optional[int]]:
        """Maximum-CMI spanning tree, directed away from attribute 0."""
        p = codes.shape[1]
        levels = [self.discretizer.levels(j) for j in range(p)]
        if p == 1:
            return [None]
        weights = np.zeros((p, p))
        for i in range(p):
            for j in range(i + 1, p):
                w = _conditional_mutual_information(
                    codes[:, i], codes[:, j], y, levels[i], levels[j]
                )
                weights[i, j] = weights[j, i] = w
        # Prim's algorithm from node 0
        parents: List[Optional[int]] = [None] * p
        in_tree = {0}
        best_edge = {j: (weights[0, j], 0) for j in range(1, p)}
        while len(in_tree) < p:
            j = max(best_edge, key=lambda k: best_edge[k][0])
            w, parent = best_edge.pop(j)
            parents[j] = parent
            in_tree.add(j)
            for k in best_edge:
                if weights[j, k] > best_edge[k][0]:
                    best_edge[k] = (weights[j, k], j)
        return parents

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        codes = self.discretizer.fit(X).transform(X)
        p = codes.shape[1]
        levels = [self.discretizer.levels(j) for j in range(p)]
        self.parents_ = self._build_tree(codes, y)

        n = y.size
        counts = np.array([(y == 0).sum(), (y == 1).sum()], dtype=float)
        self.log_prior_ = np.log((counts + self.alpha) / (n + 2 * self.alpha))

        # CPT estimation: one bincount per attribute over the combined
        # (class, parent, value) code replaces per-class scatter-adds;
        # the integer counts — and therefore the smoothed tables — are
        # identical to the element-at-a-time accumulation
        self.cpt_ = []
        for j in range(p):
            parent = self.parents_[j]
            lp = 1 if parent is None else levels[parent]
            lj = levels[j]
            parent_codes = (
                np.zeros(n, dtype=int) if parent is None else codes[:, parent]
            )
            table = (
                np.bincount(
                    (y * lp + parent_codes) * lj + codes[:, j],
                    minlength=2 * lp * lj,
                )
                .reshape(2, lp, lj)
                .astype(float)
            )
            table += self.alpha
            table /= table.sum(axis=2, keepdims=True)
            self.cpt_.append(np.log(table))

    # ------------------------------------------------------------------
    def _get_params(self):
        return {"bins": self.bins, "alpha": self.alpha}

    def _get_state(self):
        return {
            "edges": [e.tolist() for e in self.discretizer.edges_],
            "parents": self.parents_,
            "log_prior": self.log_prior_.tolist(),
            "cpt": [table.tolist() for table in self.cpt_],
        }

    def _set_state(self, state):
        self.discretizer.edges_ = [
            np.array(e, dtype=float) for e in state["edges"]
        ]
        self.parents_ = [
            None if p is None else int(p) for p in state["parents"]
        ]
        self.log_prior_ = np.array(state["log_prior"], dtype=float)
        self.cpt_ = [np.array(table, dtype=float) for table in state["cpt"]]

    # ------------------------------------------------------------------
    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        codes = self.discretizer.transform(X)
        n, p = codes.shape
        log_post = np.tile(self.log_prior_, (n, 1))  # (n, 2)
        for j in range(p):
            parent = self.parents_[j]
            parent_codes = (
                np.zeros(n, dtype=int) if parent is None else codes[:, parent]
            )
            for c in (0, 1):
                log_post[:, c] += self.cpt_[j][c][parent_codes, codes[:, j]]
        m = log_post.max(axis=1, keepdims=True)
        e = np.exp(log_post - m)
        return e[:, 1] / e.sum(axis=1)

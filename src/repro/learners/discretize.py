"""Attribute discretization for the Bayesian learners.

TAN (and the information-gain attribute ranking) operate on discrete
attributes; runtime metrics are continuous.  Two schemes are provided:

* :class:`EqualFrequencyDiscretizer` — quantile bins, robust to the
  heavy-tailed counter distributions;
* :class:`EntropyDiscretizer` — supervised recursive binary splits on
  information gain with an MDL stopping rule (Fayyad & Irani style),
  WEKA's default for Bayesian network learners.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["EqualFrequencyDiscretizer", "EntropyDiscretizer"]


def _entropy(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    p = counts / labels.size
    return float(-(p * np.log2(p)).sum())


class EqualFrequencyDiscretizer:
    """Per-attribute quantile binning into at most ``bins`` levels.

    Duplicate quantile edges (constant or near-constant attributes)
    collapse, so an attribute may end up with fewer levels than
    requested — possibly a single level, which downstream learners must
    tolerate (it simply carries no information).
    """

    def __init__(self, bins: int = 5):
        if bins < 2:
            raise ValueError("need at least 2 bins")
        self.bins = bins
        self.edges_: List[np.ndarray] = []

    @property
    def fitted(self) -> bool:
        return bool(self.edges_)

    def fit(self, X: np.ndarray) -> "EqualFrequencyDiscretizer":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        self.edges_ = []
        quantiles = np.linspace(0.0, 1.0, self.bins + 1)[1:-1]
        for j in range(X.shape[1]):
            edges = np.unique(np.quantile(X[:, j], quantiles))
            self.edges_.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("discretizer is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != len(self.edges_):
            raise ValueError("attribute count mismatch")
        out = np.empty(X.shape, dtype=int)
        for j, edges in enumerate(self.edges_):
            out[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def levels(self, j: int) -> int:
        """Number of discrete levels of attribute ``j``."""
        if not self.fitted:
            raise RuntimeError("discretizer is not fitted")
        return len(self.edges_[j]) + 1


class EntropyDiscretizer:
    """Supervised MDL discretization (Fayyad & Irani, 1993).

    Each attribute is split recursively at the boundary maximizing
    information gain about the class, stopping when the MDL criterion
    rejects the split.  Attributes where no split passes get a single
    level (uninformative).
    """

    def __init__(self, max_depth: int = 4):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.edges_: List[np.ndarray] = []

    @property
    def fitted(self) -> bool:
        return bool(self.edges_)

    # ------------------------------------------------------------------
    def _best_split(
        self, values: np.ndarray, labels: np.ndarray
    ) -> Optional[float]:
        """MDL-accepted cut point for one (sorted) value range, if any."""
        n = values.size
        if n < 4:
            return None
        order = np.argsort(values, kind="stable")
        v, lab = values[order], labels[order]
        # candidate boundaries: midpoints where the value changes
        change = np.nonzero(np.diff(v) > 0)[0]
        if change.size == 0:
            return None
        base_entropy = _entropy(lab)
        best_gain, best_cut = 0.0, None
        best_left = best_right = None
        for idx in change:
            left, right = lab[: idx + 1], lab[idx + 1 :]
            split_entropy = (
                left.size * _entropy(left) + right.size * _entropy(right)
            ) / n
            gain = base_entropy - split_entropy
            if gain > best_gain:
                best_gain = gain
                best_cut = (v[idx] + v[idx + 1]) / 2.0
                best_left, best_right = left, right
        if best_cut is None:
            return None
        # MDL acceptance test
        k = np.unique(lab).size
        k1 = np.unique(best_left).size
        k2 = np.unique(best_right).size
        delta = (
            np.log2(3.0**k - 2.0)
            - k * base_entropy
            + k1 * _entropy(best_left)
            + k2 * _entropy(best_right)
        )
        threshold = (np.log2(n - 1.0) + delta) / n
        return best_cut if best_gain > threshold else None

    def _split_recursive(
        self, values: np.ndarray, labels: np.ndarray, depth: int, cuts: List[float]
    ) -> None:
        if depth >= self.max_depth:
            return
        cut = self._best_split(values, labels)
        if cut is None:
            return
        cuts.append(cut)
        mask = values <= cut
        self._split_recursive(values[mask], labels[mask], depth + 1, cuts)
        self._split_recursive(values[~mask], labels[~mask], depth + 1, cuts)

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "EntropyDiscretizer":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if y.shape != (X.shape[0],):
            raise ValueError("y length must match X rows")
        self.edges_ = []
        for j in range(X.shape[1]):
            cuts: List[float] = []
            self._split_recursive(X[:, j], y, 0, cuts)
            self.edges_.append(np.array(sorted(cuts)))
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("discretizer is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != len(self.edges_):
            raise ValueError("attribute count mismatch")
        out = np.empty(X.shape, dtype=int)
        for j, edges in enumerate(self.edges_):
            out[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return out

    def fit_transform(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def levels(self, j: int) -> int:
        if not self.fitted:
            raise RuntimeError("discretizer is not fitted")
        return len(self.edges_[j]) + 1

"""Support-vector-machine synopsis builder (SMO training).

The paper's SVM synopsis is WEKA's SMO.  This is a from-scratch
sequential-minimal-optimization trainer with an RBF (or linear) kernel
over standardized attributes.  As in the paper, it is the most accurate
model on several workloads *and by far the most expensive to build* —
its kernel-matrix/iterative optimization cost is the reason the paper
rejects it for online use in favour of TAN (1710 ms versus 50 ms
build-and-decide time in Section V.B).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import SynopsisLearner, register_learner

__all__ = ["SvmSynopsis"]


@register_learner("svm")
class SvmSynopsis(SynopsisLearner):
    """Soft-margin SVM trained with simplified SMO (Platt, 1998)."""

    def __init__(
        self,
        *,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: Optional[float] = None,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 20_000,
        seed: int = 0,
    ):
        super().__init__()
        if C <= 0:
            raise ValueError("C must be positive")
        if kernel not in ("rbf", "linear"):
            raise ValueError("kernel must be 'rbf' or 'linear'")
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed
        self._gamma_value: float = 1.0
        self._constant_class: Optional[int] = None
        self._X: Optional[np.ndarray] = None
        self._coef: Optional[np.ndarray] = None  # alpha_i * y_i
        self._b: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        sq = (
            (A**2).sum(axis=1)[:, None]
            - 2.0 * (A @ B.T)
            + (B**2).sum(axis=1)[None, :]
        )
        return np.exp(-self._gamma_value * np.maximum(sq, 0.0))

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray, y01: np.ndarray) -> None:
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        Z = self._standardize(X)
        n, p = Z.shape

        if len(np.unique(y01)) < 2:
            self._constant_class = int(y01[0])
            return
        self._constant_class = None

        if self.gamma is not None:
            self._gamma_value = self.gamma
        else:
            var = float(Z.var()) or 1.0
            self._gamma_value = 1.0 / (p * var)

        y = np.where(y01 == 1, 1.0, -1.0)
        K = self._kernel_matrix(Z, Z)
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)

        # SMO decision-function kernel: reuse work across passes.
        # ``coef`` mirrors ``alpha * y`` via direct assignment whenever
        # an alpha changes, so each f(i) costs one dot product instead
        # of an n-element multiply plus a dot product.  The column view
        # K[:, i] is kept deliberately: a contiguous-row dot takes a
        # different BLAS path whose last-ulp rounding diverges from the
        # historical trajectory.
        coef = np.zeros(n)

        def f(i: int) -> float:
            return float(coef @ K[:, i] + b)

        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                iters += 1
                e_i = f(i) - y[i]
                if not (
                    (y[i] * e_i < -self.tol and alpha[i] < self.C)
                    or (y[i] * e_i > self.tol and alpha[i] > 0)
                ):
                    continue
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                e_j = f(j) - y[j]
                a_i_old, a_j_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, a_j_old - a_i_old)
                    high = min(self.C, self.C + a_j_old - a_i_old)
                else:
                    low = max(0.0, a_i_old + a_j_old - self.C)
                    high = min(self.C, a_i_old + a_j_old)
                if low >= high:
                    continue
                eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                if eta >= 0:
                    continue
                a_j = a_j_old - y[j] * (e_i - e_j) / eta
                a_j = min(high, max(low, a_j))
                if abs(a_j - a_j_old) < 1e-6:
                    continue
                a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j)
                alpha[i], alpha[j] = a_i, a_j
                coef[i], coef[j] = a_i * y[i], a_j * y[j]
                b1 = (
                    b
                    - e_i
                    - y[i] * (a_i - a_i_old) * K[i, i]
                    - y[j] * (a_j - a_j_old) * K[i, j]
                )
                b2 = (
                    b
                    - e_j
                    - y[i] * (a_i - a_i_old) * K[i, j]
                    - y[j] * (a_j - a_j_old) * K[j, j]
                )
                if 0 < a_i < self.C:
                    b = b1
                elif 0 < a_j < self.C:
                    b = b2
                else:
                    b = (b1 + b2) / 2.0
                changed += 1
            passes = passes + 1 if changed == 0 else 0

        support = alpha > 1e-8
        self._X = Z[support]
        self._coef = (alpha * y)[support]
        self._b = b

    # ------------------------------------------------------------------
    def _get_params(self):
        return {
            "C": self.C,
            "kernel": self.kernel,
            "gamma": self.gamma,
            "tol": self.tol,
            "max_passes": self.max_passes,
            "max_iter": self.max_iter,
            "seed": self.seed,
        }

    def _get_state(self):
        return {
            "gamma_value": self._gamma_value,
            "constant_class": self._constant_class,
            "support": None if self._X is None else self._X.tolist(),
            "coef": None if self._coef is None else self._coef.tolist(),
            "b": self._b,
            "mean": None if self._mean is None else self._mean.tolist(),
            "std": None if self._std is None else self._std.tolist(),
        }

    def _set_state(self, state):
        self._gamma_value = float(state["gamma_value"])
        constant = state["constant_class"]
        self._constant_class = None if constant is None else int(constant)
        self._X = (
            None
            if state["support"] is None
            else np.array(state["support"], dtype=float)
        )
        self._coef = (
            None
            if state["coef"] is None
            else np.array(state["coef"], dtype=float)
        )
        self._b = float(state["b"])
        self._mean = (
            None if state["mean"] is None else np.array(state["mean"], dtype=float)
        )
        self._std = (
            None if state["std"] is None else np.array(state["std"], dtype=float)
        )

    # ------------------------------------------------------------------
    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._constant_class is not None:
            return np.full(X.shape[0], float(self._constant_class))
        Z = self._standardize(X)
        if self._X is None or self._X.shape[0] == 0:
            decision = np.full(Z.shape[0], self._b)
        else:
            decision = self._kernel_matrix(Z, self._X) @ self._coef + self._b
        # logistic squash: monotone in the margin, 0.5 at the boundary
        return 1.0 / (1.0 + np.exp(-np.clip(decision, -30.0, 30.0)))

    def n_support_(self) -> int:
        """Number of support vectors (0 before fit / degenerate fit)."""
        return 0 if self._X is None else int(self._X.shape[0])

"""Naive-Bayes synopsis builder.

WEKA's default ``NaiveBayes`` models each continuous attribute with a
class-conditional normal distribution; that is reproduced here.  The
paper observes it trails TAN "because of its strong assumption on the
independence of each metric" — hardware counters are anything but
independent — while remaining the cheapest model to train and query.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import SynopsisLearner, register_learner

__all__ = ["NaiveBayesSynopsis"]

_MIN_STD = 1e-6


@register_learner("naive")
class NaiveBayesSynopsis(SynopsisLearner):
    """Gaussian naive Bayes with Laplace-smoothed priors."""

    def __init__(self) -> None:
        super().__init__()
        self.priors_: Optional[np.ndarray] = None  # shape (2,)
        self.means_: Optional[np.ndarray] = None  # shape (2, p)
        self.stds_: Optional[np.ndarray] = None  # shape (2, p)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n, p = X.shape
        self.priors_ = np.empty(2)
        self.means_ = np.empty((2, p))
        self.stds_ = np.empty((2, p))
        pooled_std = np.maximum(X.std(axis=0), _MIN_STD)
        for c in (0, 1):
            mask = y == c
            self.priors_[c] = (mask.sum() + 1.0) / (n + 2.0)
            if mask.any():
                self.means_[c] = X[mask].mean(axis=0)
                if mask.sum() > 1:
                    self.stds_[c] = np.maximum(X[mask].std(axis=0), _MIN_STD)
                else:
                    self.stds_[c] = pooled_std
            else:
                # unseen class: fall back to pooled statistics
                self.means_[c] = X.mean(axis=0)
                self.stds_[c] = pooled_std

    def _log_likelihood(self, X: np.ndarray, c: int) -> np.ndarray:
        mu, sigma = self.means_[c], self.stds_[c]
        z = (X - mu) / sigma
        per_attr = -0.5 * z**2 - np.log(sigma) - 0.5 * np.log(2.0 * np.pi)
        return per_attr.sum(axis=1) + np.log(self.priors_[c])

    def _log_posterior(self, X: np.ndarray) -> np.ndarray:
        """(n, 2) joint log-likelihoods, both classes in one broadcast.

        Element-for-element the same arithmetic as two
        :meth:`_log_likelihood` calls — the (n, 2, p) broadcast just
        evaluates both classes in a single vectorized pass, which
        halves the Python/numpy dispatch cost on the CV hot path.
        """
        z = (X[:, None, :] - self.means_[None, :, :]) / self.stds_[None, :, :]
        per_attr = (
            -0.5 * z**2
            - np.log(self.stds_)[None, :, :]
            - 0.5 * np.log(2.0 * np.pi)
        )
        return per_attr.sum(axis=2) + np.log(self.priors_)[None, :]

    def _get_state(self):
        return {
            "priors": self.priors_.tolist(),
            "means": self.means_.tolist(),
            "stds": self.stds_.tolist(),
        }

    def _set_state(self, state):
        self.priors_ = np.array(state["priors"], dtype=float)
        self.means_ = np.array(state["means"], dtype=float)
        self.stds_ = np.array(state["stds"], dtype=float)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        log_post = self._log_posterior(X)
        # stable softmax over the two classes
        m = log_post.max(axis=1)
        e0 = np.exp(log_post[:, 0] - m)
        e1 = np.exp(log_post[:, 1] - m)
        return e1 / (e0 + e1)

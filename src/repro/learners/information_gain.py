"""Information-gain attribute relevance (paper Section II.B.2).

The paper "borrows the concept of information gain in information
theory to evaluate the relevance between each attribute and the class
variable and only includes the most relevant metrics in a synopsis."
Attributes are discretized first; gain is the reduction in class
entropy from conditioning on the attribute.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .discretize import EqualFrequencyDiscretizer

__all__ = ["information_gain", "rank_attributes"]


def _entropy_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def information_gain(values: np.ndarray, labels: np.ndarray) -> float:
    """IG(C; A) for one *discrete* attribute column.

    ``values`` must already be discretized (small non-negative ints).
    """
    values = np.asarray(values)
    labels = np.asarray(labels)
    if values.shape != labels.shape:
        raise ValueError("values and labels must have equal length")
    if values.size == 0:
        return 0.0
    _, label_counts = np.unique(labels, return_counts=True)
    h_c = _entropy_from_counts(label_counts)
    gain = h_c
    n = values.size
    for level in np.unique(values):
        mask = values == level
        _, sub_counts = np.unique(labels[mask], return_counts=True)
        gain -= mask.sum() / n * _entropy_from_counts(sub_counts)
    return max(0.0, float(gain))


def rank_attributes(
    X: np.ndarray,
    y: np.ndarray,
    names: Optional[Sequence[str]] = None,
    *,
    bins: int = 5,
) -> List[Tuple[str, float]]:
    """Attributes ordered by decreasing information gain.

    Continuous columns are equal-frequency discretized before scoring.
    Returns (name, gain) pairs; names default to column indices.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if X.ndim != 2:
        raise ValueError("X must be 2-dimensional")
    if y.shape != (X.shape[0],):
        raise ValueError("y length must match X rows")
    if names is None:
        names = [str(j) for j in range(X.shape[1])]
    if len(names) != X.shape[1]:
        raise ValueError("names length must match attribute count")
    codes = EqualFrequencyDiscretizer(bins=bins).fit_transform(X)
    scored = [
        (str(names[j]), information_gain(codes[:, j], y))
        for j in range(X.shape[1])
    ]
    scored.sort(key=lambda pair: pair[1], reverse=True)
    return scored

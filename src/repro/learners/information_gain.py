"""Information-gain attribute relevance (paper Section II.B.2).

The paper "borrows the concept of information gain in information
theory to evaluate the relevance between each attribute and the class
variable and only includes the most relevant metrics in a synopsis."
Attributes are discretized first; gain is the reduction in class
entropy from conditioning on the attribute.

:func:`information_gain` scores one column; :func:`rank_attributes`
scores a whole matrix through :func:`information_gain_matrix`, which
counts every (level, class) cell of every column with a single
``np.bincount`` pass instead of masking the label vector once per
level per column.  The two paths are arithmetically identical: the
joint counts are exact integers either way, and the per-level entropy
terms are accumulated in the same (ascending level) order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .discretize import EqualFrequencyDiscretizer

__all__ = ["information_gain", "information_gain_matrix", "rank_attributes"]

#: above this many (level, class) cells the one-shot bincount table
#: would dominate memory; fall back to the per-column path
_MAX_TABLE_CELLS = 4_000_000


def _entropy_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def information_gain(values: np.ndarray, labels: np.ndarray) -> float:
    """IG(C; A) for one *discrete* attribute column.

    ``values`` must already be discretized (small non-negative ints).
    """
    values = np.asarray(values)
    labels = np.asarray(labels)
    if values.shape != labels.shape:
        raise ValueError("values and labels must have equal length")
    if values.size == 0:
        return 0.0
    _, label_counts = np.unique(labels, return_counts=True)
    h_c = _entropy_from_counts(label_counts)
    gain = h_c
    n = values.size
    for level in np.unique(values):
        mask = values == level
        _, sub_counts = np.unique(labels[mask], return_counts=True)
        gain -= mask.sum() / n * _entropy_from_counts(sub_counts)
    return max(0.0, float(gain))


def information_gain_matrix(codes: np.ndarray, y: np.ndarray) -> np.ndarray:
    """IG(C; A_j) for every column of a discretized matrix at once.

    One flattened ``np.bincount`` over ``(column, level, class)`` codes
    replaces the per-level boolean masking of the column-at-a-time
    path, turning the O(columns x levels x n) scoring loop into a
    single O(columns x n) counting pass.
    """
    codes = np.asarray(codes)
    y = np.asarray(y)
    if codes.ndim != 2:
        raise ValueError("codes must be 2-dimensional")
    if y.shape != (codes.shape[0],):
        raise ValueError("labels length must match codes rows")
    n, p = codes.shape
    if p == 0:
        return np.zeros(0)
    if n == 0:
        return np.zeros(p)
    if not np.issubdtype(codes.dtype, np.integer):
        raise ValueError("codes must be integer (discretize first)")

    classes, y_idx = np.unique(y, return_inverse=True)
    nc = classes.size
    h_c = _entropy_from_counts(np.bincount(y_idx))

    # shift any negative codes per column; level *order* is preserved,
    # which is all the ascending accumulation below depends on
    col_min = codes.min(axis=0)
    if (col_min < 0).any():
        codes = codes - np.minimum(col_min, 0)[None, :]
    levels = codes.max(axis=0).astype(np.int64) + 1
    offsets = np.concatenate(([0], np.cumsum(levels[:-1])))
    total_cells = int(levels.sum()) * nc
    if total_cells > _MAX_TABLE_CELLS:
        return np.array(
            [information_gain(codes[:, j], y) for j in range(p)], dtype=float
        )

    flat = (codes + offsets[None, :]) * nc + y_idx[:, None]
    joint = np.bincount(flat.ravel(), minlength=total_cells)

    gains = np.empty(p)
    for j in range(p):
        start = int(offsets[j]) * nc
        block = joint[start : start + int(levels[j]) * nc].reshape(-1, nc)
        gain = h_c
        for level_counts in block:
            present = level_counts.sum()
            if present == 0:
                continue
            gain -= present / n * _entropy_from_counts(level_counts)
        gains[j] = max(0.0, float(gain))
    return gains


def rank_attributes(
    X: np.ndarray,
    y: np.ndarray,
    names: Optional[Sequence[str]] = None,
    *,
    bins: int = 5,
) -> List[Tuple[str, float]]:
    """Attributes ordered by decreasing information gain.

    Continuous columns are equal-frequency discretized before scoring.
    Returns (name, gain) pairs; names default to column indices.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if X.ndim != 2:
        raise ValueError("X must be 2-dimensional")
    if y.shape != (X.shape[0],):
        raise ValueError("y length must match X rows")
    if names is None:
        names = [str(j) for j in range(X.shape[1])]
    if len(names) != X.shape[1]:
        raise ValueError("names length must match attribute count")
    codes = EqualFrequencyDiscretizer(bins=bins).fit_transform(X)
    gains = information_gain_matrix(codes, y)
    scored = [(str(names[j]), float(gains[j])) for j in range(X.shape[1])]
    scored.sort(key=lambda pair: pair[1], reverse=True)
    return scored

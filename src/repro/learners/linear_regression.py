"""Linear-regression synopsis builder.

The paper's LR baseline is WEKA's ``LinearRegression`` applied to the
0/1 class variable: fit a least-squares plane to the labels, then
threshold the regression output at 0.5.  WEKA's implementation performs
internal attribute selection (greedy elimination on the Akaike
criterion) before the final fit, which dominates its training cost —
that is why the paper measures LR *slower* than naive Bayes and TAN
(90 ms versus 10/50 ms).  The same elimination loop is reproduced here
(and can be disabled with ``attribute_selection=False``).

As the paper notes, LR "performed worst because it can only capture
linear correlations" — kept as the baseline it is.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import SynopsisLearner, register_learner

__all__ = ["LinearRegressionSynopsis"]


def _ols(X: np.ndarray, y: np.ndarray, ridge: float) -> np.ndarray:
    """Least-squares weights with a tiny ridge for rank safety."""
    gram = X.T @ X + ridge * np.eye(X.shape[1])
    return np.linalg.solve(gram, X.T @ y)


@register_learner("lr")
class LinearRegressionSynopsis(SynopsisLearner):
    """OLS on the class variable, thresholded at 0.5."""

    def __init__(
        self,
        *,
        attribute_selection: bool = True,
        ridge: float = 1e-8,
    ):
        super().__init__()
        self.attribute_selection = attribute_selection
        self.ridge = ridge
        self.weights_: Optional[np.ndarray] = None
        self.selected_: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    @staticmethod
    def _aic(residual_ss: float, n: int, k: int) -> float:
        """Akaike criterion as WEKA computes it for regression."""
        return n * np.log(max(residual_ss, 1e-12) / n) + 2.0 * k

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        Z = self._standardize(X)
        n, p = Z.shape
        active = list(range(p))

        def design(cols: list) -> np.ndarray:
            return np.hstack([Z[:, cols], np.ones((n, 1))])

        w = _ols(design(active), y.astype(float), self.ridge)
        if self.attribute_selection and p > 1:
            rss = float(((design(active) @ w - y) ** 2).sum())
            best_aic = self._aic(rss, n, len(active) + 1)
            improved = True
            while improved and len(active) > 1:
                improved = False
                for col in list(active):
                    trial = [c for c in active if c != col]
                    tw = _ols(design(trial), y.astype(float), self.ridge)
                    t_rss = float(((design(trial) @ tw - y) ** 2).sum())
                    t_aic = self._aic(t_rss, n, len(trial) + 1)
                    if t_aic < best_aic:
                        best_aic = t_aic
                        active = trial
                        w = tw
                        improved = True
                        break
        self.selected_ = np.array(active, dtype=int)
        self.weights_ = w

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Z = self._standardize(X)[:, self.selected_]
        design = np.hstack([Z, np.ones((Z.shape[0], 1))])
        return design @ self.weights_

    # ------------------------------------------------------------------
    def _get_params(self):
        return {
            "attribute_selection": self.attribute_selection,
            "ridge": self.ridge,
        }

    def _get_state(self):
        return {
            "weights": self.weights_.tolist(),
            "selected": self.selected_.tolist(),
            "mean": self._mean.tolist(),
            "std": self._std.tolist(),
        }

    def _set_state(self, state):
        self.weights_ = np.array(state["weights"], dtype=float)
        self.selected_ = np.array(state["selected"], dtype=int)
        self._mean = np.array(state["mean"], dtype=float)
        self._std = np.array(state["std"], dtype=float)

"""Learner interface for synopsis construction.

The paper builds synopses with four WEKA algorithms — linear
regression, naive Bayes, tree-augmented naive Bayes (TAN) and an SVM —
over instances whose attributes are low-level metrics and whose class
variable is the binary overload state.  Each algorithm here implements
the same minimal contract: ``fit`` on a float matrix with 0/1 labels,
``predict`` class labels, and ``predict_proba`` for the positive class
(used by confidence-weighted extensions).

Learners are registered by short name so experiment configuration can
select them the way the paper's tables do ("LR", "Naive", "SVM",
"TAN"); see :func:`make_learner`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Type

import numpy as np

__all__ = [
    "SynopsisLearner",
    "register_learner",
    "make_learner",
    "learner_names",
    "LearnerFactory",
]


class SynopsisLearner(ABC):
    """Binary classifier over metric vectors."""

    #: short name used in tables and the registry (set by subclasses)
    name: str = ""

    def __init__(self) -> None:
        self._fitted = False

    # ------------------------------------------------------------------
    @abstractmethod
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Train on validated inputs (n_samples, n_features) / (n_samples,)."""

    @abstractmethod
    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(overload) per row of a validated matrix."""

    def _get_params(self) -> Dict[str, object]:
        """Constructor arguments to rebuild this learner (overridable)."""
        return {}

    def _get_state(self) -> Dict[str, object]:
        """JSON-serializable fitted state (see :mod:`..serialize`)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support serialization"
        )

    def _set_state(self, state: Dict[str, object]) -> None:
        """Restore fitted state produced by :meth:`_get_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support serialization"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialize learner identity, parameters and fitted state."""
        payload: Dict[str, object] = {
            "learner": self.name,
            "params": self._get_params(),
            "fitted": self._fitted,
        }
        if self._fitted:
            payload["state"] = self._get_state()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SynopsisLearner":
        """Rebuild a learner serialized by :meth:`to_dict`."""
        learner = make_learner(
            str(payload["learner"]), **dict(payload.get("params", {}))
        )
        if payload.get("fitted"):
            learner._set_state(dict(payload["state"]))
            learner._fitted = True
        return learner

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "SynopsisLearner":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if y.shape != (X.shape[0],):
            raise ValueError("y length must match X rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.isin(y, (0, 1)).all():
            raise ValueError("labels must be 0/1")
        self._fit(X, y)
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        proba = self._predict_proba(X)
        return np.clip(proba, 0.0, 1.0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """0/1 class labels per row."""
        return (self.predict_proba(X) >= 0.5).astype(int)

    def predict_one(self, x: np.ndarray) -> int:
        """Class label for a single metric vector."""
        return int(self.predict(np.asarray(x, dtype=float).reshape(1, -1))[0])


_REGISTRY: Dict[str, Callable[..., SynopsisLearner]] = {}


def register_learner(name: str) -> Callable[[Type[SynopsisLearner]], Type[SynopsisLearner]]:
    """Class decorator adding a learner to the registry under ``name``."""

    def decorator(cls: Type[SynopsisLearner]) -> Type[SynopsisLearner]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def make_learner(name: str, **kwargs: object) -> SynopsisLearner:
    """Instantiate a registered learner ('lr', 'naive', 'svm', 'tan')."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown learner {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


class LearnerFactory:
    """Picklable zero-argument factory for a registered learner.

    Cross-validation fans folds out over worker processes; a bound
    method or closure would drag its whole enclosing object through
    pickle, while this carries only the registry name and kwargs.
    """

    def __init__(self, name: str, kwargs: Dict[str, object] = None):
        self.name = name
        self.kwargs = dict(kwargs or {})

    def __call__(self) -> SynopsisLearner:
        return make_learner(self.name, **self.kwargs)

    def __repr__(self) -> str:
        return f"LearnerFactory({self.name!r}, {self.kwargs!r})"


def learner_names() -> list:
    """Registered learner names, in table order when possible."""
    order = ["lr", "naive", "svm", "tan"]
    known = [n for n in order if n in _REGISTRY]
    extras = sorted(set(_REGISTRY) - set(order))
    return known + extras

"""Reproduction of "Online Measurement of the Capacity of Multi-tier
Websites Using Hardware Performance Counters" (Rao & Xu, ICDCS 2008).

The package layers:

* :mod:`repro.simulator` — discrete-event two-tier website testbed
  (replaces the paper's physical Tomcat/MySQL machines);
* :mod:`repro.workload` — TPC-W interactions, mixes and the Remote
  Browser Emulator;
* :mod:`repro.telemetry` — synthetic hardware-counter and OS metrics,
  sampling, labelled datasets, collection-cost models;
* :mod:`repro.learners` — from-scratch LR / naive Bayes / TAN / SVM
  synopsis builders (the WEKA substitutes);
* :mod:`repro.core` — the paper's contribution: Productivity Index,
  performance synopses and the two-level coordinated predictor behind
  the :class:`~repro.core.capacity.CapacityMeter` façade;
* :mod:`repro.control` — measurement-based admission control;
* :mod:`repro.faults` — deterministic fault injection, degraded-mode
  campaigns, watchdog re-arming and monitor checkpoint/restore;
* :mod:`repro.experiments` — regeneration of every table and figure;
* :mod:`repro.analysis` — run summaries and text rendering.

Quickstart::

    from repro.experiments import PipelineConfig, get_pipeline, run_fig4

    pipeline = get_pipeline(PipelineConfig(scale=0.4, window=20))
    print("\\n".join(run_fig4(pipeline).rows()))
"""

from .core import (
    CapacityMeter,
    CoordinatedPredictor,
    OnlineCapacityMonitor,
    PerformanceSynopsis,
    PiDefinition,
    Scheme,
    SynopsisConfig,
)

__version__ = "1.1.0"

__all__ = [
    "CapacityMeter",
    "CoordinatedPredictor",
    "OnlineCapacityMonitor",
    "PerformanceSynopsis",
    "PiDefinition",
    "Scheme",
    "SynopsisConfig",
    "__version__",
]

"""Fault injection and degraded-mode operation.

Real perf-counter telemetry degrades: counters drop out of multiplexed
sets, collectors stall, values glitch, intervals arrive late or twice.
This package makes those failure modes *first-class and reproducible*:

* :mod:`~repro.faults.plan` — declarative, seedable fault schedules;
* :mod:`~repro.faults.injector` — deterministic injection over the
  interval-record stream (copy-on-write; producers never see mutations);
* :mod:`~repro.faults.watchdog` — stalled-collector detection with
  bounded-exponential-backoff re-arming;
* :mod:`~repro.faults.checkpoint` — monitor checkpoint/restore so a
  crashed ``repro monitor`` resumes bit-identically without retraining;
* :mod:`~repro.faults.retry` — bounded retry-with-backoff for I/O;
* :mod:`~repro.faults.campaign` — clean-vs-faulted replay campaigns
  reporting decision-accuracy degradation (the ``repro faults`` CLI).
"""

from .campaign import (
    CampaignResult,
    decision_signature,
    fresh_monitor,
    run_campaign,
)
from .checkpoint import (
    CHECKPOINT_FORMAT,
    checkpoint_payload,
    load_checkpoint,
    read_json_checkpoint,
    save_checkpoint,
    write_json_atomic,
)
from .injector import FaultInjector, InjectionCounters
from .plan import FAULT_KINDS, FaultPlan, FaultSpec
from .process import (
    PROCESS_FAULT_KINDS,
    ProcessFaultPlan,
    ProcessFaultSpec,
)
from .retry import retry_io
from .watchdog import SamplerWatchdog, WatchdogCounters

__all__ = [
    "CHECKPOINT_FORMAT",
    "CampaignResult",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectionCounters",
    "PROCESS_FAULT_KINDS",
    "ProcessFaultPlan",
    "ProcessFaultSpec",
    "SamplerWatchdog",
    "WatchdogCounters",
    "checkpoint_payload",
    "decision_signature",
    "fresh_monitor",
    "load_checkpoint",
    "read_json_checkpoint",
    "run_campaign",
    "retry_io",
    "save_checkpoint",
    "write_json_atomic",
]

"""Checkpoint/restore for the online capacity monitor.

A crashed ``repro monitor`` should not need retraining: the checkpoint
embeds the full trained-meter payload (synopses, GPT/LHT/BPT tables —
including any online adaptation accumulated so far) *plus* the run-local
state the meter payload deliberately omits — coordinator history
registers, the aggregator's mid-window row buffers, PI-correlation
moments, operational counters and the hold-last-decision fallback
state.  Restoring and resuming the stream from the next record yields
decisions bit-identical to an uninterrupted run.

Checkpoint files are written atomically (temp file + rename) and both
directions are wrapped in :func:`~repro.faults.retry.retry_io`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Collection,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.capacity import CapacityMeter
from ..core.monitor import MonitorDecision, OnlineCapacityMonitor
from ..telemetry.sampler import WindowStats
from .retry import retry_io

__all__ = [
    "CHECKPOINT_FORMAT",
    "FLEET_CHECKPOINT_FORMAT",
    "checkpoint_payload",
    "fleet_checkpoint_payload",
    "load_checkpoint",
    "load_fleet_checkpoint",
    "read_json_checkpoint",
    "save_checkpoint",
    "save_fleet_checkpoint",
    "write_json_atomic",
]

CHECKPOINT_FORMAT = "repro.monitor-checkpoint/1"
FLEET_CHECKPOINT_FORMAT = "repro.fleet-checkpoint/1"


def write_json_atomic(
    path,
    payload: Dict[str, object],
    *,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> None:
    """Atomically write ``payload`` as JSON (temp file + rename).

    The write is wrapped in :func:`~repro.faults.retry.retry_io`; a
    reader never observes a torn file.  Shared by the monitor
    checkpoint below and the multi-site service manifest
    (:meth:`~repro.control.service.CapacityService.save`).
    """
    text = json.dumps(payload)
    target = Path(path)

    def write() -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    retry_io(write, attempts=attempts, sleep=sleep)


def read_json_checkpoint(
    path,
    *,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> Dict[str, Any]:
    """Read a JSON checkpoint written by :func:`write_json_atomic`."""
    target = Path(path)
    payload = json.loads(
        retry_io(target.read_text, attempts=attempts, sleep=sleep)
    )
    if not isinstance(payload, dict):
        raise ValueError(f"{path} is not a JSON-object checkpoint")
    return payload


def checkpoint_payload(monitor: OnlineCapacityMonitor) -> Dict[str, object]:
    """Self-contained JSON snapshot of a running monitor."""
    return {
        "format": CHECKPOINT_FORMAT,
        "meter": monitor.meter.to_payload(),
        "config": {
            "adapt": monitor.adapt,
            "min_votes": monitor.min_votes,
            "max_imputed_fraction": monitor.max_imputed_fraction,
            "confidence_decay": monitor.confidence_decay,
        },
        "state": monitor.state_dict(),
    }


def save_checkpoint(
    monitor: OnlineCapacityMonitor,
    path,
    *,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> None:
    """Atomically write a monitor checkpoint, retrying transient I/O."""
    write_json_atomic(
        path, checkpoint_payload(monitor), attempts=attempts, sleep=sleep
    )


def load_checkpoint(
    path,
    *,
    labeler: Optional[Callable[[WindowStats], int]] = None,
    retain_decisions: Optional[int] = None,
    on_decision: Optional[Callable[[MonitorDecision], None]] = None,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> OnlineCapacityMonitor:
    """Rebuild a monitor exactly where :func:`save_checkpoint` left it.

    ``labeler``/``retain_decisions``/``on_decision`` are process-local
    concerns (callables don't serialize) and are re-supplied by the
    caller; everything that influences decisions comes from the file.
    """
    payload = read_json_checkpoint(path, attempts=attempts, sleep=sleep)
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a monitor checkpoint")
    meter = CapacityMeter.from_payload(payload["meter"], labeler=labeler)
    config = payload["config"]
    monitor = OnlineCapacityMonitor(
        meter,
        adapt=bool(config["adapt"]),
        labeler=labeler,
        retain_decisions=retain_decisions,
        on_decision=on_decision,
        min_votes=(
            None if config["min_votes"] is None else int(config["min_votes"])
        ),
        max_imputed_fraction=float(config["max_imputed_fraction"]),
        confidence_decay=float(config["confidence_decay"]),
    )
    monitor.load_state(payload["state"])
    return monitor


# ----------------------------------------------------------------------
# fleet-sharded checkpoints (one file for N homogeneous monitors)
# ----------------------------------------------------------------------
def _monitor_config(monitor: OnlineCapacityMonitor) -> Dict[str, object]:
    return {
        "adapt": monitor.adapt,
        "min_votes": monitor.min_votes,
        "max_imputed_fraction": monitor.max_imputed_fraction,
        "confidence_decay": monitor.confidence_decay,
    }


def fleet_checkpoint_payload(
    named_monitors: Sequence[Tuple[str, OnlineCapacityMonitor]],
) -> Dict[str, object]:
    """Structure-of-arrays snapshot of N same-meter monitor clones.

    The per-site checkpoint embeds the full trained-meter payload in
    every file; at fleet scale (1k+ sites sharing one trained meter)
    that is almost entirely redundant.  This layout stores the shared
    parts *once* — one meter template and one config block — plus the
    only things that diverge per site: the adaptive GPT/LHT/BPT tables
    (stacked, matching the fleet backend's array layout) and each
    monitor's run-local ``state_dict``.
    """
    if not named_monitors:
        raise ValueError("fleet checkpoint needs at least one monitor")
    monitors = [monitor for _, monitor in named_monitors]
    head = monitors[0]
    config = _monitor_config(head)
    for monitor in monitors[1:]:
        if _monitor_config(monitor) != config:
            raise ValueError(
                "fleet checkpoints require homogeneous monitor config"
            )
    return {
        "format": FLEET_CHECKPOINT_FORMAT,
        "sites": [name for name, _ in named_monitors],
        "config": config,
        "meter": head.meter.to_payload(),
        "tables": [
            monitor.meter.coordinator.table_state() for monitor in monitors
        ],
        "states": [monitor.state_dict() for monitor in monitors],
    }


def save_fleet_checkpoint(
    named_monitors: Sequence[Tuple[str, OnlineCapacityMonitor]],
    path,
    *,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> None:
    """Atomically write a fleet-sharded checkpoint."""
    write_json_atomic(
        path,
        fleet_checkpoint_payload(named_monitors),
        attempts=attempts,
        sleep=sleep,
    )


def load_fleet_checkpoint(
    path,
    *,
    labeler: Optional[Callable[[WindowStats], int]] = None,
    retain_decisions: Optional[int] = None,
    sites: Optional[Collection[str]] = None,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> List[Tuple[str, OnlineCapacityMonitor]]:
    """Rebuild every monitor from a fleet-sharded checkpoint, in order.

    Each site gets a fresh clone of the shared meter template, its own
    table values restored in place
    (:meth:`~repro.core.coordinator.CoordinatedPredictor.set_tables`)
    and its run-local state loaded — bit-identical to reloading a
    per-site checkpoint of the same monitor.

    ``sites`` optionally restricts restoration to a subset of site
    names (checkpoint order is preserved): a resharded resume hands
    each worker the whole file but only pays the meter-clone cost for
    the sites in its own shard.
    """
    payload = read_json_checkpoint(path, attempts=attempts, sleep=sleep)
    if payload.get("format") != FLEET_CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a fleet checkpoint")
    names = [str(name) for name in payload["sites"]]
    tables = payload["tables"]
    states = payload["states"]
    if not (len(names) == len(tables) == len(states)):
        raise ValueError(
            f"{path} is torn: {len(names)} sites, {len(tables)} table "
            f"sets, {len(states)} states"
        )
    config = payload["config"]
    wanted = None if sites is None else set(sites)
    restored: List[Tuple[str, OnlineCapacityMonitor]] = []
    for name, table_set, state in zip(names, tables, states):
        if wanted is not None and name not in wanted:
            continue
        meter = CapacityMeter.from_payload(payload["meter"], labeler=labeler)
        monitor = OnlineCapacityMonitor(
            meter,
            adapt=bool(config["adapt"]),
            labeler=labeler,
            retain_decisions=retain_decisions,
            min_votes=(
                None
                if config["min_votes"] is None
                else int(config["min_votes"])
            ),
            max_imputed_fraction=float(config["max_imputed_fraction"]),
            confidence_decay=float(config["confidence_decay"]),
        )
        meter.coordinator.set_tables(
            np.asarray(table_set["lht"], dtype=float),
            np.asarray(table_set["gpt"], dtype=float),
            np.asarray(table_set["bpt"], dtype=float),
        )
        monitor.load_state(state)
        restored.append((name, monitor))
    return restored

"""Checkpoint/restore for the online capacity monitor.

A crashed ``repro monitor`` should not need retraining: the checkpoint
embeds the full trained-meter payload (synopses, GPT/LHT/BPT tables —
including any online adaptation accumulated so far) *plus* the run-local
state the meter payload deliberately omits — coordinator history
registers, the aggregator's mid-window row buffers, PI-correlation
moments, operational counters and the hold-last-decision fallback
state.  Restoring and resuming the stream from the next record yields
decisions bit-identical to an uninterrupted run.

Checkpoint files are written atomically (temp file + rename) and both
directions are wrapped in :func:`~repro.faults.retry.retry_io`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from ..core.capacity import CapacityMeter
from ..core.monitor import MonitorDecision, OnlineCapacityMonitor
from ..telemetry.sampler import WindowStats
from .retry import retry_io

__all__ = [
    "CHECKPOINT_FORMAT",
    "checkpoint_payload",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_FORMAT = "repro.monitor-checkpoint/1"


def checkpoint_payload(monitor: OnlineCapacityMonitor) -> Dict[str, object]:
    """Self-contained JSON snapshot of a running monitor."""
    return {
        "format": CHECKPOINT_FORMAT,
        "meter": monitor.meter.to_payload(),
        "config": {
            "adapt": monitor.adapt,
            "min_votes": monitor.min_votes,
            "max_imputed_fraction": monitor.max_imputed_fraction,
            "confidence_decay": monitor.confidence_decay,
        },
        "state": monitor.state_dict(),
    }


def save_checkpoint(
    monitor: OnlineCapacityMonitor,
    path,
    *,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> None:
    """Atomically write a monitor checkpoint, retrying transient I/O."""
    payload = json.dumps(checkpoint_payload(monitor))
    target = Path(path)

    def write() -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    retry_io(write, attempts=attempts, sleep=sleep)


def load_checkpoint(
    path,
    *,
    labeler: Optional[Callable[[WindowStats], int]] = None,
    retain_decisions: Optional[int] = None,
    on_decision: Optional[Callable[[MonitorDecision], None]] = None,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> OnlineCapacityMonitor:
    """Rebuild a monitor exactly where :func:`save_checkpoint` left it.

    ``labeler``/``retain_decisions``/``on_decision`` are process-local
    concerns (callables don't serialize) and are re-supplied by the
    caller; everything that influences decisions comes from the file.
    """
    target = Path(path)
    payload = json.loads(
        retry_io(target.read_text, attempts=attempts, sleep=sleep)
    )
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a monitor checkpoint")
    meter = CapacityMeter.from_payload(payload["meter"], labeler=labeler)
    config = payload["config"]
    monitor = OnlineCapacityMonitor(
        meter,
        adapt=bool(config["adapt"]),
        labeler=labeler,
        retain_decisions=retain_decisions,
        on_decision=on_decision,
        min_votes=(
            None if config["min_votes"] is None else int(config["min_votes"])
        ),
        max_imputed_fraction=float(config["max_imputed_fraction"]),
        confidence_decay=float(config["confidence_decay"]),
    )
    monitor.load_state(payload["state"])
    return monitor

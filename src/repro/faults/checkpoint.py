"""Checkpoint/restore for the online capacity monitor.

A crashed ``repro monitor`` should not need retraining: the checkpoint
embeds the full trained-meter payload (synopses, GPT/LHT/BPT tables —
including any online adaptation accumulated so far) *plus* the run-local
state the meter payload deliberately omits — coordinator history
registers, the aggregator's mid-window row buffers, PI-correlation
moments, operational counters and the hold-last-decision fallback
state.  Restoring and resuming the stream from the next record yields
decisions bit-identical to an uninterrupted run.

Checkpoint files are written atomically (temp file + rename) and both
directions are wrapped in :func:`~repro.faults.retry.retry_io`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from ..core.capacity import CapacityMeter
from ..core.monitor import MonitorDecision, OnlineCapacityMonitor
from ..telemetry.sampler import WindowStats
from .retry import retry_io

__all__ = [
    "CHECKPOINT_FORMAT",
    "checkpoint_payload",
    "load_checkpoint",
    "read_json_checkpoint",
    "save_checkpoint",
    "write_json_atomic",
]

CHECKPOINT_FORMAT = "repro.monitor-checkpoint/1"


def write_json_atomic(
    path,
    payload: Dict[str, object],
    *,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> None:
    """Atomically write ``payload`` as JSON (temp file + rename).

    The write is wrapped in :func:`~repro.faults.retry.retry_io`; a
    reader never observes a torn file.  Shared by the monitor
    checkpoint below and the multi-site service manifest
    (:meth:`~repro.control.service.CapacityService.save`).
    """
    text = json.dumps(payload)
    target = Path(path)

    def write() -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    retry_io(write, attempts=attempts, sleep=sleep)


def read_json_checkpoint(
    path,
    *,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> Dict[str, Any]:
    """Read a JSON checkpoint written by :func:`write_json_atomic`."""
    target = Path(path)
    payload = json.loads(
        retry_io(target.read_text, attempts=attempts, sleep=sleep)
    )
    if not isinstance(payload, dict):
        raise ValueError(f"{path} is not a JSON-object checkpoint")
    return payload


def checkpoint_payload(monitor: OnlineCapacityMonitor) -> Dict[str, object]:
    """Self-contained JSON snapshot of a running monitor."""
    return {
        "format": CHECKPOINT_FORMAT,
        "meter": monitor.meter.to_payload(),
        "config": {
            "adapt": monitor.adapt,
            "min_votes": monitor.min_votes,
            "max_imputed_fraction": monitor.max_imputed_fraction,
            "confidence_decay": monitor.confidence_decay,
        },
        "state": monitor.state_dict(),
    }


def save_checkpoint(
    monitor: OnlineCapacityMonitor,
    path,
    *,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> None:
    """Atomically write a monitor checkpoint, retrying transient I/O."""
    write_json_atomic(
        path, checkpoint_payload(monitor), attempts=attempts, sleep=sleep
    )


def load_checkpoint(
    path,
    *,
    labeler: Optional[Callable[[WindowStats], int]] = None,
    retain_decisions: Optional[int] = None,
    on_decision: Optional[Callable[[MonitorDecision], None]] = None,
    attempts: int = 3,
    sleep: Callable[[float], None] = time.sleep,
) -> OnlineCapacityMonitor:
    """Rebuild a monitor exactly where :func:`save_checkpoint` left it.

    ``labeler``/``retain_decisions``/``on_decision`` are process-local
    concerns (callables don't serialize) and are re-supplied by the
    caller; everything that influences decisions comes from the file.
    """
    payload = read_json_checkpoint(path, attempts=attempts, sleep=sleep)
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a monitor checkpoint")
    meter = CapacityMeter.from_payload(payload["meter"], labeler=labeler)
    config = payload["config"]
    monitor = OnlineCapacityMonitor(
        meter,
        adapt=bool(config["adapt"]),
        labeler=labeler,
        retain_decisions=retain_decisions,
        on_decision=on_decision,
        min_votes=(
            None if config["min_votes"] is None else int(config["min_votes"])
        ),
        max_imputed_fraction=float(config["max_imputed_fraction"]),
        confidence_decay=float(config["confidence_decay"]),
    )
    monitor.load_state(payload["state"])
    return monitor

"""Declarative, seedable fault schedules.

A :class:`FaultPlan` is a reproducible description of *what goes wrong
when*: a seed plus an ordered tuple of :class:`FaultSpec` entries, each
naming a fault kind, the tick range it is armed over, the tier/level it
targets and its per-tick firing probability.  The plan is pure data —
JSON round-trippable, hashable into experiment cache keys — and all
randomness is derived from ``(plan.seed, spec_index)``, so two runs of
the same plan over the same records inject byte-identical faults.

Fault kinds (the failure modes of a real perf-counter deployment):

``dropout``
    Individual counters vanish from a tier's metric dict for a tick —
    the multiplexed-counter-set rotation losing attributes.
``corrupt``
    Counter values spike by ``magnitude`` — wraparound glitches and
    misattributed counts.
``stall``
    A tier's collector goes silent *and stays silent* until the
    watchdog re-arms it — a hung sysstat/perfctr reader.  Stateful,
    unlike the per-tick kinds.
``drop_record``
    The whole interval record is lost in transit — no tier sees it.
``duplicate_record``
    The interval record is delivered twice — a retransmitting
    collector; the duplicate is a *late* copy of the same interval.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..telemetry.sampler import HPC_LEVEL

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

FAULT_KINDS = (
    "dropout",
    "corrupt",
    "stall",
    "drop_record",
    "duplicate_record",
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``start``/``end`` bound the ticks the fault is armed over
    (end-exclusive; ``end=None`` means forever).  ``probability`` is the
    per-tick chance the armed fault acts — for ``dropout``/``corrupt``
    it is applied independently per candidate attribute.  ``tier=None``
    targets every tier, ``attributes=()`` every attribute.
    ``magnitude`` is the multiplicative spike of ``corrupt``.
    ``rearmable=False`` makes a ``stall`` permanent — the watchdog's
    re-arm attempts fail, modelling a dead collector host.
    """

    kind: str
    start: int = 0
    end: Optional[int] = None
    tier: Optional[str] = None
    level: str = HPC_LEVEL
    probability: float = 1.0
    attributes: Tuple[str, ...] = ()
    magnitude: float = 10.0
    rearmable: bool = True

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.start < 0:
            raise ValueError("start must be a non-negative tick index")
        if self.end is not None and self.end <= self.start:
            raise ValueError("end must exceed start (end-exclusive)")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")
        # JSON round-trips tuples as lists; normalize for frozen equality
        object.__setattr__(self, "attributes", tuple(self.attributes))

    def active(self, tick: int) -> bool:
        """Is this fault armed at the given delivered-record index?"""
        return tick >= self.start and (self.end is None or tick < self.end)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "tier": self.tier,
            "level": self.level,
            "probability": self.probability,
            "attributes": list(self.attributes),
            "magnitude": self.magnitude,
            "rearmable": self.rearmable,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(
            kind=str(payload["kind"]),
            start=int(payload.get("start", 0)),
            end=None if payload.get("end") is None else int(payload["end"]),
            tier=payload.get("tier"),
            level=str(payload.get("level", HPC_LEVEL)),
            probability=float(payload.get("probability", 1.0)),
            attributes=tuple(payload.get("attributes", ())),
            magnitude=float(payload.get("magnitude", 10.0)),
            rearmable=bool(payload.get("rearmable", True)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered schedule of faults.

    The spec order matters: each spec owns the RNG stream
    ``default_rng([seed, index])`` and record-level faults short-circuit
    in schedule order, so the plan is a complete determinism contract.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": "repro.fault-plan/1",
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        if payload.get("format") != "repro.fault-plan/1":
            raise ValueError("payload is not a serialized FaultPlan")
        return cls(
            seed=int(payload["seed"]),
            faults=tuple(
                FaultSpec.from_dict(item) for item in payload["faults"]
            ),
        )

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

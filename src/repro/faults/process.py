"""Declarative, seedable *process-level* fault schedules.

:class:`~repro.faults.plan.FaultPlan` injects faults into the telemetry
stream; :class:`ProcessFaultPlan` injects faults into the **serving
fabric itself** — the worker processes a
:class:`~repro.control.shard.ShardedCapacityService` runs its shards
on.  A plan is pure data (JSON round-trippable, CLI-parseable) naming
which worker misbehaves at which global service tick:

``kill``
    The worker process receives SIGKILL mid-chunk — an OOM kill or
    segfault.  The supervisor must detect the crash, respawn the
    worker, and recover the shard.
``hang``
    The worker stops replying (it executes a long sleep instead of its
    chunk) — a wedged collector or deadlocked child.  Only detectable
    via the supervision recv timeout.
``slow``
    The worker delays its reply by ``delay`` seconds but then answers
    correctly — a GC pause or noisy neighbour.  Must *not* trigger
    recovery when the delay is under the recv timeout.

Determinism contract: fault ticks/workers are explicit (or derived from
``generate(seed, ...)`` which samples them from
``default_rng([seed, index])``), injection is keyed purely on the
service's global tick counter, and each fault fires at most once — so
two runs of the same campaign under the same plan are byte-identical,
which is what lets CI gate crash recovery like any other campaign.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

__all__ = ["PROCESS_FAULT_KINDS", "ProcessFaultPlan", "ProcessFaultSpec"]

PROCESS_FAULT_KINDS = ("kill", "hang", "slow")

PROCESS_PLAN_FORMAT = "repro.process-fault-plan/1"

#: CLI grammar for one fault: ``kind@tick:wINDEX[:delay]``
_SPEC_RE = re.compile(
    r"^(?P<kind>[a-z_]+)@(?P<tick>\d+):w(?P<worker>\d+)"
    r"(?::(?P<delay>[0-9.]+))?$"
)


@dataclass(frozen=True)
class ProcessFaultSpec:
    """One scheduled process fault.

    ``tick`` is the *global service tick* (delivered-record index across
    the whole replay) at which the fault arms; it fires when the worker
    is next dispatched a chunk covering that tick.  ``delay`` only
    matters for ``slow`` — the seconds the worker stalls before
    answering.
    """

    kind: str
    tick: int
    worker: int
    delay: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in PROCESS_FAULT_KINDS:
            raise ValueError(
                f"unknown process fault kind {self.kind!r}; "
                f"choose from {PROCESS_FAULT_KINDS}"
            )
        if self.tick < 0:
            raise ValueError("tick must be a non-negative index")
        if self.worker < 0:
            raise ValueError("worker must be a non-negative index")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "tick": self.tick,
            "worker": self.worker,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProcessFaultSpec":
        return cls(
            kind=str(payload["kind"]),
            tick=int(payload["tick"]),  # type: ignore[arg-type]
            worker=int(payload["worker"]),  # type: ignore[arg-type]
            delay=float(payload.get("delay", 0.5)),  # type: ignore[arg-type]
        )

    @classmethod
    def parse(cls, text: str) -> "ProcessFaultSpec":
        """Parse one ``kind@tick:wINDEX[:delay]`` CLI token."""
        match = _SPEC_RE.match(text.strip())
        if match is None:
            raise ValueError(
                f"bad process fault {text!r}; expected kind@tick:wINDEX"
                "[:delay], e.g. kill@120:w1 or slow@50:w2:0.25"
            )
        delay = match.group("delay")
        return cls(
            kind=match.group("kind"),
            tick=int(match.group("tick")),
            worker=int(match.group("worker")),
            delay=0.5 if delay is None else float(delay),
        )


@dataclass(frozen=True)
class ProcessFaultPlan:
    """A seed plus an ordered schedule of process faults.

    The seed is carried for provenance (and used by :meth:`generate`);
    injection itself is fully determined by the spec list.
    """

    seed: int = 0
    faults: Tuple[ProcessFaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def for_worker(self, worker: int) -> Tuple[ProcessFaultSpec, ...]:
        """The specs targeting one worker, in schedule order."""
        return tuple(s for s in self.faults if s.worker == worker)

    def max_worker(self) -> int:
        """Highest worker index any spec targets (-1 when empty)."""
        return max((s.worker for s in self.faults), default=-1)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": PROCESS_PLAN_FORMAT,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProcessFaultPlan":
        if payload.get("format") != PROCESS_PLAN_FORMAT:
            raise ValueError("payload is not a serialized ProcessFaultPlan")
        return cls(
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            faults=tuple(
                ProcessFaultSpec.from_dict(item)
                for item in payload["faults"]  # type: ignore[union-attr]
            ),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ProcessFaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def parse(cls, text: str, *, seed: int = 0) -> "ProcessFaultPlan":
        """Parse the CLI grammar: comma-separated spec tokens.

        ``"kill@120:w1,hang@300:w0,slow@50:w2:0.25"`` → three faults.
        An empty/whitespace string parses to an empty plan.
        """
        tokens = [tok for tok in text.split(",") if tok.strip()]
        return cls(
            seed=seed,
            faults=tuple(ProcessFaultSpec.parse(tok) for tok in tokens),
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        ticks: int,
        workers: int,
        kills: int = 1,
        hangs: int = 0,
        slows: int = 0,
        slow_delay: float = 0.25,
    ) -> "ProcessFaultPlan":
        """Sample a random-but-reproducible campaign plan.

        Each fault draws its (tick, worker) from
        ``default_rng([seed, index])`` — index being its position in the
        kill/hang/slow concatenation — so the sampled schedule is a
        pure function of the arguments.  Ticks land in
        ``[1, ticks - 1]`` so every fault fires mid-campaign.
        """
        if ticks < 2:
            raise ValueError("need at least 2 ticks for a mid-run fault")
        if workers < 1:
            raise ValueError("workers must be positive")
        kinds: List[str] = (
            ["kill"] * kills + ["hang"] * hangs + ["slow"] * slows
        )
        specs = []
        for index, kind in enumerate(kinds):
            rng = np.random.default_rng([seed, index])
            specs.append(
                ProcessFaultSpec(
                    kind=kind,
                    tick=int(rng.integers(1, ticks)),
                    worker=int(rng.integers(0, workers)),
                    delay=slow_delay,
                )
            )
        return cls(seed=seed, faults=tuple(specs))

"""Fault campaigns: clean replay vs faulted replay, same records.

:func:`run_campaign` replays one recorded measurement run through the
online monitor twice — once pristine, once through a
:class:`~repro.faults.injector.FaultInjector` (with an optional
:class:`~repro.faults.watchdog.SamplerWatchdog` re-arming stalled
tiers) — and reports the decision-accuracy degradation the faults
caused.  Both phases run on a *fresh copy* of the trained meter
(payload round-trip), so neither run's speculative or adapted state
leaks into the other and the campaign is a pure function of
``(meter, records, plan)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.capacity import CapacityMeter
from ..core.monitor import (
    MonitorCounters,
    MonitorDecision,
    OnlineCapacityMonitor,
)
from ..telemetry.sampler import IntervalRecord, WindowStats
from .injector import FaultInjector, InjectionCounters
from .plan import FaultPlan
from .watchdog import SamplerWatchdog, WatchdogCounters

__all__ = [
    "CampaignResult",
    "decision_signature",
    "fresh_monitor",
    "run_campaign",
]


def decision_signature(decisions: Sequence[MonitorDecision]) -> str:
    """Compact deterministic fingerprint of a decision sequence.

    Two campaign runs with the same plan over the same records must
    produce identical signatures — this is the CI determinism probe.
    """
    return ";".join(
        f"{d.index}:{d.prediction.state}:{d.prediction.gpv}"
        f":{int(d.held)}:{int(d.prediction.degraded)}"
        for d in decisions
    )


@dataclass
class CampaignResult:
    """Outcome of one clean-vs-faulted campaign."""

    plan: FaultPlan
    clean_decisions: List[MonitorDecision]
    fault_decisions: List[MonitorDecision]
    clean_counters: MonitorCounters
    fault_counters: MonitorCounters
    clean_scores: Dict[str, float]
    fault_scores: Dict[str, float]
    injection: InjectionCounters
    watchdog: Optional[WatchdogCounters] = None
    _signature: str = field(init=False, repr=False, default="")

    def __post_init__(self):
        self._signature = decision_signature(self.fault_decisions)

    # ------------------------------------------------------------------
    @property
    def signature(self) -> str:
        """Fingerprint of the faulted decision sequence."""
        return self._signature

    @property
    def clean_signature(self) -> str:
        return decision_signature(self.clean_decisions)

    @property
    def agreement(self) -> float:
        """Fraction of index-aligned windows deciding the same state."""
        n = min(len(self.clean_decisions), len(self.fault_decisions))
        if n == 0:
            return 1.0
        same = sum(
            1
            for c, f in zip(self.clean_decisions, self.fault_decisions)
            if c.prediction.state == f.prediction.state
        )
        return same / n

    @property
    def ba_drop(self) -> float:
        """Overload-BA lost to the faults (clean minus faulted)."""
        return (
            self.clean_scores["overload_ba"]
            - self.fault_scores["overload_ba"]
        )

    def rows(self) -> List[str]:
        """Human-readable campaign report."""
        inj = self.injection
        rows = [
            f"faults in plan:       {len(self.plan)} (seed {self.plan.seed})",
            f"records injected:     {inj.ticks} "
            f"(-{inj.records_dropped} dropped, "
            f"+{inj.records_duplicated} duplicated)",
            f"attributes faulted:   {inj.attributes_dropped} dropped, "
            f"{inj.attributes_corrupted} corrupted",
            f"stalls:               {inj.stall_events} events, "
            f"{inj.stalled_tier_ticks} tier-ticks silent, "
            f"{inj.rearms_granted} re-armed",
            f"clean windows:        {self.clean_counters.windows} "
            f"(BA {self.clean_scores['overload_ba']:.3f})",
            f"faulted windows:      {self.fault_counters.windows} "
            f"(BA {self.fault_scores['overload_ba']:.3f}, "
            f"{self.fault_counters.degraded_windows} degraded, "
            f"{self.fault_counters.held_decisions} held)",
            f"decision agreement:   {self.agreement:.3f}",
            f"overload BA drop:     {self.ba_drop:+.3f}",
        ]
        if self.watchdog is not None:
            wd = self.watchdog
            rows.append(
                f"watchdog:             {wd.stalls_detected} stalls "
                f"detected, {wd.rearm_attempts} attempts, "
                f"{wd.rearms_succeeded} succeeded"
            )
        return rows


def fresh_monitor(
    meter: CapacityMeter,
    labeler: Optional[Callable[[WindowStats], int]],
    *,
    adapt: bool = False,
    min_votes: Optional[int] = None,
    max_imputed_fraction: float = 0.5,
    confidence_decay: float = 0.5,
    payload: Optional[dict] = None,
    retain_decisions: Optional[int] = None,
    on_decision: Optional[Callable[[MonitorDecision], None]] = None,
) -> OnlineCapacityMonitor:
    """A monitor over a *fresh clone* of ``meter`` (payload round-trip).

    The clone isolates the new monitor's speculative history and any
    online adaptation from the caller's meter — campaigns replay the
    same meter twice without cross-talk, and the multi-site
    :class:`~repro.control.service.CapacityService` gives every site an
    independent predictor.  Pass a precomputed ``payload``
    (``meter.to_payload()``) to amortize serialization across many
    clones of the same meter.
    """
    if payload is None:
        payload = meter.to_payload()
    clone = CapacityMeter.from_payload(payload, labeler=labeler)
    return OnlineCapacityMonitor(
        clone,
        adapt=adapt,
        labeler=labeler,
        min_votes=min_votes,
        max_imputed_fraction=max_imputed_fraction,
        confidence_decay=confidence_decay,
        retain_decisions=retain_decisions,
        on_decision=on_decision,
    )


def run_campaign(
    meter: CapacityMeter,
    records: Sequence[IntervalRecord],
    plan: FaultPlan,
    *,
    labeler: Optional[Callable[[WindowStats], int]] = None,
    adapt: bool = False,
    use_watchdog: bool = True,
    stall_ticks: int = 3,
    base_backoff: int = 2,
    max_backoff: int = 32,
    min_votes: Optional[int] = None,
    max_imputed_fraction: float = 0.5,
    confidence_decay: float = 0.5,
) -> CampaignResult:
    """Replay ``records`` clean and faulted; report the degradation.

    ``labeler`` defaults to the meter's own training labeler so both
    phases are scored against the same ground truth.
    """
    if labeler is None:
        labeler = meter.labeler

    clean_monitor = fresh_monitor(
        meter,
        labeler,
        adapt=adapt,
        min_votes=min_votes,
        max_imputed_fraction=max_imputed_fraction,
        confidence_decay=confidence_decay,
    )
    for record in records:
        clean_monitor.push(record)

    fault_monitor = fresh_monitor(
        meter,
        labeler,
        adapt=adapt,
        min_votes=min_votes,
        max_imputed_fraction=max_imputed_fraction,
        confidence_decay=confidence_decay,
    )
    injector = FaultInjector(plan)
    watchdog: Optional[SamplerWatchdog] = None
    if use_watchdog:
        watchdog = SamplerWatchdog(
            meter.tiers,
            injector.rearm,
            stall_ticks=stall_ticks,
            base_backoff=base_backoff,
            max_backoff=max_backoff,
        )

    def deliver(record: IntervalRecord) -> None:
        if watchdog is not None:
            watchdog.observe(record)
        fault_monitor.push(record)

    injector.downstream = deliver
    for record in records:
        injector.push(record)

    return CampaignResult(
        plan=plan,
        clean_decisions=list(clean_monitor.decisions),
        fault_decisions=list(fault_monitor.decisions),
        clean_counters=clean_monitor.counters,
        fault_counters=fault_monitor.counters,
        clean_scores=clean_monitor.scores(),
        fault_scores=fault_monitor.scores(),
        injection=injector.counters,
        watchdog=watchdog.counters if watchdog is not None else None,
    )

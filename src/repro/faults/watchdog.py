"""Stalled-collector detection with bounded-backoff re-arming.

A hung per-tier collector shows up downstream as a tier that simply
stops appearing in delivered records.  :class:`SamplerWatchdog`
observes the delivered stream, counts consecutive silent ticks per
tier, and once a tier has been silent for ``stall_ticks`` ticks starts
calling the supplied ``rearm`` hook — retrying with exponential backoff
bounded at ``max_backoff`` ticks, so a permanently dead collector costs
O(log) attempts before settling into the capped retry cadence instead
of hammering every tick.

Everything is indexed by delivered-tick count — no wall-clock — so a
campaign containing a watchdog is exactly as deterministic as its
fault plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from ..obs import OBS
from ..telemetry.sampler import IntervalRecord

__all__ = ["WatchdogCounters", "SamplerWatchdog"]


@dataclass
class WatchdogCounters:
    """Observability of the watchdog's interventions."""

    stalls_detected: int = 0
    rearm_attempts: int = 0
    rearms_succeeded: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "stalls_detected": self.stalls_detected,
            "rearm_attempts": self.rearm_attempts,
            "rearms_succeeded": self.rearms_succeeded,
        }


class SamplerWatchdog:
    """Detect silent tiers in a delivered record stream and re-arm them.

    ``rearm(tier) -> bool`` is the recovery hook (True = the collector
    was successfully restarted); with the fault harness it is
    :meth:`~repro.faults.injector.FaultInjector.rearm`, in a real
    deployment it would restart a sampler process.
    """

    def __init__(
        self,
        tiers: Sequence[str],
        rearm: Callable[[str], bool],
        *,
        stall_ticks: int = 3,
        base_backoff: int = 2,
        max_backoff: int = 32,
    ):
        if stall_ticks < 1:
            raise ValueError("stall_ticks must be at least 1")
        if base_backoff < 1:
            raise ValueError("base_backoff must be at least 1 tick")
        if max_backoff < base_backoff:
            raise ValueError("max_backoff must be >= base_backoff")
        self.tiers = list(tiers)
        self.rearm = rearm
        self.stall_ticks = stall_ticks
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.counters = WatchdogCounters()
        self._tick = 0
        self._silent_streak: Dict[str, int] = {t: 0 for t in self.tiers}
        self._flagged: Dict[str, bool] = {t: False for t in self.tiers}
        self._backoff: Dict[str, int] = {t: base_backoff for t in self.tiers}
        self._next_attempt: Dict[str, int] = {t: 0 for t in self.tiers}

    # ------------------------------------------------------------------
    def observe(self, record: IntervalRecord) -> None:
        """Fold one delivered record; may fire re-arm attempts."""
        self._tick += 1
        for tier in self.tiers:
            present = tier in record.hpc or tier in record.os
            if present:
                self._silent_streak[tier] = 0
                self._flagged[tier] = False
                self._backoff[tier] = self.base_backoff
                self._next_attempt[tier] = 0
                continue
            self._silent_streak[tier] += 1
            if self._silent_streak[tier] < self.stall_ticks:
                continue
            if not self._flagged[tier]:
                self._flagged[tier] = True
                self.counters.stalls_detected += 1
                self._next_attempt[tier] = self._tick
                if OBS.enabled:
                    OBS.inc(
                        "repro_watchdog_stalls_total",
                        help="collector stalls detected, by tier",
                        tier=tier,
                    )
            if self._tick < self._next_attempt[tier]:
                continue
            self.counters.rearm_attempts += 1
            if OBS.enabled:
                OBS.inc(
                    "repro_watchdog_rearm_attempts_total",
                    help="collector re-arm attempts, by tier",
                    tier=tier,
                )
            if self.rearm(tier):
                self.counters.rearms_succeeded += 1
                if OBS.enabled:
                    OBS.inc(
                        "repro_watchdog_rearms_succeeded_total",
                        help="collector re-arms that restarted the tier",
                        tier=tier,
                    )
                # the collector restarts; give it a full detection
                # window before flagging again
                self._silent_streak[tier] = 0
                self._flagged[tier] = False
                self._backoff[tier] = self.base_backoff
                self._next_attempt[tier] = 0
            else:
                self._next_attempt[tier] = self._tick + self._backoff[tier]
                self._backoff[tier] = min(
                    self.max_backoff, self._backoff[tier] * 2
                )

    @property
    def flagged_tiers(self) -> Sequence[str]:
        return sorted(t for t, f in self._flagged.items() if f)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Run-local watchdog state, JSON-serializable.

        Backoff schedules are indexed by the delivered-tick count, so a
        resumed watchdog must carry its tick and per-tier streak /
        flag / backoff / next-attempt state to keep re-arm timing
        identical to an uninterrupted run.
        """
        return {
            "counters": self.counters.as_dict(),
            "tick": self._tick,
            "silent_streak": dict(self._silent_streak),
            "flagged": dict(self._flagged),
            "backoff": dict(self._backoff),
            "next_attempt": dict(self._next_attempt),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore the state captured by :meth:`state_dict`."""
        self.counters = WatchdogCounters(
            **{k: int(v) for k, v in dict(state["counters"]).items()}
        )
        self._tick = int(state["tick"])
        for name, cast in (
            ("silent_streak", int),
            ("flagged", bool),
            ("backoff", int),
            ("next_attempt", int),
        ):
            restored = {
                str(tier): cast(value)
                for tier, value in dict(state[name]).items()
            }
            missing = [t for t in self.tiers if t not in restored]
            if missing:
                raise ValueError(
                    f"watchdog state lacks tiers {missing} for {name!r}"
                )
            setattr(self, f"_{name}", restored)

"""Deterministic fault injection over the interval-record stream.

:class:`FaultInjector` sits between a record producer (a
:class:`~repro.telemetry.sampler.TelemetrySampler` ``on_record`` hook,
or a replayed :class:`~repro.telemetry.sampler.MeasurementRun`) and any
downstream consumer, mutating / dropping / duplicating records
according to a :class:`~repro.faults.plan.FaultPlan`.

Determinism contract: spec *i* owns the RNG stream
``np.random.default_rng([plan.seed, i])`` and consumes draws only as a
function of the delivered-record index and the (deterministic) stall /
re-arm state, so two replays of the same plan over the same records
produce byte-identical faulted streams.  No wall-clock anywhere.

Records are mutated copy-on-write: the producer's record objects are
never touched (other consumers of the same stream see pristine data),
and the per-tier metric dicts are shallow-copied only when a fault
actually fires on that tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..telemetry.sampler import HPC_LEVEL, OS_LEVEL, IntervalRecord
from .plan import FaultPlan

__all__ = ["InjectionCounters", "FaultInjector"]


@dataclass
class InjectionCounters:
    """What the injector actually did, for campaign reports."""

    ticks: int = 0
    delivered: int = 0
    records_dropped: int = 0
    records_duplicated: int = 0
    attributes_dropped: int = 0
    attributes_corrupted: int = 0
    stall_events: int = 0
    stalled_tier_ticks: int = 0
    rearms_granted: int = 0
    rearms_refused: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "ticks": self.ticks,
            "delivered": self.delivered,
            "records_dropped": self.records_dropped,
            "records_duplicated": self.records_duplicated,
            "attributes_dropped": self.attributes_dropped,
            "attributes_corrupted": self.attributes_corrupted,
            "stall_events": self.stall_events,
            "stalled_tier_ticks": self.stalled_tier_ticks,
            "rearms_granted": self.rearms_granted,
            "rearms_refused": self.rearms_refused,
        }


def _level_dict(record: IntervalRecord, level: str) -> Dict[str, Dict[str, float]]:
    if level == HPC_LEVEL:
        return record.hpc
    if level == OS_LEVEL:
        return record.os
    raise KeyError(f"faults target concrete levels, not {level!r}")


class FaultInjector:
    """Apply a :class:`FaultPlan` to a stream of interval records.

    ``push(record)`` delivers 0, 1 or 2 (possibly mutated) records to
    ``downstream``; :meth:`rearm` is the watchdog's hook for clearing a
    stalled tier.  A stall outlives its spec's armed window — it is a
    *state*, cleared only by a successful re-arm — and a still-armed
    spec may immediately re-stall a re-armed tier, which is exactly the
    flapping behaviour the watchdog's exponential backoff exists for.
    """

    def __init__(
        self,
        plan: FaultPlan,
        downstream: Optional[Callable[[IntervalRecord], None]] = None,
    ):
        self.plan = plan
        self.downstream = downstream
        self.counters = InjectionCounters()
        self._rngs = [
            np.random.default_rng([plan.seed, index])
            for index in range(len(plan.faults))
        ]
        #: tier name -> index of the spec whose stall silenced it
        self._stalled: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def stalled_tiers(self) -> List[str]:
        return sorted(self._stalled)

    def rearm(self, tier: str) -> bool:
        """Watchdog hook: try to clear a stalled tier's collector.

        Returns True when the stall was cleared; False when the tier is
        not stalled or its spec is not ``rearmable`` (dead host).
        """
        spec_index = self._stalled.get(tier)
        if spec_index is None:
            return False
        if not self.plan.faults[spec_index].rearmable:
            self.counters.rearms_refused += 1
            return False
        del self._stalled[tier]
        self.counters.rearms_granted += 1
        return True

    # ------------------------------------------------------------------
    def _target_tiers(self, spec_tier: Optional[str], record: IntervalRecord):
        if spec_tier is not None:
            return [spec_tier]
        return list(record.hpc)

    @staticmethod
    def _mutable(
        record: IntervalRecord, current: Optional[IntervalRecord]
    ) -> IntervalRecord:
        """Copy-on-write: the first mutation clones the metric dicts."""
        if current is not None:
            return current
        return IntervalRecord(
            website=record.website,
            hpc={tier: dict(m) for tier, m in record.hpc.items()},
            os={tier: dict(m) for tier, m in record.os.items()},
        )

    def push(self, record: IntervalRecord) -> int:
        """Run one record through the plan; returns deliveries made."""
        tick = self.counters.ticks
        self.counters.ticks += 1
        out: Optional[IntervalRecord] = None
        deliveries = 1
        for index, spec in enumerate(self.plan.faults):
            if not spec.active(tick):
                continue
            rng = self._rngs[index]
            if spec.kind == "drop_record":
                # keep drawing even when a previous spec already dropped
                # the record, so every spec's stream advances exactly
                # once per armed tick regardless of the others' outcomes
                if rng.random() < spec.probability:
                    deliveries = 0
                    self.counters.records_dropped += 1
                continue
            if spec.kind == "duplicate_record":
                if rng.random() < spec.probability and deliveries:
                    deliveries = 2
                    self.counters.records_duplicated += 1
                continue
            if spec.kind == "stall":
                for tier in self._target_tiers(spec.tier, record):
                    if tier in self._stalled:
                        continue
                    if rng.random() < spec.probability:
                        self._stalled[tier] = index
                        self.counters.stall_events += 1
                continue
            level = _level_dict(record if out is None else out, spec.level)
            for tier in self._target_tiers(spec.tier, record):
                metrics = level.get(tier)
                if not metrics:
                    continue
                names = sorted(metrics)
                if spec.attributes:
                    chosen = set(spec.attributes)
                    names = [n for n in names if n in chosen]
                if not names:
                    continue
                hits = rng.random(len(names)) < spec.probability
                if not hits.any():
                    continue
                out = self._mutable(record, out)
                target = _level_dict(out, spec.level)[tier]
                for name, hit in zip(names, hits):
                    if not hit:
                        continue
                    if spec.kind == "dropout":
                        target.pop(name, None)
                        self.counters.attributes_dropped += 1
                    else:  # corrupt
                        target[name] = target[name] * spec.magnitude
                        self.counters.attributes_corrupted += 1
                level = _level_dict(out, spec.level)
        if self._stalled and deliveries:
            out = self._mutable(record, out)
            for tier in self._stalled:
                out.hpc.pop(tier, None)
                out.os.pop(tier, None)
                self.counters.stalled_tier_ticks += 1
        if deliveries == 0:
            return 0
        delivered = out if out is not None else record
        for _ in range(deliveries):
            self.counters.delivered += 1
            if self.downstream is not None:
                self.downstream(delivered)
        return deliveries

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Run-local injection state, JSON-serializable.

        The plan cursor is ``counters.ticks`` (``push`` indexes
        ``spec.active`` with it), so restoring the counters plus the
        stall map and every spec's RNG stream resumes the plan exactly
        where it stopped — a resumed campaign sees the same faulted
        stream an uninterrupted one would.
        """
        return {
            "counters": self.counters.as_dict(),
            "stalled": dict(self._stalled),
            "rngs": [rng.bit_generator.state for rng in self._rngs],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore the state captured by :meth:`state_dict`."""
        rng_states = list(state["rngs"])
        if len(rng_states) != len(self._rngs):
            raise ValueError(
                f"{len(rng_states)} RNG states for a plan with "
                f"{len(self._rngs)} fault specs"
            )
        self.counters = InjectionCounters(
            **{k: int(v) for k, v in dict(state["counters"]).items()}
        )
        self._stalled = {
            str(tier): int(index)
            for tier, index in dict(state["stalled"]).items()
        }
        for rng, rng_state in zip(self._rngs, rng_states):
            rng.bit_generator.state = rng_state

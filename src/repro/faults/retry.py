"""Bounded retry-with-backoff for I/O on flaky storage.

Artifact caches and run persistence sit on real filesystems that
occasionally return transient errors (NFS hiccups, contended tmpfs,
containers being checkpointed).  :func:`retry_io` wraps one I/O
callable in a bounded exponential-backoff retry loop; the sleep
function is injectable so tests (and deterministic campaigns) never
actually wait.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type, TypeVar

__all__ = ["retry_io"]

T = TypeVar("T")


def retry_io(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 1.0,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call ``fn`` with up to ``attempts`` tries and exponential backoff.

    Delays run ``base_delay * 2**k`` capped at ``max_delay``.  Only
    exceptions in ``retry_on`` are retried; the final failure is
    re-raised unchanged.  ``on_retry(attempt_number, exc)`` observes
    each failed attempt (the campaign counts them).
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    if base_delay < 0 or max_delay < 0:
        raise ValueError("delays must be non-negative")
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(min(max_delay, base_delay * (2 ** (attempt - 1))))
    raise AssertionError("unreachable")  # pragma: no cover

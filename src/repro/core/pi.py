"""Productivity Index (PI) — the paper's Section II.A metric.

``PI = Yield / Cost`` (Equation 1): yield is the useful work a system
completes, cost the resource consumed doing it.  At the hardware level
the paper uses instructions-per-cycle as yield and a stall-type metric
(L2 miss rate or stalled cycles) as cost; an overloaded system keeps
paying cost while yield stagnates, so PI falls.

Equation 2 defines the Pearson correlation ``Corr`` between a candidate
PI series and a high-level performance series (throughput) over a
measurement period; the PI with the largest Corr — normally from the
bottleneck tier — is selected as the capacity measure for the site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..telemetry.sampler import HPC_LEVEL, MeasurementRun

__all__ = [
    "PiDefinition",
    "correlation",
    "pi_series",
    "throughput_series",
    "select_best_pi",
    "normalize_to_geometric_mean",
    "DEFAULT_PI_CANDIDATES",
]


@dataclass(frozen=True)
class PiDefinition:
    """A (tier, yield metric, cost metric) productivity definition."""

    tier: str
    yield_metric: str
    cost_metric: str
    level: str = HPC_LEVEL

    @property
    def label(self) -> str:
        return f"{self.tier}:{self.yield_metric}/{self.cost_metric}"

    def value(self, metrics: Dict[str, float]) -> float:
        """PI for one interval's metric dict (0 when cost is 0)."""
        cost = metrics[self.cost_metric]
        if cost <= 0:
            return 0.0
        return metrics[self.yield_metric] / cost


#: Candidate yield/cost pairs the paper considers per tier: IPC as
#: yield against L2 miss rate or stall fraction as cost.
DEFAULT_PI_CANDIDATES: Tuple[Tuple[str, str], ...] = (
    ("ipc", "l2_miss_rate"),
    ("ipc", "stall_fraction"),
)


def correlation(pi: Sequence[float], reference: Sequence[float]) -> float:
    """Equation 2: Pearson correlation between PI and a high-level metric.

    Returns 0 when either series is constant (no co-variation to
    measure) rather than raising.
    """
    pi = np.asarray(pi, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if pi.shape != reference.shape:
        raise ValueError("series must have equal length")
    if pi.size < 2:
        raise ValueError("need at least two samples")
    sp, sr = pi.std(), reference.std()
    # a numerically-constant series (std at rounding-noise level) has no
    # co-variation to measure; an exact zero check would let cancellation
    # noise through and produce a garbage quotient
    tol_p = 1e-12 * max(1.0, float(np.abs(pi).max()))
    tol_r = 1e-12 * max(1.0, float(np.abs(reference).max()))
    if sp <= tol_p or sr <= tol_r:
        return 0.0
    cov = ((pi - pi.mean()) * (reference - reference.mean())).mean()
    return float(cov / (sp * sr))


def pi_series(run: MeasurementRun, definition: PiDefinition) -> np.ndarray:
    """PI value per sampling interval of a run."""
    return np.array(
        [
            definition.value(r.metrics(definition.level, definition.tier))
            for r in run.records
        ]
    )


def throughput_series(run: MeasurementRun) -> np.ndarray:
    """Client-observed throughput per sampling interval."""
    return np.array([r.website.client.throughput for r in run.records])


def select_best_pi(
    run: MeasurementRun,
    *,
    tiers: Sequence[str] = ("app", "db"),
    candidates: Sequence[Tuple[str, str]] = DEFAULT_PI_CANDIDATES,
) -> Tuple[PiDefinition, float]:
    """Choose the PI definition with the largest Corr to throughput.

    The winning tier is, by the paper's assumption, the bottleneck tier
    for the run's traffic pattern.
    """
    reference = throughput_series(run)
    best: Tuple[PiDefinition, float] = (None, -np.inf)  # type: ignore[assignment]
    for tier in tiers:
        for yield_metric, cost_metric in candidates:
            definition = PiDefinition(tier, yield_metric, cost_metric)
            corr = correlation(pi_series(run, definition), reference)
            if corr > best[1]:
                best = (definition, corr)
    if best[0] is None:
        raise ValueError("no PI candidates evaluated")
    return best


def normalize_to_geometric_mean(series: Sequence[float]) -> np.ndarray:
    """Normalize a positive series by its geometric mean (paper Fig. 3).

    Zero/negative entries are excluded from the mean and normalized as
    zero, matching how idle sampling intervals are plotted.
    """
    series = np.asarray(series, dtype=float)
    positive = series[series > 0]
    if positive.size == 0:
        return np.zeros_like(series)
    gmean = float(np.exp(np.log(positive).mean()))
    out = np.where(series > 0, series / gmean, 0.0)
    return out

"""End-to-end capacity measurement (the paper's full pipeline).

:class:`CapacityMeter` packages the whole approach behind one façade:

1. take measurement runs of representative training workloads (the
   paper uses the browsing and ordering mixes, each ramp-up + spike);
2. build one performance synopsis per (tier, training workload) over
   the chosen metric level;
3. train the two-level coordinated predictor on the ground-truth
   labelled windows of all training runs;
4. answer online queries — per-interval metric dicts per tier — with a
   site-wide overload prediction and, when overloaded, the bottleneck
   tier.

:func:`build_coordinated_instances` is the shared glue that converts a
measurement run into the time-ordered window instances the coordinator
trains and evaluates on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..telemetry.dataset import Dataset
from ..telemetry.sampler import (
    HPC_LEVEL,
    MeasurementRun,
    WindowStats,
    aggregate_window,
    build_dataset,
    metric_matrix,
)
from .coordinator import (
    CoordinatedInstance,
    CoordinatedPrediction,
    CoordinatedPredictor,
    Scheme,
)
from .labeler import SlaOracle
from .synopsis import PerformanceSynopsis, SynopsisConfig

__all__ = ["build_coordinated_instances", "CapacityMeter"]


def build_coordinated_instances(
    run: MeasurementRun,
    *,
    level: str,
    tiers: Sequence[str],
    labeler: Callable[[WindowStats], int],
    window: int = 30,
    stride: Optional[int] = None,
    offset: int = 0,
) -> List[CoordinatedInstance]:
    """Window a run into coordinator instances (all tiers per window).

    ``stride`` defaults to ``window`` (disjoint windows, as evaluation
    requires); ``offset`` shifts the first window.  Training the
    coordinated predictor uses several *offset streams* of disjoint
    windows: each stream preserves the window time base the predictor's
    history registers assume, while the streams together give the
    saturating LHT counters enough visits per (pattern, history) cell
    to clear the confidence band δ.
    """
    if window <= 0:
        raise ValueError("window must be a positive number of intervals")
    if stride is None:
        stride = window
    if stride <= 0:
        raise ValueError("stride must be positive")
    if offset < 0:
        raise ValueError("offset must be non-negative")
    instances: List[CoordinatedInstance] = []
    if len(run.records) - offset < window:
        return instances
    # one validated metric matrix per tier, windows averaged with a
    # vectorized mean — the same arithmetic the streaming aggregator
    # applies tick by tick, so online and offline paths agree exactly
    names = {
        tier: sorted(run.records[offset].metrics(level, tier))
        for tier in tiers
    }
    rows = {
        tier: metric_matrix(
            run.records[offset:],
            level=level,
            tier=tier,
            names=names[tier],
            start_index=offset,
        )
        for tier in tiers
    }
    for start in range(offset, len(run.records) - window + 1, stride):
        chunk = run.records[start : start + window]
        metrics: Dict[str, Dict[str, float]] = {}
        for tier in tiers:
            block = rows[tier][start - offset : start - offset + window]
            metrics[tier] = {
                name: float(value)
                for name, value in zip(names[tier], block.mean(axis=0))
            }
        stats = aggregate_window(chunk)
        label = labeler(stats)
        instances.append(
            CoordinatedInstance(
                metrics=metrics,
                label=label,
                bottleneck=stats.bottleneck if label else None,
            )
        )
    return instances


class CapacityMeter:
    """Online website-capacity measurement from low-level metrics."""

    def __init__(
        self,
        *,
        tiers: Sequence[str] = ("app", "db"),
        level: str = HPC_LEVEL,
        window: int = 30,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        synopsis_config: Optional[SynopsisConfig] = None,
        history_bits: int = 3,
        delta: float = 5.0,
        scheme: Scheme = Scheme.OPTIMISTIC,
        train_stride: Optional[int] = None,
    ):
        self.tiers = list(tiers)
        self.level = level
        self.window = window
        self.labeler = labeler if labeler is not None else SlaOracle()
        self.synopsis_config = (
            synopsis_config if synopsis_config is not None else SynopsisConfig()
        )
        self.history_bits = history_bits
        self.delta = delta
        self.scheme = scheme
        #: offset-stream spacing for coordinator training: one stream
        #: of disjoint windows per offset in range(0, window, stride)
        self.train_stride = train_stride or max(1, window // 6)
        #: trained synopses keyed by (workload, tier)
        self.synopses: Dict[Tuple[str, str], PerformanceSynopsis] = {}
        self.coordinator: Optional[CoordinatedPredictor] = None

    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self.coordinator is not None

    def training_dataset(
        self, run: MeasurementRun, tier: str
    ) -> Dataset:
        """The labelled window dataset one synopsis is trained on."""
        return build_dataset(
            run,
            level=self.level,
            tier=tier,
            labeler=self.labeler,
            window=self.window,
        )

    def train(
        self,
        training_runs: Mapping[str, MeasurementRun],
        *,
        executor=None,
    ) -> "CapacityMeter":
        """Build all synopses and the coordinated predictor.

        ``training_runs`` maps workload names (e.g. "browsing",
        "ordering") to their ramp+spike measurement runs.  ``executor``
        (any ``concurrent.futures.Executor``) parallelizes the
        cross-validation folds inside each synopsis' forward selection;
        results are bit-identical to serial training.
        """
        if not training_runs:
            raise ValueError("need at least one training run")
        self.synopses = {}
        for workload, run in training_runs.items():
            for tier in self.tiers:
                synopsis = PerformanceSynopsis(
                    tier=tier,
                    workload=workload,
                    level=self.level,
                    config=self.synopsis_config,
                )
                synopsis.train(
                    self.training_dataset(run, tier), executor=executor
                )
                self.synopses[(workload, tier)] = synopsis

        self.train_coordinator(training_runs)
        return self

    def train_coordinator(
        self, training_runs: Mapping[str, MeasurementRun]
    ) -> None:
        """(Re)build and train the coordinated predictor.

        Each training run contributes one time-ordered instance stream
        per window offset; every stream is replayed through the
        predictor with its history registers reset in between, so the
        LHT/BPT counters accumulate across streams while the temporal
        patterns within each stream stay faithful to the online window
        cadence.
        """
        if not self.synopses:
            raise RuntimeError("train synopses before the coordinator")
        self.coordinator = CoordinatedPredictor(
            list(self.synopses.values()),
            self.tiers,
            history_bits=self.history_bits,
            delta=self.delta,
            scheme=self.scheme,
        )
        for offset in range(0, self.window, self.train_stride):
            for run in training_runs.values():
                self.coordinator.train(
                    build_coordinated_instances(
                        run,
                        level=self.level,
                        tiers=self.tiers,
                        labeler=self.labeler,
                        window=self.window,
                        offset=offset,
                    )
                )

    def instances_for(self, run: MeasurementRun) -> List[CoordinatedInstance]:
        """Evaluation-time (disjoint-window) instances of a run."""
        return build_coordinated_instances(
            run,
            level=self.level,
            tiers=self.tiers,
            labeler=self.labeler,
            window=self.window,
        )

    # ------------------------------------------------------------------
    def predict_window(
        self, metrics: Mapping[str, Mapping[str, float]]
    ) -> CoordinatedPrediction:
        """Online decision for one window's per-tier metric dicts."""
        if not self.is_trained:
            raise RuntimeError("CapacityMeter is not trained")
        return self.coordinator.predict(metrics)

    def observe(
        self,
        truth: int,
        *,
        bottleneck: Optional[str] = None,
        adapt: bool = False,
    ) -> None:
        """Feed back delayed ground truth for the last prediction.

        With ``adapt=True`` the coordinated predictor keeps learning
        online from the feedback (see
        :meth:`~repro.core.coordinator.CoordinatedPredictor.observe`).
        """
        if not self.is_trained:
            raise RuntimeError("CapacityMeter is not trained")
        self.coordinator.observe(truth, bottleneck=bottleneck, adapt=adapt)

    def evaluate_run(self, run: MeasurementRun) -> Dict[str, float]:
        """Overload BA / bottleneck accuracy of the meter on a test run."""
        if not self.is_trained:
            raise RuntimeError("CapacityMeter is not trained")
        return self.coordinator.evaluate(self.instances_for(run))

    def evaluate_instances(
        self, instances: Sequence[CoordinatedInstance]
    ) -> Dict[str, float]:
        """Score prebuilt window instances (shared across experiments)."""
        if not self.is_trained:
            raise RuntimeError("CapacityMeter is not trained")
        return self.coordinator.evaluate(instances)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable snapshot of a trained meter.

        The labeler is a training-time concern and is not serialized; a
        restored meter predicts and evaluates against whatever labeler
        it is constructed with.
        """
        if not self.is_trained:
            raise RuntimeError("cannot serialize an untrained CapacityMeter")
        return {
            "format": "repro.capacity-meter/1",
            "tiers": list(self.tiers),
            "level": self.level,
            "window": self.window,
            "history_bits": self.history_bits,
            "delta": self.delta,
            "scheme": self.scheme.value,
            "train_stride": self.train_stride,
            "synopses": {
                f"{workload}::{tier}": synopsis.to_dict()
                for (workload, tier), synopsis in self.synopses.items()
            },
            "coordinator": self.coordinator.to_dict(),
        }

    def save(self, path) -> None:
        """Persist a trained meter to a JSON file."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_payload()))

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, object],
        *,
        labeler: Optional[Callable[[WindowStats], int]] = None,
    ) -> "CapacityMeter":
        """Rebuild a meter from a :meth:`to_payload` snapshot."""
        if payload.get("format") != "repro.capacity-meter/1":
            raise ValueError("payload is not a serialized CapacityMeter")
        meter = cls(
            tiers=list(payload["tiers"]),
            level=str(payload["level"]),
            window=int(payload["window"]),
            labeler=labeler,
            history_bits=int(payload["history_bits"]),
            delta=float(payload["delta"]),
            scheme=Scheme(payload["scheme"]),
            train_stride=int(payload["train_stride"]),
        )
        for key, item in payload["synopses"].items():
            workload, _, tier = key.partition("::")
            meter.synopses[(workload, tier)] = PerformanceSynopsis.from_dict(
                item
            )
        meter.coordinator = CoordinatedPredictor.from_dict(
            payload["coordinator"]
        )
        return meter

    @classmethod
    def load(
        cls,
        path,
        *,
        labeler: Optional[Callable[[WindowStats], int]] = None,
    ) -> "CapacityMeter":
        """Restore a meter saved with :meth:`save`."""
        import json
        from pathlib import Path

        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, dict) or payload.get("format") != "repro.capacity-meter/1":
            raise ValueError(f"{path} is not a saved CapacityMeter")
        return cls.from_payload(payload, labeler=labeler)

"""Offline labelling of high-level system state.

Two labelers are provided:

* :class:`SlaOracle` — application-level healthiness ground truth: a
  window is overloaded when the client-observed mean response time
  breaches the SLA or requests are being dropped.  This is the
  reference the paper's accuracy numbers are measured against.
* :class:`PiThresholdLabeler` — the paper's offline scheme (Section
  II.A): thresholds on the Productivity Index, "determined empirically
  in offline stress-testing", classify each window.  It exists to show
  PI thresholds recover the application-level truth (Fig. 3) and to
  label runs where client-side measurements are unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..telemetry.sampler import MeasurementRun, WindowStats
from .pi import PiDefinition, pi_series
from .states import OVERLOAD, UNDERLOAD

__all__ = ["SlaOracle", "PiThresholdLabeler"]


@dataclass(frozen=True)
class SlaOracle:
    """Response-time / drop-rate ground truth for a window.

    ``sla_response_time`` should sit well above the knee of the
    lightly-loaded response curve; 0.5 s is several times the
    simulator's base response time, mirroring how the paper's SLA
    multiples are chosen.
    """

    sla_response_time: float = 0.5
    max_drop_rate: float = 0.01

    def __call__(self, stats: WindowStats) -> int:
        if stats.mean_response_time > self.sla_response_time:
            return OVERLOAD
        if stats.drop_rate > self.max_drop_rate:
            return OVERLOAD
        return UNDERLOAD


class PiThresholdLabeler:
    """Classify windows by a threshold on a PI series.

    The threshold is calibrated from a stress-test run: PI above the
    threshold means the system is still productive (underload); PI at
    or below means cost is rising without yield (overload).  The
    default calibration takes a quantile between the PI levels observed
    in the run's healthy and collapsed phases.
    """

    def __init__(self, definition: PiDefinition, threshold: Optional[float] = None):
        self.definition = definition
        self.threshold = threshold

    @property
    def calibrated(self) -> bool:
        return self.threshold is not None

    def calibrate(
        self, run: MeasurementRun, *, quantile: float = 0.35
    ) -> "PiThresholdLabeler":
        """Set the threshold from a ramp-to-overload stress run.

        A ramp run spends its early part healthy (high PI) and its late
        part overloaded (low PI); a low quantile of the positive PI
        values lands between the two modes.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        series = pi_series(run, self.definition)
        positive = series[series > 0]
        if positive.size == 0:
            raise ValueError("run produced no positive PI values")
        self.threshold = float(np.quantile(positive, quantile))
        return self

    def label_series(self, run: MeasurementRun) -> np.ndarray:
        """Per-interval 0/1 labels for a run."""
        if not self.calibrated:
            raise RuntimeError("labeler is not calibrated")
        series = pi_series(run, self.definition)
        return (series <= self.threshold).astype(int)

    def label_window(self, run: MeasurementRun, start: int, stop: int) -> int:
        """Majority label over records[start:stop]."""
        if not self.calibrated:
            raise RuntimeError("labeler is not calibrated")
        labels = self.label_series(run)[start:stop]
        if labels.size == 0:
            raise ValueError("empty window")
        return OVERLOAD if labels.mean() >= 0.5 else UNDERLOAD

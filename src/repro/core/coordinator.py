"""Two-level coordinated predictor (paper Section III).

The coordinated predictor combines the per-(tier, workload) synopsis
predictions into one site-wide overload decision plus a bottleneck-tier
identification.  Its structure mirrors a two-level adaptive branch
predictor (Yeh & Patt):

* **Global Pattern Table (GPT)** — the m synopsis predictions in a
  sampling interval form an m-bit Global Pattern Vector (GPV); the GPT
  enumerates all 2^m patterns.
* **Local History Tables (LHTs)** — each GPV pattern owns an LHT
  indexed by the last *h* outcomes observed under that pattern; each
  entry is a saturating counter Hc (Local History Bits).
* **decision function** — ``λ(Hc)`` predicts overload when Hc > δ,
  underload when Hc < −δ, and falls back to the configured scheme
  inside the confidence band: *optimistic* → underload, *pessimistic*
  → overload.  As a reproduction refinement (on by default, ablatable
  via ``pattern_fallback=False``), an undecided history cell first
  consults the *pattern-level* counter — the same ±1 tally aggregated
  over all histories of the GPV — before resorting to the scheme: a
  workload the synopses were never trained on tends to produce known
  vote patterns along unseen history paths, and the pattern aggregate
  recovers exactly the paper's ~80% accuracy on unknown traffic.
* **Bottleneck Pattern Table (BPT)** — per-GPV vote vectors over
  tiers; ``λb(bK..b1) = argmax_i bi`` names the bottleneck tier, and is
  consulted only when the state prediction is overload.

Training shifts ground-truth outcomes into each pattern's history
register; online prediction shifts the coordinated prediction itself
(speculative history, as a branch predictor does), with
:meth:`CoordinatedPredictor.observe` available to repair the history
when delayed ground truth arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..obs import OBS
from ..telemetry.dataset import OVERLOAD, UNDERLOAD
from .synopsis import PerformanceSynopsis

__all__ = [
    "Scheme",
    "CoordinatedPrediction",
    "CoordinatedInstance",
    "CoordinatedPredictor",
]


class Scheme(Enum):
    """Tie-break behaviour of λ inside the confidence band [−δ, δ]."""

    OPTIMISTIC = "optimistic"  # φ(Hc) = 0: assume underload
    PESSIMISTIC = "pessimistic"  # φ(Hc) = 1: assume overload


@dataclass(frozen=True)
class CoordinatedPrediction:
    """One interval's coordinated decision.

    ``degraded`` marks a decision made from incomplete telemetry;
    ``abstained`` lists the synopsis indices whose vote had to be
    substituted (held last vote, else training prior) and
    ``imputed_attributes`` counts attribute values filled from training
    marginals across the non-abstaining synopses.  Clean-telemetry
    predictions carry the defaults, so equality comparisons against
    the offline pipeline are unaffected.
    """

    state: int
    bottleneck: Optional[str]
    gpv: int
    hc: float
    confident: bool
    synopsis_votes: Tuple[int, ...]
    degraded: bool = False
    abstained: Tuple[int, ...] = ()
    imputed_attributes: int = 0

    @property
    def overloaded(self) -> bool:
        return self.state == OVERLOAD


@dataclass(frozen=True)
class CoordinatedInstance:
    """A training instance for the coordinated predictor.

    ``metrics`` maps tier name to that tier's window-averaged metric
    dict; ``label`` is the ground-truth site state and ``bottleneck``
    the ground-truth bottleneck tier (meaningful when overloaded).
    """

    metrics: Mapping[str, Mapping[str, float]]
    label: int
    bottleneck: Optional[str] = None


class CoordinatedPredictor:
    """GPT/LHT/BPT predictor over a set of performance synopses."""

    def __init__(
        self,
        synopses: Sequence[PerformanceSynopsis],
        tiers: Sequence[str],
        *,
        history_bits: int = 3,
        delta: float = 5.0,
        scheme: Scheme = Scheme.OPTIMISTIC,
        counter_limit: float = 16.0,
        pattern_fallback: bool = True,
        pattern_counter_limit: float = 64.0,
    ):
        if not synopses:
            raise ValueError("need at least one synopsis")
        if not 1 <= history_bits <= 12:
            raise ValueError("history_bits must be in 1..12")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if counter_limit <= delta:
            raise ValueError("counter_limit must exceed delta")
        for synopsis in synopses:
            if not synopsis.is_trained:
                raise ValueError(f"{synopsis!r} is not trained")
            if synopsis.tier not in tiers:
                raise ValueError(
                    f"synopsis tier {synopsis.tier!r} not in tiers {list(tiers)}"
                )
        self.synopses = list(synopses)
        self.tiers = list(tiers)
        self.history_bits = history_bits
        self.delta = delta
        self.scheme = scheme
        self.counter_limit = counter_limit
        self.pattern_fallback = pattern_fallback
        self.pattern_counter_limit = pattern_counter_limit

        m = len(self.synopses)
        n_patterns = 2**m
        n_histories = 2**history_bits
        # LHT counters: one row of 2^h saturating counters per GPV
        self._lht = np.zeros((n_patterns, n_histories))
        # pattern-level saturating counters (fallback tier of λ)
        self._gpt = np.zeros(n_patterns)
        # per-pattern local history register (last h outcomes)
        self._history = np.zeros(n_patterns, dtype=int)
        # BPT: per-GPV vote counters over tiers
        self._bpt = np.zeros((n_patterns, len(self.tiers)))
        self._last_gpv: Optional[int] = None
        self._last_hist: int = 0
        # last concrete (non-substituted) vote per synopsis — the
        # hold-last-vote fill for abstaining synopses in degraded mode
        self._last_votes: List[Optional[int]] = [None] * m
        # cached metric handles, valid while OBS.registry is the same
        # object (transient; never serialized)
        self._obs_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    @property
    def n_synopses(self) -> int:
        return len(self.synopses)

    def reset_history(self) -> None:
        """Clear the history registers (between independent runs)."""
        self._history[:] = 0
        self._last_gpv = None
        self._last_hist = 0
        self._last_votes = [None] * len(self.synopses)

    def synopsis_votes(
        self, metrics: Mapping[str, Mapping[str, float]]
    ) -> Tuple[int, ...]:
        """Each synopsis' prediction Ri from its own tier's metrics."""
        votes = []
        for synopsis in self.synopses:
            try:
                tier_metrics = metrics[synopsis.tier]
            except KeyError:
                raise KeyError(
                    f"no metrics supplied for tier {synopsis.tier!r}"
                ) from None
            votes.append(synopsis.predict(tier_metrics))
        return tuple(votes)

    @staticmethod
    def _gpv(votes: Sequence[int]) -> int:
        gpv = 0
        for i, vote in enumerate(votes):
            if vote not in (0, 1):
                raise ValueError("synopsis votes must be 0/1")
            gpv |= vote << i
        return gpv

    def _shift_history(self, gpv: int, outcome: int) -> None:
        mask = (1 << self.history_bits) - 1
        self._history[gpv] = ((self._history[gpv] << 1) | outcome) & mask

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_instance(self, instance: CoordinatedInstance) -> None:
        """One step of LHT/BPT training on a ground-truth instance."""
        votes = self.synopsis_votes(instance.metrics)
        gpv = self._gpv(votes)
        hist = self._history[gpv]
        step = 1.0 if instance.label == OVERLOAD else -1.0
        self._lht[gpv, hist] = float(
            np.clip(
                self._lht[gpv, hist] + step,
                -self.counter_limit,
                self.counter_limit,
            )
        )
        self._gpt[gpv] = float(
            np.clip(
                self._gpt[gpv] + step,
                -self.pattern_counter_limit,
                self.pattern_counter_limit,
            )
        )
        if instance.label == OVERLOAD and instance.bottleneck is not None:
            for k, tier in enumerate(self.tiers):
                self._bpt[gpv, k] += 1.0 if tier == instance.bottleneck else -1.0
        self._shift_history(gpv, instance.label)

    def train(self, instances: Sequence[CoordinatedInstance]) -> "CoordinatedPredictor":
        """Train on a time-ordered sequence of instances."""
        self.reset_history()
        for instance in instances:
            self.train_instance(instance)
        self.reset_history()
        return self

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _decide(self, hc: float, gpv: int) -> Tuple[int, bool]:
        if hc > self.delta:
            return OVERLOAD, True
        if hc < -self.delta:
            return UNDERLOAD, True
        if self.pattern_fallback:
            pattern_count = self._gpt[gpv]
            if pattern_count > self.delta:
                return OVERLOAD, True
            if pattern_count < -self.delta:
                return UNDERLOAD, True
        fallback = (
            UNDERLOAD if self.scheme is Scheme.OPTIMISTIC else OVERLOAD
        )
        return fallback, False

    def bpt_vote(self, gpv: int) -> Optional[str]:
        """λb for one pattern: the BPT row's plurality tier, or ``None``.

        An all-zero row means the pattern never received bottleneck
        training; naming an arbitrary tier (``argmax`` of zeros picks
        index 0) would count an untrained guess as a real answer, so
        the vote abstains instead.
        """
        row = self._bpt[gpv]
        if not row.any():
            return None
        return self.tiers[int(np.argmax(row))]

    def predict(
        self, metrics: Mapping[str, Mapping[str, float]]
    ) -> CoordinatedPrediction:
        """Coordinated decision for one interval's per-tier metrics.

        The prediction is shifted into the pattern's history register
        (speculative); call :meth:`observe` when ground truth becomes
        available to keep the history exact.
        """
        return self._predict_from_votes(self.synopsis_votes(metrics))

    def _predict_from_votes(
        self,
        votes: Tuple[int, ...],
        *,
        degraded: bool = False,
        abstained: Tuple[int, ...] = (),
        imputed_attributes: int = 0,
    ) -> CoordinatedPrediction:
        """The GPT/LHT decision for one fully-resolved vote vector."""
        gpv = self._gpv(votes)
        hist = int(self._history[gpv])
        hc = float(self._lht[gpv, hist])
        state, confident = self._decide(hc, gpv)
        bottleneck = self.bpt_vote(gpv) if state == OVERLOAD else None
        self._shift_history(gpv, state)
        self._last_gpv = gpv
        self._last_hist = hist
        substituted = set(abstained)
        for i, vote in enumerate(votes):
            if i not in substituted:
                self._last_votes[i] = vote
        if OBS.enabled:
            cache = self._obs_cache
            if cache is None or cache[0] is not OBS.registry:
                registry = OBS.registry
                cache = self._obs_cache = (
                    registry,
                    {
                        flag: registry.counter(
                            "repro_coordinator_decisions_total",
                            help="coordinated GPT/LHT decisions, by "
                            "confidence source",
                            confident=flag,
                        )
                        for flag in ("yes", "no")
                    },
                    registry.gauge(
                        "repro_coordinator_last_gpv",
                        help="global pattern vector of the latest decision",
                    ),
                    registry.counter(
                        "repro_coordinator_degraded_decisions_total",
                        help="decisions made from imputed or substituted "
                        "votes",
                    ),
                )
            cache[1]["yes" if confident else "no"].inc()
            cache[2].set(float(gpv))
            if degraded:
                cache[3].inc()
        return CoordinatedPrediction(
            state=state,
            bottleneck=bottleneck,
            gpv=gpv,
            hc=hc,
            confident=confident,
            synopsis_votes=votes,
            degraded=degraded,
            abstained=abstained,
            imputed_attributes=imputed_attributes,
        )

    def predict_votes(
        self, votes: Sequence[int]
    ) -> CoordinatedPrediction:
        """Clean-path decision from precomputed synopsis votes.

        The multi-site service computes synopsis votes for many sites in
        one vectorized ``predict_batch`` call and hands each site's vote
        vector here; the GPT/LHT decision (including the speculative
        history shift) is exactly the one :meth:`predict` would have
        made from the same metrics.  Callers must only pass votes
        obtained from *complete* telemetry — degraded windows go through
        :meth:`predict_degraded`.
        """
        if len(votes) != len(self.synopses):
            raise ValueError(
                f"{len(votes)} votes for {len(self.synopses)} synopses"
            )
        return self._predict_from_votes(tuple(int(v) for v in votes))

    def commit_clean_votes(
        self, votes: Sequence[int], hist: int
    ) -> None:
        """Record the run-local registers for one fleet-decided window.

        The vectorized fleet backend computes the GPT/LHT decision and
        the observe() repair directly on the shared tables (which this
        predictor sees through its adopted views); what it cannot reach
        are the per-predictor scalar registers.  This sets them exactly
        as a clean ``predict_votes()`` + ``observe()`` pair would leave
        them: every vote is concrete (so all last-vote slots update),
        ``_last_hist`` is the history the decision consulted, and the
        pending-observation marker is cleared.
        """
        for i, vote in enumerate(votes):
            self._last_votes[i] = int(vote)
        self._last_hist = int(hist)
        self._last_gpv = None

    def predict_degraded(
        self,
        metrics: Mapping[str, Mapping[str, float]],
        *,
        min_votes: Optional[int] = None,
        max_imputed_fraction: float = 0.5,
    ) -> Optional[CoordinatedPrediction]:
        """Quorum-ruled decision over possibly-degraded telemetry.

        Each synopsis votes through
        :meth:`~repro.core.synopsis.PerformanceSynopsis.predict_degraded`:
        a tier with partial counters is imputed from training marginals
        (at most ``max_imputed_fraction`` of its selected attributes),
        and a tier that is absent or too incomplete *abstains*.  When at
        least ``min_votes`` synopses (default: a strict majority) cast
        concrete votes, the abstaining GPV bits are filled with each
        synopsis' last concrete vote (its training-majority prior when
        it has never voted) and the usual GPT/LHT decision runs over the
        completed pattern, flagged ``degraded``.

        When quorum fails the method returns ``None`` **without touching
        any history register** — the window is treated as unmeasurable
        and the caller applies its documented fallback (the online
        monitor holds the last decision with decaying confidence).
        Clean telemetry takes exactly the :meth:`predict` path, so a
        zero-fault stream is bit-for-bit unaffected.
        """
        m = len(self.synopses)
        quorum = (m // 2 + 1) if min_votes is None else min_votes
        votes: List[Optional[int]] = []
        imputed = 0
        for synopsis in self.synopses:
            tier_metrics = metrics.get(synopsis.tier)
            limit = max(
                0, int(max_imputed_fraction * len(synopsis.attributes))
            )
            vote, n_imputed = synopsis.predict_degraded(
                tier_metrics, max_imputed=limit
            )
            votes.append(vote)
            if vote is not None:
                imputed += n_imputed
        abstained = tuple(i for i, vote in enumerate(votes) if vote is None)
        if m - len(abstained) < quorum:
            if OBS.enabled:
                OBS.inc(
                    "repro_coordinator_quorum_failures_total",
                    help="windows where too few synopses cast concrete votes",
                )
            return None
        if not abstained and not imputed:
            return self._predict_from_votes(tuple(votes))
        filled = tuple(
            vote
            if vote is not None
            else (
                self._last_votes[i]
                if self._last_votes[i] is not None
                else int(getattr(self.synopses[i], "prior_vote", UNDERLOAD))
            )
            for i, vote in enumerate(votes)
        )
        return self._predict_from_votes(
            filled,
            degraded=True,
            abstained=abstained,
            imputed_attributes=imputed,
        )

    def observe(
        self,
        truth: int,
        *,
        bottleneck: Optional[str] = None,
        adapt: bool = False,
    ) -> None:
        """Feed back delayed ground truth for the last prediction.

        Always repairs the speculative history bit.  With ``adapt=True``
        the predictor also keeps *learning online*: the same ±1 counter
        update used in training is applied to the (pattern, history)
        cell the last prediction consulted — and to the BPT when a
        ground-truth ``bottleneck`` accompanies an overload.  This turns
        the coordinated predictor into a continuously adapting one,
        shrinking the supervised-learning gap the paper observes on
        unknown traffic (Section V.C).

        Each prediction accepts exactly one observation: a second call
        without an intervening :meth:`predict` raises, since it would
        double-apply the adaptive counter update and re-repair history.
        """
        if truth not in (UNDERLOAD, OVERLOAD):
            raise ValueError("truth must be 0/1")
        gpv = self._last_gpv
        if gpv is None:
            raise RuntimeError(
                "observe() without a preceding predict() "
                "(or called twice for the same prediction)"
            )
        if adapt:
            step = 1.0 if truth == OVERLOAD else -1.0
            self._lht[gpv, self._last_hist] = float(
                np.clip(
                    self._lht[gpv, self._last_hist] + step,
                    -self.counter_limit,
                    self.counter_limit,
                )
            )
            self._gpt[gpv] = float(
                np.clip(
                    self._gpt[gpv] + step,
                    -self.pattern_counter_limit,
                    self.pattern_counter_limit,
                )
            )
            if truth == OVERLOAD and bottleneck is not None:
                if bottleneck not in self.tiers:
                    raise ValueError(f"unknown bottleneck tier {bottleneck!r}")
                for k, tier in enumerate(self.tiers):
                    self._bpt[gpv, k] += 1.0 if tier == bottleneck else -1.0
        self._history[gpv] = (self._history[gpv] & ~1) | truth
        self._last_gpv = None

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def runtime_state(self) -> Dict[str, object]:
        """Run-local speculative state (history registers, last votes).

        :meth:`to_dict` deliberately omits this — a freshly loaded
        predictor starts clean — but a *checkpointed* online monitor
        must resume with the exact registers it crashed with, or its
        subsequent decisions diverge from an uninterrupted run.
        """
        return {
            "history": self._history.tolist(),
            "last_gpv": self._last_gpv,
            "last_hist": self._last_hist,
            "last_votes": list(self._last_votes),
        }

    def restore_runtime_state(self, state: Mapping[str, object]) -> None:
        """Restore registers captured by :meth:`runtime_state`."""
        history = np.asarray(state["history"], dtype=int)
        if history.shape != self._history.shape:
            raise ValueError(
                f"history register shape {history.shape} does not match "
                f"{self._history.shape}"
            )
        # in place, so table views adopted by a fleet backend stay live
        self._history[...] = history
        last_gpv = state["last_gpv"]
        self._last_gpv = None if last_gpv is None else int(last_gpv)
        self._last_hist = int(state["last_hist"])
        last_votes = list(state["last_votes"])
        if len(last_votes) != len(self.synopses):
            raise ValueError(
                f"{len(last_votes)} last votes for "
                f"{len(self.synopses)} synopses"
            )
        self._last_votes = [
            None if vote is None else int(vote) for vote in last_votes
        ]

    # ------------------------------------------------------------------
    # fleet table sharing
    # ------------------------------------------------------------------
    def _check_table_shapes(
        self,
        lht: np.ndarray,
        gpt: np.ndarray,
        bpt: np.ndarray,
        history: Optional[np.ndarray] = None,
    ) -> None:
        expected = {
            "LHT": (lht, self._lht.shape),
            "GPT": (gpt, self._gpt.shape),
            "BPT": (bpt, self._bpt.shape),
        }
        if history is not None:
            expected["history"] = (history, self._history.shape)
        for table, (array, shape) in expected.items():
            if array.shape != shape:
                raise ValueError(
                    f"{table} table shape {array.shape} does not match "
                    f"the predictor's {shape}"
                )

    def adopt_tables(
        self,
        lht: np.ndarray,
        gpt: np.ndarray,
        bpt: np.ndarray,
        history: np.ndarray,
    ) -> None:
        """Re-point the tables at externally owned array views.

        The fleet backend stacks every site's tables into one
        structure-of-arrays block and hands each predictor basic-slice
        views of its shard, so the per-site code path and the vectorized
        fleet path read and write the *same memory* — bit-identity
        between the two is structural, not re-derived.  The views must
        already hold this predictor's current values; shapes are
        validated, contents are the caller's responsibility.
        """
        self._check_table_shapes(lht, gpt, bpt, history)
        if history.dtype != self._history.dtype:
            raise ValueError(
                f"history view dtype {history.dtype} does not match "
                f"{self._history.dtype}"
            )
        self._lht = lht
        self._gpt = gpt
        self._bpt = bpt
        self._history = history

    def table_state(self) -> Dict[str, object]:
        """The adaptive tables as JSON-ready lists (fleet checkpoints)."""
        return {
            "lht": self._lht.tolist(),
            "gpt": self._gpt.tolist(),
            "bpt": self._bpt.tolist(),
        }

    def set_tables(
        self, lht: np.ndarray, gpt: np.ndarray, bpt: np.ndarray
    ) -> None:
        """Overwrite table *values* in place (checkpoint restore).

        Unlike :meth:`from_dict`'s construction-time assignment this
        never replaces the arrays, so views adopted through
        :meth:`adopt_tables` stay live.
        """
        lht = np.asarray(lht, dtype=float)
        gpt = np.asarray(gpt, dtype=float)
        bpt = np.asarray(bpt, dtype=float)
        self._check_table_shapes(lht, gpt, bpt)
        self._lht[...] = lht
        self._gpt[...] = gpt
        self._bpt[...] = bpt

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot: synopses, tables and parameters.

        History registers are deliberately *not* saved — they are
        run-local speculative state; a restored predictor starts with
        clean histories, exactly like one whose ``reset_history`` was
        called between runs.
        """
        return {
            "tiers": list(self.tiers),
            "history_bits": self.history_bits,
            "delta": self.delta,
            "scheme": self.scheme.value,
            "counter_limit": self.counter_limit,
            "pattern_fallback": self.pattern_fallback,
            "pattern_counter_limit": self.pattern_counter_limit,
            "synopses": [synopsis.to_dict() for synopsis in self.synopses],
            "lht": self._lht.tolist(),
            "gpt": self._gpt.tolist(),
            "bpt": self._bpt.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CoordinatedPredictor":
        """Rebuild a predictor serialized by :meth:`to_dict`."""
        from .synopsis import PerformanceSynopsis

        synopses = [
            PerformanceSynopsis.from_dict(item)
            for item in payload["synopses"]
        ]
        predictor = cls(
            synopses,
            list(payload["tiers"]),
            history_bits=int(payload["history_bits"]),
            delta=float(payload["delta"]),
            scheme=Scheme(payload["scheme"]),
            counter_limit=float(payload["counter_limit"]),
            pattern_fallback=bool(payload["pattern_fallback"]),
            pattern_counter_limit=float(payload["pattern_counter_limit"]),
        )
        lht = np.array(payload["lht"], dtype=float)
        gpt = np.array(payload["gpt"], dtype=float)
        bpt = np.array(payload["bpt"], dtype=float)
        n_patterns = 2 ** len(synopses)
        expected = {
            "LHT": (lht, (n_patterns, 2 ** predictor.history_bits)),
            "GPT": (gpt, (n_patterns,)),
            "BPT": (bpt, (n_patterns, len(predictor.tiers))),
        }
        for table, (array, shape) in expected.items():
            if array.shape != shape:
                raise ValueError(
                    f"{table} table shape {array.shape} does not match "
                    f"{len(synopses)} synopses / "
                    f"{predictor.history_bits} history bits / "
                    f"{len(predictor.tiers)} tiers (expected {shape})"
                )
        predictor._lht = lht
        predictor._gpt = gpt
        predictor._bpt = bpt
        return predictor

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, instances: Sequence[CoordinatedInstance]
    ) -> Dict[str, float]:
        """Overload BA and bottleneck accuracy over a test sequence.

        Returns ``overload_ba`` (balanced accuracy of the state
        prediction), ``bottleneck_accuracy`` (fraction of truly
        overloaded windows whose bottleneck tier was named correctly —
        a window whose BPT row abstains counts as incorrect), and raw
        counts.
        """
        self.reset_history()
        tp = tn = fp = fn = 0
        bn_total = bn_correct = 0
        for instance in instances:
            prediction = self.predict(instance.metrics)
            self.observe(instance.label)
            if instance.label == OVERLOAD:
                if prediction.overloaded:
                    tp += 1
                else:
                    fn += 1
                if instance.bottleneck is not None:
                    bn_total += 1
                    # consult the BPT for this pattern even if the state
                    # prediction missed, so the two accuracies decouple;
                    # an abstaining (all-zero) row is simply incorrect
                    voted = self.bpt_vote(prediction.gpv)
                    if voted == instance.bottleneck:
                        bn_correct += 1
            else:
                if prediction.overloaded:
                    fp += 1
                else:
                    tn += 1
        tpr = tp / (tp + fn) if (tp + fn) else 1.0
        tnr = tn / (tn + fp) if (tn + fp) else 1.0
        return {
            "overload_ba": 0.5 * (tpr + tnr),
            "bottleneck_accuracy": bn_correct / bn_total if bn_total else 1.0,
            "tp": float(tp),
            "tn": float(tn),
            "fp": float(fp),
            "fn": float(fn),
            "bottleneck_windows": float(bn_total),
        }

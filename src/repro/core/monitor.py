"""Online capacity monitoring — the paper's measurement loop, live.

:class:`OnlineCapacityMonitor` wires the full online path together:
sampler ticks → :class:`~repro.telemetry.streaming.StreamingWindowAggregator`
→ per-tier synopsis votes → :meth:`CoordinatedPredictor.predict`
→ ground-truth feedback via :meth:`observe` (optionally with
``adapt=True`` for continuous online learning) → incremental
Productivity-Index tracking (Welford-style Pearson correlation against
throughput, Equation 2).  Memory is O(window): no interval history is
retained beyond the current window's accumulators and whatever bounded
debugging tail the caller asks for.

The monitor's per-window decisions are bit-for-bit identical to the
offline pipeline (:func:`~repro.core.capacity.build_coordinated_instances`
followed by :meth:`CoordinatedPredictor.evaluate`) on the same records,
because the streaming aggregator reproduces the batch window arithmetic
exactly and the same predict/observe sequence runs underneath.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..simulator.engine import Simulator
from ..simulator.website import MultiTierWebsite
from ..telemetry.dataset import OVERLOAD
from ..telemetry.sampler import (
    IntervalRecord,
    TelemetrySampler,
    WindowStats,
)
from ..telemetry.streaming import (
    RunningCorrelation,
    StreamingWindow,
    StreamingWindowAggregator,
)
from .capacity import CapacityMeter
from .coordinator import CoordinatedPrediction
from .pi import DEFAULT_PI_CANDIDATES, PiDefinition

__all__ = ["MonitorDecision", "MonitorCounters", "OnlineCapacityMonitor"]


@dataclass(frozen=True)
class MonitorDecision:
    """One decision window's record: prediction, truth and window state."""

    index: int
    t_start: float
    t_end: float
    prediction: CoordinatedPrediction
    truth: int
    truth_bottleneck: Optional[str]
    stats: WindowStats

    @property
    def correct(self) -> bool:
        return self.prediction.state == self.truth


@dataclass
class MonitorCounters:
    """Running operational counters of the online loop."""

    ticks: int = 0
    windows: int = 0
    confident_windows: int = 0
    fallback_scheme_uses: int = 0
    adaptation_steps: int = 0
    tp: int = 0
    tn: int = 0
    fp: int = 0
    fn: int = 0
    bottleneck_windows: int = 0
    bottleneck_correct: int = 0

    @property
    def confident_fraction(self) -> float:
        return self.confident_windows / self.windows if self.windows else 0.0


class OnlineCapacityMonitor:
    """Streaming overload/bottleneck monitor over a trained meter.

    Feed it interval records one at a time with :meth:`push` (or attach
    it to a live simulation with :meth:`attach`); every ``window``-th
    tick it makes a coordinated decision, scores it against the
    labeler's ground truth, and optionally adapts the predictor online.

    ``retain_decisions`` bounds the kept decision tail (``None`` keeps
    all — fine for tests, unbounded for production monitoring; pass a
    small number there).  ``on_decision`` delivers every decision to a
    consumer regardless of retention.
    """

    def __init__(
        self,
        meter: CapacityMeter,
        *,
        adapt: bool = False,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        track_pi: bool = True,
        pi_candidates: Sequence[Tuple[str, str]] = DEFAULT_PI_CANDIDATES,
        retain_decisions: Optional[int] = None,
        retain_records: int = 0,
        on_decision: Optional[Callable[[MonitorDecision], None]] = None,
    ):
        if not meter.is_trained:
            raise ValueError("OnlineCapacityMonitor needs a trained meter")
        self.meter = meter
        self.adapt = adapt
        self.labeler = labeler if labeler is not None else meter.labeler
        self.on_decision = on_decision
        self.aggregator = StreamingWindowAggregator(
            level=meter.level,
            tiers=meter.tiers,
            window=meter.window,
            retain_records=retain_records,
        )
        self.counters = MonitorCounters()
        self.decisions: Deque[MonitorDecision] = deque(maxlen=retain_decisions)
        #: incremental Corr(PI, throughput) per candidate definition,
        #: updated every tick (the paper's 1 s PI sampling granularity)
        self._pi_trackers: Dict[PiDefinition, RunningCorrelation] = {}
        if track_pi:
            for tier in meter.tiers:
                for yield_metric, cost_metric in pi_candidates:
                    definition = PiDefinition(tier, yield_metric, cost_metric)
                    self._pi_trackers[definition] = RunningCorrelation()
        # the same clean-history start the offline evaluate() performs
        self.meter.coordinator.reset_history()

    # ------------------------------------------------------------------
    def attach(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        *,
        workload: str = "",
        interval: float = 1.0,
        hpc_noise: float = 0.03,
        os_noise: float = 0.05,
        seed: int = 0,
        retain: int = 0,
    ) -> TelemetrySampler:
        """Create a sampler that streams straight into this monitor.

        The returned sampler keeps only ``retain`` raw records in its
        run (default none) — the run object is a stub, not a log; the
        monitor is the consumer.
        """
        return TelemetrySampler(
            sim,
            website,
            workload=workload,
            interval=interval,
            hpc_noise=hpc_noise,
            os_noise=os_noise,
            seed=seed,
            on_record=self.push,
            retain=retain,
        )

    # ------------------------------------------------------------------
    def push(self, record: IntervalRecord) -> Optional[MonitorDecision]:
        """Fold one 1 s record; returns the decision on window completion."""
        self.counters.ticks += 1
        for definition, tracker in self._pi_trackers.items():
            metrics = record.metrics(definition.level, definition.tier)
            tracker.update(
                definition.value(metrics), record.website.client.throughput
            )
        window = self.aggregator.push(record)
        if window is None:
            return None
        return self._decide(window)

    def _decide(self, window: StreamingWindow) -> MonitorDecision:
        coordinator = self.meter.coordinator
        prediction = coordinator.predict(window.metrics)
        truth = self.labeler(window.stats)
        truth_bottleneck = window.stats.bottleneck if truth == OVERLOAD else None
        coordinator.observe(
            truth,
            bottleneck=truth_bottleneck if self.adapt else None,
            adapt=self.adapt,
        )
        counters = self.counters
        counters.windows += 1
        if prediction.confident:
            counters.confident_windows += 1
        else:
            counters.fallback_scheme_uses += 1
        if self.adapt:
            counters.adaptation_steps += 1
        if truth == OVERLOAD:
            if prediction.overloaded:
                counters.tp += 1
            else:
                counters.fn += 1
            if truth_bottleneck is not None:
                counters.bottleneck_windows += 1
                if coordinator.bpt_vote(prediction.gpv) == truth_bottleneck:
                    counters.bottleneck_correct += 1
        else:
            if prediction.overloaded:
                counters.fp += 1
            else:
                counters.tn += 1
        decision = MonitorDecision(
            index=window.index,
            t_start=window.stats.t_start,
            t_end=window.stats.t_end,
            prediction=prediction,
            truth=truth,
            truth_bottleneck=truth_bottleneck,
            stats=window.stats,
        )
        self.decisions.append(decision)
        if self.on_decision is not None:
            self.on_decision(decision)
        return decision

    # ------------------------------------------------------------------
    def pi_correlations(self) -> Dict[PiDefinition, float]:
        """Current Corr(PI, throughput) per tracked candidate."""
        return {
            definition: tracker.value
            for definition, tracker in self._pi_trackers.items()
        }

    def best_pi(self) -> Optional[Tuple[PiDefinition, float]]:
        """The candidate with the largest correlation so far (Eq. 2)."""
        correlations = self.pi_correlations()
        if not correlations:
            return None
        definition = max(correlations, key=correlations.get)
        return definition, correlations[definition]

    def scores(self) -> Dict[str, float]:
        """The same score dict :meth:`CoordinatedPredictor.evaluate` returns."""
        c = self.counters
        tpr = c.tp / (c.tp + c.fn) if (c.tp + c.fn) else 1.0
        tnr = c.tn / (c.tn + c.fp) if (c.tn + c.fp) else 1.0
        return {
            "overload_ba": 0.5 * (tpr + tnr),
            "bottleneck_accuracy": (
                c.bottleneck_correct / c.bottleneck_windows
                if c.bottleneck_windows
                else 1.0
            ),
            "tp": float(c.tp),
            "tn": float(c.tn),
            "fp": float(c.fp),
            "fn": float(c.fn),
            "bottleneck_windows": float(c.bottleneck_windows),
        }

    def summary_rows(self) -> List[str]:
        """Human-readable summary of the monitoring session."""
        c = self.counters
        scores = self.scores()
        rows = [
            f"windows seen:        {c.windows} ({c.ticks} ticks)",
            f"confident fraction:  {c.confident_fraction:.3f}",
            f"fallback scheme:     {c.fallback_scheme_uses} windows",
            f"adaptation steps:    {c.adaptation_steps}",
            f"overload BA:         {scores['overload_ba']:.3f}",
            f"bottleneck accuracy: {scores['bottleneck_accuracy']:.3f}",
        ]
        best = self.best_pi()
        if best is not None and self.counters.ticks >= 2:
            definition, corr = best
            rows.append(f"best PI:             {definition.label} (corr {corr:.3f})")
        return rows

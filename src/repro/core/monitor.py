"""Online capacity monitoring — the paper's measurement loop, live.

:class:`OnlineCapacityMonitor` wires the full online path together:
sampler ticks → :class:`~repro.telemetry.streaming.StreamingWindowAggregator`
→ per-tier synopsis votes → :meth:`CoordinatedPredictor.predict`
→ ground-truth feedback via :meth:`observe` (optionally with
``adapt=True`` for continuous online learning) → incremental
Productivity-Index tracking (Welford-style Pearson correlation against
throughput, Equation 2).  Memory is O(window): no interval history is
retained beyond the current window's accumulators and whatever bounded
debugging tail the caller asks for.

The monitor's per-window decisions are bit-for-bit identical to the
offline pipeline (:func:`~repro.core.capacity.build_coordinated_instances`
followed by :meth:`CoordinatedPredictor.evaluate`) on the same records,
because the streaming aggregator reproduces the batch window arithmetic
exactly and the same predict/observe sequence runs underneath.

Degraded telemetry never silences the monitor.  The aggregator runs in
lenient mode, so records with missing tiers or dropped counters flow
through the dropout path instead of raising; per-window quality flags
drive imputation/abstention inside
:meth:`~repro.core.coordinator.CoordinatedPredictor.predict_degraded`;
and when even the vote quorum fails, the monitor emits a *held*
decision — the last real decision with geometrically decaying
confidence — so every window produces exactly one decision, flagged in
:class:`MonitorCounters`.  A clean stream takes the exact historical
code path, bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..obs import OBS
from ..simulator.engine import Simulator
from ..simulator.website import MultiTierWebsite
from ..telemetry.dataset import OVERLOAD, UNDERLOAD
from ..telemetry.sampler import (
    IntervalRecord,
    TelemetrySampler,
    WindowStats,
)
from ..telemetry.streaming import (
    RunningCorrelation,
    StreamingWindow,
    StreamingWindowAggregator,
    WindowQuality,
)
from .capacity import CapacityMeter
from .coordinator import CoordinatedPrediction, Scheme
from .pi import DEFAULT_PI_CANDIDATES, PiDefinition

__all__ = ["MonitorDecision", "MonitorCounters", "OnlineCapacityMonitor"]


def _prediction_to_dict(
    prediction: Optional[CoordinatedPrediction],
) -> Optional[dict]:
    if prediction is None:
        return None
    return {
        "state": prediction.state,
        "bottleneck": prediction.bottleneck,
        "gpv": prediction.gpv,
        "hc": prediction.hc,
        "confident": prediction.confident,
        "synopsis_votes": list(prediction.synopsis_votes),
        "degraded": prediction.degraded,
        "abstained": list(prediction.abstained),
        "imputed_attributes": prediction.imputed_attributes,
    }


def _prediction_from_dict(
    payload: Optional[dict],
) -> Optional[CoordinatedPrediction]:
    if payload is None:
        return None
    return CoordinatedPrediction(
        state=int(payload["state"]),
        bottleneck=payload["bottleneck"],
        gpv=int(payload["gpv"]),
        hc=float(payload["hc"]),
        confident=bool(payload["confident"]),
        synopsis_votes=tuple(int(v) for v in payload["synopsis_votes"]),
        degraded=bool(payload["degraded"]),
        abstained=tuple(int(i) for i in payload["abstained"]),
        imputed_attributes=int(payload["imputed_attributes"]),
    )


@dataclass(frozen=True)
class MonitorDecision:
    """One decision window's record: prediction, truth and window state.

    ``held`` marks a window where telemetry was too degraded for a vote
    quorum and the previous decision was re-emitted with decayed
    confidence; ``quality`` carries the window's telemetry completeness
    (``None`` only for pre-fault-era producers).
    """

    index: int
    t_start: float
    t_end: float
    prediction: CoordinatedPrediction
    truth: int
    truth_bottleneck: Optional[str]
    stats: WindowStats
    held: bool = False
    quality: Optional[WindowQuality] = None

    @property
    def correct(self) -> bool:
        return self.prediction.state == self.truth

    @property
    def degraded(self) -> bool:
        """Was this decision made from incomplete telemetry?

        True when the vote was held/imputed/abstained *or* when the
        window's cells were only partially measured — even if enough
        samples survived for every synopsis to vote concretely.
        """
        return (
            self.held
            or self.prediction.degraded
            or (self.quality is not None and self.quality.degraded)
        )

    @property
    def confidence(self) -> float:
        """Telemetry confidence of this decision in [0, 1].

        The fraction of synopses that cast a *concrete* vote: 1.0 for a
        clean (or merely imputed) window, lower when votes had to be
        substituted, and 0.0 for a held decision, where no synopsis
        voted at all.  This is deliberately distinct from the
        predictor's statistical ``confident`` flag (Hc vs. δ): a
        fallback-scheme decision over pristine telemetry still carries
        full telemetry confidence, so clean-stream consumers behave
        exactly as they did before degraded-mode support existed.
        """
        prediction = self.prediction
        total = len(prediction.synopsis_votes) or len(prediction.abstained)
        if total == 0:
            return 0.0 if self.held else 1.0
        return (total - len(prediction.abstained)) / total


@dataclass
class MonitorCounters:
    """Running operational counters of the online loop."""

    ticks: int = 0
    windows: int = 0
    confident_windows: int = 0
    fallback_scheme_uses: int = 0
    adaptation_steps: int = 0
    tp: int = 0
    tn: int = 0
    fp: int = 0
    fn: int = 0
    bottleneck_windows: int = 0
    bottleneck_correct: int = 0
    #: ticks whose record lacked at least one configured tier's metrics
    partial_ticks: int = 0
    #: PI tracker updates skipped because the metrics were missing
    pi_skipped_updates: int = 0
    #: windows decided from incomplete telemetry (imputed or abstained)
    degraded_windows: int = 0
    #: synopsis abstentions summed over all degraded windows
    abstained_votes: int = 0
    #: attribute values imputed from training marginals, summed
    imputed_attributes: int = 0
    #: quorum failures answered by holding the last decision
    held_decisions: int = 0

    @property
    def confident_fraction(self) -> float:
        return self.confident_windows / self.windows if self.windows else 0.0

    @property
    def degraded_fraction(self) -> float:
        return self.degraded_windows / self.windows if self.windows else 0.0


class OnlineCapacityMonitor:
    """Streaming overload/bottleneck monitor over a trained meter.

    Feed it interval records one at a time with :meth:`push` (or attach
    it to a live simulation with :meth:`attach`); every ``window``-th
    tick it makes a coordinated decision, scores it against the
    labeler's ground truth, and optionally adapts the predictor online.

    ``retain_decisions`` bounds the kept decision tail (``None`` keeps
    all — fine for tests, unbounded for production monitoring; pass a
    small number there).  ``on_decision`` delivers every decision to a
    consumer regardless of retention.

    Degraded-mode knobs: ``min_votes`` is the synopsis-vote quorum
    (default: strict majority), ``max_imputed_fraction`` bounds how much
    of a synopsis' attribute set may be imputed from training marginals
    before it abstains, and ``confidence_decay`` is the per-window
    geometric decay applied to a held decision's counter value while
    quorum stays lost.
    """

    def __init__(
        self,
        meter: CapacityMeter,
        *,
        adapt: bool = False,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        track_pi: bool = True,
        pi_candidates: Sequence[Tuple[str, str]] = DEFAULT_PI_CANDIDATES,
        retain_decisions: Optional[int] = None,
        retain_records: int = 0,
        on_decision: Optional[Callable[[MonitorDecision], None]] = None,
        min_votes: Optional[int] = None,
        max_imputed_fraction: float = 0.5,
        confidence_decay: float = 0.5,
    ):
        if not meter.is_trained:
            raise ValueError("OnlineCapacityMonitor needs a trained meter")
        if not 0.0 <= confidence_decay <= 1.0:
            raise ValueError("confidence_decay must be in [0, 1]")
        if not 0.0 <= max_imputed_fraction <= 1.0:
            raise ValueError("max_imputed_fraction must be in [0, 1]")
        self.meter = meter
        self.adapt = adapt
        self.labeler = labeler if labeler is not None else meter.labeler
        self.on_decision = on_decision
        self.min_votes = min_votes
        self.max_imputed_fraction = max_imputed_fraction
        self.confidence_decay = confidence_decay
        self.aggregator = StreamingWindowAggregator(
            level=meter.level,
            tiers=meter.tiers,
            window=meter.window,
            retain_records=retain_records,
            lenient=True,
        )
        self.counters = MonitorCounters()
        self.decisions: Deque[MonitorDecision] = deque(maxlen=retain_decisions)
        #: incremental Corr(PI, throughput) per candidate definition,
        #: updated every tick (the paper's 1 s PI sampling granularity)
        self._pi_trackers: Dict[PiDefinition, RunningCorrelation] = {}
        if track_pi:
            for tier in meter.tiers:
                for yield_metric, cost_metric in pi_candidates:
                    definition = PiDefinition(tier, yield_metric, cost_metric)
                    self._pi_trackers[definition] = RunningCorrelation()
        # cached metric handles, valid while OBS.registry is the same
        # object (transient; excluded from checkpoint state)
        self._obs_cache: Optional[tuple] = None
        # hold-last-decision fallback state (quorum failures)
        self._held_streak = 0
        self._last_prediction: Optional[CoordinatedPrediction] = None
        # the same clean-history start the offline evaluate() performs
        self.meter.coordinator.reset_history()

    # ------------------------------------------------------------------
    def attach(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        *,
        workload: str = "",
        interval: float = 1.0,
        hpc_noise: float = 0.03,
        os_noise: float = 0.05,
        seed: int = 0,
        retain: int = 0,
    ) -> TelemetrySampler:
        """Create a sampler that streams straight into this monitor.

        The returned sampler keeps only ``retain`` raw records in its
        run (default none) — the run object is a stub, not a log; the
        monitor is the consumer.
        """
        return TelemetrySampler(
            sim,
            website,
            workload=workload,
            interval=interval,
            hpc_noise=hpc_noise,
            os_noise=os_noise,
            seed=seed,
            on_record=self.push,
            retain=retain,
        )

    # ------------------------------------------------------------------
    def push(self, record: IntervalRecord) -> Optional[MonitorDecision]:
        """Fold one 1 s record; returns the decision on window completion."""
        window = self.fold(record)
        if window is None:
            return None
        return self.decide(window)

    def fold(self, record: IntervalRecord) -> Optional[StreamingWindow]:
        """Fold one record without deciding; returns a completed window.

        :meth:`push` is ``fold`` + :meth:`decide`.  Callers that batch
        inference across several monitors (the multi-site
        :class:`~repro.control.service.CapacityService`) fold every
        site's record first, compute synopsis votes for all completed
        windows in one vectorized pass, and then hand each window back
        to its own monitor's :meth:`decide`.
        """
        self.counters.ticks += 1
        partial = False
        for definition, tracker in self._pi_trackers.items():
            try:
                metrics = record.metrics(definition.level, definition.tier)
                value = definition.value(metrics)
            except KeyError:
                # dropped tier or counter: the PI sample is unmeasurable
                self.counters.pi_skipped_updates += 1
                partial = True
                continue
            tracker.update(value, record.website.client.throughput)
        if not partial:
            for tier in self.meter.tiers:
                try:
                    record.metrics(self.meter.level, tier)
                except KeyError:
                    partial = True
                    break
        if partial:
            self.counters.partial_ticks += 1
        return self.aggregator.push(record)

    def fold_prepared(
        self, record: IntervalRecord, prepared
    ) -> Optional[StreamingWindow]:
        """Fold one record whose metric rows were extracted fleet-wide.

        The fleet backend (:class:`~repro.control.fleet.FleetState`)
        extracts each distinct record's per-tier rows once, updates the
        PI moments vectorized across all member sites (this monitor's
        trackers are views into that array), and hands each member the
        shared :class:`~repro.telemetry.streaming.PreparedRecord`.  The
        caller guarantees the record is complete for both the tracked
        PI definitions and this aggregator's schema, so the partial /
        skipped-update counters stay untouched — exactly as
        :meth:`fold` leaves them on a complete record.
        """
        self.counters.ticks += 1
        return self.aggregator.push_prepared(record, prepared)

    def _held_prediction(self) -> CoordinatedPrediction:
        """The quorum-failure fallback: last decision, decayed.

        With no prior decision at all, fall back to the coordinator's
        configured scheme (optimistic → underload), exactly what λ does
        inside its confidence band.
        """
        coordinator = self.meter.coordinator
        everyone = tuple(range(coordinator.n_synopses))
        last = self._last_prediction
        if last is None:
            state = (
                UNDERLOAD
                if coordinator.scheme is Scheme.OPTIMISTIC
                else OVERLOAD
            )
            return CoordinatedPrediction(
                state=state,
                bottleneck=None,
                gpv=0,
                hc=0.0,
                confident=False,
                synopsis_votes=(),
                degraded=True,
                abstained=everyone,
            )
        decay = self.confidence_decay ** (self._held_streak + 1)
        return CoordinatedPrediction(
            state=last.state,
            bottleneck=last.bottleneck,
            gpv=last.gpv,
            hc=last.hc * decay,
            confident=False,
            synopsis_votes=(),
            degraded=True,
            abstained=everyone,
        )

    def decide(
        self,
        window: StreamingWindow,
        *,
        votes: Optional[Tuple[int, ...]] = None,
    ) -> MonitorDecision:
        """Turn one completed window into a scored decision.

        ``votes`` optionally supplies precomputed synopsis votes for a
        *complete* window (the batched multi-site fast path); they must
        be exactly the votes the synopses would cast on
        ``window.metrics``, so the decision is bit-identical to the
        unbatched path.  Degraded windows must leave ``votes`` unset.
        """
        t0 = OBS.clock() if OBS.enabled else None
        coordinator = self.meter.coordinator
        if votes is not None:
            prediction: Optional[CoordinatedPrediction] = (
                coordinator.predict_votes(votes)
            )
        else:
            prediction = coordinator.predict_degraded(
                window.metrics,
                min_votes=self.min_votes,
                max_imputed_fraction=self.max_imputed_fraction,
            )
        held = prediction is None
        if held:
            prediction = self._held_prediction()
        truth = self.labeler(window.stats)
        truth_bottleneck = window.stats.bottleneck if truth == OVERLOAD else None
        if held:
            # no predict() ran underneath: the history registers were
            # never speculated on, so there is nothing to observe/repair
            self._held_streak += 1
        else:
            coordinator.observe(
                truth,
                bottleneck=truth_bottleneck if self.adapt else None,
                adapt=self.adapt,
            )
            self._held_streak = 0
            self._last_prediction = prediction
        counters = self.counters
        counters.windows += 1
        if prediction.confident:
            counters.confident_windows += 1
        else:
            counters.fallback_scheme_uses += 1
        quality_degraded = window.quality is not None and window.quality.degraded
        if held or prediction.degraded or quality_degraded:
            counters.degraded_windows += 1
        if prediction.degraded:
            counters.abstained_votes += len(prediction.abstained)
            counters.imputed_attributes += prediction.imputed_attributes
        if held:
            counters.held_decisions += 1
        if self.adapt and not held:
            counters.adaptation_steps += 1
        if truth == OVERLOAD:
            if prediction.overloaded:
                counters.tp += 1
            else:
                counters.fn += 1
            if truth_bottleneck is not None:
                counters.bottleneck_windows += 1
                if coordinator.bpt_vote(prediction.gpv) == truth_bottleneck:
                    counters.bottleneck_correct += 1
        else:
            if prediction.overloaded:
                counters.fp += 1
            else:
                counters.tn += 1
        decision = MonitorDecision(
            index=window.index,
            t_start=window.stats.t_start,
            t_end=window.stats.t_end,
            prediction=prediction,
            truth=truth,
            truth_bottleneck=truth_bottleneck,
            stats=window.stats,
            held=held,
            quality=window.quality,
        )
        self.decisions.append(decision)
        if self.on_decision is not None:
            self.on_decision(decision)
        if t0 is not None:
            cache = self._obs_cache
            if cache is None or cache[0] is not OBS.registry:
                registry = OBS.registry
                cache = self._obs_cache = (
                    registry,
                    registry.counter(
                        "repro_monitor_windows_total",
                        help="decision windows completed by online monitors",
                    ),
                    registry.counter(
                        "repro_monitor_ticks_total",
                        help="interval records folded by online monitors",
                    ),
                    registry.counter(
                        "repro_monitor_held_decisions_total",
                        help="quorum failures answered by holding the "
                        "last decision",
                    ),
                    registry.counter(
                        "repro_monitor_degraded_windows_total",
                        help="windows decided from incomplete telemetry",
                    ),
                    registry.gauge(
                        "repro_monitor_overload_ba",
                        help="running overload balanced accuracy of the "
                        "monitor",
                    ),
                )
            cache[1].inc()
            # per-record ticks flush here, once per completed window,
            # keeping push() itself free of metric operations
            cache[2].inc(self.meter.window)
            if held:
                cache[3].inc()
            if decision.degraded:
                cache[4].inc()
            c = self.counters
            tpr = c.tp / (c.tp + c.fn) if (c.tp + c.fn) else 1.0
            tnr = c.tn / (c.tn + c.fp) if (c.tn + c.fp) else 1.0
            cache[5].set(0.5 * (tpr + tnr))
            OBS.observe_span("monitor_decide", OBS.clock() - t0)
        return decision

    def finish_fleet_decision(
        self,
        window: StreamingWindow,
        prediction: CoordinatedPrediction,
        truth: int,
        truth_bottleneck: Optional[str],
    ) -> MonitorDecision:
        """Bookkeeping half of :meth:`decide` for a fleet-decided window.

        The fleet backend already ran the clean-path prediction and the
        observe() repair/adaptation vectorized on the shared tables, so
        this applies everything :meth:`decide` does *besides* those two
        steps: fallback-streak reset, counters (including the
        bottleneck score, which consults the post-adaptation BPT exactly
        as the per-site path does), the decision record, retention and
        the ``on_decision`` callback.  Only clean (non-held,
        non-degraded-vote) predictions come through here, and only when
        observability is disabled — the service falls back to the
        per-site path otherwise.
        """
        self._held_streak = 0
        self._last_prediction = prediction
        counters = self.counters
        counters.windows += 1
        if prediction.confident:
            counters.confident_windows += 1
        else:
            counters.fallback_scheme_uses += 1
        if window.quality is not None and window.quality.degraded:
            counters.degraded_windows += 1
        if self.adapt:
            counters.adaptation_steps += 1
        if truth == OVERLOAD:
            if prediction.overloaded:
                counters.tp += 1
            else:
                counters.fn += 1
            if truth_bottleneck is not None:
                counters.bottleneck_windows += 1
                coordinator = self.meter.coordinator
                if coordinator.bpt_vote(prediction.gpv) == truth_bottleneck:
                    counters.bottleneck_correct += 1
        else:
            if prediction.overloaded:
                counters.fp += 1
            else:
                counters.tn += 1
        decision = MonitorDecision(
            index=window.index,
            t_start=window.stats.t_start,
            t_end=window.stats.t_end,
            prediction=prediction,
            truth=truth,
            truth_bottleneck=truth_bottleneck,
            stats=window.stats,
            held=False,
            quality=window.quality,
        )
        self.decisions.append(decision)
        if self.on_decision is not None:
            self.on_decision(decision)
        return decision

    # ------------------------------------------------------------------
    # fleet PI-tracker sharing
    # ------------------------------------------------------------------
    def pi_tracker_items(self) -> List[Tuple[PiDefinition, RunningCorrelation]]:
        """The tracked PI definitions and their trackers, in order."""
        return list(self._pi_trackers.items())

    def adopt_pi_trackers(self, trackers: dict) -> None:
        """Swap the PI trackers for fleet-backed view objects.

        ``trackers`` must cover exactly the currently tracked
        definitions (in the same order) with objects exposing the
        :class:`~repro.telemetry.streaming.RunningCorrelation` API;
        the fleet backend hands in views over its stacked moment array
        so per-site and vectorized updates share state.  Note that
        :meth:`load_state` rebuilds plain trackers — fleet adoption must
        happen after any restore.
        """
        if list(trackers) != list(self._pi_trackers):
            raise ValueError(
                "adopted PI trackers must cover exactly the tracked "
                "definitions, in order"
            )
        self._pi_trackers = dict(trackers)

    # ------------------------------------------------------------------
    # hot-swap
    # ------------------------------------------------------------------
    def swap_meter(self, meter: CapacityMeter) -> None:
        """Atomically replace the trained meter behind this monitor.

        ``decide()`` resolves ``self.meter.coordinator`` freshly on
        every call, so a single reference assignment is the whole
        install: the next decided window votes through the new
        synopsis/coordinator set while all run-local state — streaming
        aggregator (including a half-filled window), counters, PI
        trackers, held-decision streak — carries over untouched.  The
        new meter starts from a clean decision history, exactly as a
        freshly constructed monitor would, which is what makes a
        mid-run swap bit-identical to stop-retrain-restart.

        Callers must only swap at a window boundary (the service layer
        stages swaps until one); swapping mid-window is safe for the
        aggregator but would let one window mix two meters' votes.
        """
        if not meter.is_trained:
            raise ValueError("swap_meter needs a trained meter")
        if (
            meter.level != self.meter.level
            or tuple(meter.tiers) != tuple(self.meter.tiers)
            or meter.window != self.meter.window
        ):
            raise ValueError(
                "swapped meter must match level/tiers/window of the old one"
            )
        meter.coordinator.reset_history()
        self.meter = meter

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Run-local monitor state for checkpoint/restore.

        Together with the meter payload (which carries the coordinator
        tables, including any online adaptation so far) this is enough
        to resume mid-stream with decisions bit-identical to an
        uninterrupted run.  The bounded decision tail is debug state and
        is not captured.
        """
        return {
            "counters": asdict(self.counters),
            "aggregator": self.aggregator.state_dict(),
            "coordinator": self.meter.coordinator.runtime_state(),
            "pi": [
                {
                    "tier": definition.tier,
                    "yield_metric": definition.yield_metric,
                    "cost_metric": definition.cost_metric,
                    "level": definition.level,
                    "state": tracker.state_dict(),
                }
                for definition, tracker in self._pi_trackers.items()
            ],
            "held_streak": self._held_streak,
            "last_prediction": _prediction_to_dict(self._last_prediction),
        }

    def load_state(self, state: dict) -> None:
        """Restore run-local state captured by :meth:`state_dict`."""
        counters = state["counters"]
        self.counters = MonitorCounters(
            **{k: int(v) for k, v in counters.items()}
        )
        self.aggregator.load_state(state["aggregator"])
        self.meter.coordinator.restore_runtime_state(state["coordinator"])
        restored = {}
        for item in state["pi"]:
            definition = PiDefinition(
                tier=str(item["tier"]),
                yield_metric=str(item["yield_metric"]),
                cost_metric=str(item["cost_metric"]),
                level=str(item["level"]),
            )
            tracker = RunningCorrelation()
            tracker.load_state(item["state"])
            restored[definition] = tracker
        self._pi_trackers = restored
        self._held_streak = int(state["held_streak"])
        self._last_prediction = _prediction_from_dict(
            state["last_prediction"]
        )

    # ------------------------------------------------------------------
    def pi_correlations(self) -> Dict[PiDefinition, float]:
        """Current Corr(PI, throughput) per tracked candidate."""
        return {
            definition: tracker.value
            for definition, tracker in self._pi_trackers.items()
        }

    def best_pi(self) -> Optional[Tuple[PiDefinition, float]]:
        """The candidate with the largest correlation so far (Eq. 2)."""
        correlations = self.pi_correlations()
        if not correlations:
            return None
        definition = max(correlations, key=correlations.get)
        return definition, correlations[definition]

    def scores(self) -> Dict[str, float]:
        """The same score dict :meth:`CoordinatedPredictor.evaluate` returns."""
        c = self.counters
        tpr = c.tp / (c.tp + c.fn) if (c.tp + c.fn) else 1.0
        tnr = c.tn / (c.tn + c.fp) if (c.tn + c.fp) else 1.0
        return {
            "overload_ba": 0.5 * (tpr + tnr),
            "bottleneck_accuracy": (
                c.bottleneck_correct / c.bottleneck_windows
                if c.bottleneck_windows
                else 1.0
            ),
            "tp": float(c.tp),
            "tn": float(c.tn),
            "fp": float(c.fp),
            "fn": float(c.fn),
            "bottleneck_windows": float(c.bottleneck_windows),
        }

    def summary_rows(self) -> List[str]:
        """Human-readable summary of the monitoring session."""
        c = self.counters
        scores = self.scores()
        rows = [
            f"windows seen:        {c.windows} ({c.ticks} ticks)",
            f"confident fraction:  {c.confident_fraction:.3f}",
            f"fallback scheme:     {c.fallback_scheme_uses} windows",
            f"adaptation steps:    {c.adaptation_steps}",
            f"overload BA:         {scores['overload_ba']:.3f}",
            f"bottleneck accuracy: {scores['bottleneck_accuracy']:.3f}",
        ]
        if c.degraded_windows or c.partial_ticks:
            rows.append(
                f"degraded windows:    {c.degraded_windows} "
                f"({c.held_decisions} held, {c.abstained_votes} abstained "
                f"votes, {c.imputed_attributes} imputed attributes)"
            )
            rows.append(f"partial ticks:       {c.partial_ticks}")
        best = self.best_pi()
        if best is not None and self.counters.ticks >= 2:
            definition, corr = best
            rows.append(f"best PI:             {definition.label} (corr {corr:.3f})")
        return rows

"""The paper's primary contribution.

Productivity Index and PI selection (:mod:`~repro.core.pi`), offline
state labelling (:mod:`~repro.core.labeler`), per-(tier, workload)
performance synopses (:mod:`~repro.core.synopsis`), the two-level
coordinated predictor with bottleneck identification
(:mod:`~repro.core.coordinator`), the end-to-end
:class:`~repro.core.capacity.CapacityMeter` façade and the streaming
:class:`~repro.core.monitor.OnlineCapacityMonitor` that runs the whole
loop online in O(window) memory.
"""

from .capacity import CapacityMeter, build_coordinated_instances
from .coordinator import (
    CoordinatedInstance,
    CoordinatedPrediction,
    CoordinatedPredictor,
    Scheme,
)
from .labeler import PiThresholdLabeler, SlaOracle
from .monitor import MonitorCounters, MonitorDecision, OnlineCapacityMonitor
from .pi import (
    DEFAULT_PI_CANDIDATES,
    PiDefinition,
    correlation,
    normalize_to_geometric_mean,
    pi_series,
    select_best_pi,
    throughput_series,
)
from .states import OVERLOAD, UNDERLOAD, SystemState
from .synopsis import PerformanceSynopsis, SynopsisConfig

__all__ = [
    "CapacityMeter",
    "CoordinatedInstance",
    "CoordinatedPrediction",
    "CoordinatedPredictor",
    "DEFAULT_PI_CANDIDATES",
    "MonitorCounters",
    "MonitorDecision",
    "OVERLOAD",
    "OnlineCapacityMonitor",
    "PerformanceSynopsis",
    "PiDefinition",
    "PiThresholdLabeler",
    "Scheme",
    "SlaOracle",
    "SynopsisConfig",
    "SystemState",
    "UNDERLOAD",
    "build_coordinated_instances",
    "correlation",
    "normalize_to_geometric_mean",
    "pi_series",
    "select_best_pi",
    "throughput_series",
]

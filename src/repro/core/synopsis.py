"""Performance synopsis (paper Section II.B).

A synopsis ``SYN({A1..An}, C)`` captures the correlation between a set
of lower-level metrics and the high-level binary state, for one tier
under one workload pattern.  Construction has two parts:

* **attribute selection** — attributes are ranked by information gain
  against the class and added greedily while 10-fold cross-validated
  accuracy improves (Section II.B.2);
* **model induction** — one of the four learners (LR / Naive / SVM /
  TAN) is fitted on the selected attributes.

``Predict(SYN, u*)`` is then a single call with an instance's metric
dict; a :class:`~repro.core.coordinator.CoordinatedPredictor` combines
several synopses into the site-wide decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..learners.base import LearnerFactory, SynopsisLearner, make_learner
from ..obs import OBS
from ..learners.information_gain import rank_attributes
from ..learners.validation import (
    ConfusionMatrix,
    cross_validate_detailed,
    stratified_kfold_indices,
)
from ..telemetry.dataset import Dataset

__all__ = ["SynopsisConfig", "PerformanceSynopsis"]


@dataclass(frozen=True)
class SynopsisConfig:
    """Construction-time knobs for a synopsis.

    ``max_candidates`` caps how many top-ranked attributes forward
    selection will even consider, and ``patience`` stops the scan after
    that many consecutive non-improving additions — both keep the
    10-fold CV loop tractable for expensive learners like the SVM.

    ``min_attributes`` forces at least that many informative,
    non-redundant attributes into the synopsis even when CV accuracy
    saturates earlier.  Within one workload a single throughput-shaped
    counter often separates the classes perfectly, but such rate
    metrics do not transfer to other traffic mixes; keeping a few
    diverse metrics (ratios like IPC or miss rates alongside rates)
    preserves accuracy under the paper's interleaved and unknown
    workloads.  ``redundancy_threshold`` skips candidates whose Pearson
    correlation with an already-selected attribute exceeds it, so the
    forced minimum buys diversity rather than duplicates.

    ``improvement_sigma`` judges a candidate's improvement against the
    fold-to-fold spread of its CV scores: when positive, the required
    improvement is ``max(min_improvement, improvement_sigma * SEM)``
    where SEM is the standard error of the candidate's fold mean.  The
    default 0.0 preserves the historical fixed-threshold rule.
    """

    learner: str = "tan"
    learner_kwargs: Mapping[str, object] = field(default_factory=dict)
    select_attributes: bool = True
    min_attributes: int = 4
    max_attributes: int = 8
    max_candidates: int = 14
    patience: int = 3
    cv_folds: int = 10
    min_improvement: float = 0.002
    improvement_sigma: float = 0.0
    redundancy_threshold: float = 0.98
    seed: int = 0


class PerformanceSynopsis:
    """A trained (tier, workload, level)-specific state model."""

    def __init__(
        self,
        tier: str,
        workload: str,
        level: str,
        config: Optional[SynopsisConfig] = None,
    ):
        self.tier = tier
        self.workload = workload
        self.level = level
        self.config = config if config is not None else SynopsisConfig()
        self.attributes: List[str] = []
        self.ranking: List[tuple] = []
        self.cv_score: float = 0.0
        #: fold-score standard deviation behind :attr:`cv_score`
        self.cv_std: float = 0.0
        #: training-set mean of each selected attribute — the marginal
        #: a degraded-mode prediction imputes a missing counter from
        self.attribute_marginals: Dict[str, float] = {}
        #: majority training label; the vote a coordinated predictor
        #: substitutes when this synopsis abstains with no history
        self.prior_vote: int = 0
        self._learner: Optional[SynopsisLearner] = None
        #: cached metric handles, valid while ``OBS.registry`` is the
        #: same object (transient; never serialized)
        self._obs_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        state = "trained" if self.is_trained else "untrained"
        return (
            f"PerformanceSynopsis({self.tier}/{self.workload}/{self.level}, "
            f"{self.config.learner}, {state})"
        )

    @property
    def is_trained(self) -> bool:
        return self._learner is not None

    def _new_learner(self) -> SynopsisLearner:
        return make_learner(self.config.learner, **dict(self.config.learner_kwargs))

    # ------------------------------------------------------------------
    def train(
        self, dataset: Dataset, *, executor=None
    ) -> "PerformanceSynopsis":
        """Select attributes and induce the model from a dataset.

        ``executor`` (any ``concurrent.futures.Executor``) fans the
        cross-validation folds of forward selection out over workers;
        results are merged in fold order, so the selection — and the
        final model — is bit-identical to a serial run.
        """
        if len(dataset) == 0:
            raise ValueError("cannot train a synopsis on an empty dataset")
        cfg = self.config
        y = dataset.labels()
        names = dataset.attribute_names
        X_full = dataset.matrix(names)
        self.ranking = rank_attributes(X_full, y, names)

        if not cfg.select_attributes or len(np.unique(y)) < 2:
            self.attributes = list(names)
        else:
            self.attributes = self._forward_select(
                dataset, y, executor=executor
            )

        X = dataset.matrix(self.attributes)
        self.attribute_marginals = {
            name: float(value)
            for name, value in zip(self.attributes, X.mean(axis=0))
        }
        self.prior_vote = int(np.mean(y) > 0.5)
        self._learner = self._new_learner().fit(X, y)
        return self

    def _forward_select(
        self, dataset: Dataset, y: np.ndarray, *, executor=None
    ) -> List[str]:
        """Greedy info-gain-ordered forward selection with CV scoring.

        Candidates are visited in decreasing information gain; a
        candidate nearly collinear with an already-selected attribute
        is skipped.  A candidate is kept when it improves the 10-fold
        CV balanced accuracy, or unconditionally while fewer than
        ``min_attributes`` diverse attributes have been accepted.

        The stratified folds depend only on ``y``/``cv_folds``/``seed``,
        so they are computed once and shared across every candidate
        instead of re-splitting up to ``max_candidates`` times.
        """
        cfg = self.config
        candidates = [
            name for name, gain in self.ranking[: cfg.max_candidates] if gain > 0
        ]
        if not candidates:
            # nothing informative: keep the single best-ranked attribute
            return [self.ranking[0][0]]
        columns = {
            name: dataset.matrix([name])[:, 0] for name in candidates
        }
        folds = list(
            stratified_kfold_indices(y, k=cfg.cv_folds, seed=cfg.seed)
        )
        factory = LearnerFactory(cfg.learner, dict(cfg.learner_kwargs))
        selected: List[str] = []
        best_score = 0.0
        best_std = 0.0
        misses = 0
        for name in candidates:
            if len(selected) >= cfg.max_attributes:
                break
            if self._redundant(columns[name], [columns[s] for s in selected]):
                continue
            trial = selected + [name]
            X = dataset.matrix(trial)
            result = cross_validate_detailed(
                factory,
                X,
                y,
                k=cfg.cv_folds,
                seed=cfg.seed,
                folds=folds,
                executor=executor,
            )
            score = result.mean
            required = cfg.min_improvement
            if cfg.improvement_sigma > 0.0:
                required = max(required, cfg.improvement_sigma * result.sem)
            forced = len(selected) < cfg.min_attributes
            if score > best_score + required or forced:
                selected = trial
                if score > best_score:
                    best_score = score
                    best_std = result.std
                misses = 0
            else:
                misses += 1
                if misses >= cfg.patience:
                    break
        self.cv_score = best_score
        self.cv_std = best_std
        return selected

    def _redundant(
        self, column: np.ndarray, chosen: List[np.ndarray]
    ) -> bool:
        """Is ``column`` nearly collinear with any selected column?"""
        threshold = self.config.redundancy_threshold
        std = column.std()
        if std == 0:
            return bool(chosen)  # a constant adds nothing after the first
        for other in chosen:
            other_std = other.std()
            if other_std == 0:
                continue
            corr = abs(
                ((column - column.mean()) * (other - other.mean())).mean()
                / (std * other_std)
            )
            if corr > threshold:
                return True
        return False

    # ------------------------------------------------------------------
    def predict(self, metrics: Mapping[str, float]) -> int:
        """``Predict(SYN, u*)`` for one interval's metric dict."""
        if not self.is_trained:
            raise RuntimeError("synopsis is not trained")
        x = np.array([metrics[a] for a in self.attributes], dtype=float)
        return self._learner.predict_one(x)

    def predict_degraded(
        self,
        metrics: Optional[Mapping[str, float]],
        *,
        max_imputed: Optional[int] = None,
    ) -> Tuple[Optional[int], int]:
        """Degraded-telemetry ``Predict``: ``(vote, n_imputed)``.

        ``metrics`` may be ``None`` (the tier's collector was silent all
        window) or missing selected attributes (counter dropout).  Up to
        ``max_imputed`` missing attributes are imputed from the training
        marginals (:attr:`attribute_marginals`); beyond that — or when
        the tier is entirely absent, no marginals were recorded, or
        *every* selected attribute is missing — the synopsis abstains
        (``vote is None``).  A complete metric dict takes exactly the
        :meth:`predict` path, so clean telemetry is unaffected.
        """
        if not self.is_trained:
            raise RuntimeError("synopsis is not trained")
        if metrics is None:
            if OBS.enabled:
                self._count_vote("abstained")
            return None, 0
        missing = [a for a in self.attributes if a not in metrics]
        if not missing:
            if OBS.enabled:
                self._count_vote("clean")
            return self.predict(metrics), 0
        limit = len(self.attributes) - 1 if max_imputed is None else max_imputed
        if (
            not self.attribute_marginals
            or len(missing) > limit
            or len(missing) >= len(self.attributes)
        ):
            if OBS.enabled:
                self._count_vote("abstained")
            return None, len(missing)
        x = np.array(
            [
                metrics.get(a, self.attribute_marginals.get(a, 0.0))
                for a in self.attributes
            ],
            dtype=float,
        )
        if OBS.enabled:
            self._count_vote("imputed")
            # _count_vote just refreshed the handle cache
            self._obs_cache[2].inc(float(len(missing)))
        return self._learner.predict_one(x), len(missing)

    def _count_vote(self, outcome: str) -> None:
        """Record one degraded-path vote outcome (enabled path only).

        Handles are cached per registry object so the per-window cost
        is one dict probe and a float add, not a get-or-create walk.
        """
        cache = self._obs_cache
        if cache is None or cache[0] is not OBS.registry:
            registry = OBS.registry
            cache = self._obs_cache = (
                registry,
                {
                    o: registry.counter(
                        "repro_synopsis_votes_total",
                        help="degraded-path synopsis votes by outcome "
                        "(clean/imputed/abstained)",
                        tier=self.tier,
                        outcome=o,
                    )
                    for o in ("clean", "imputed", "abstained")
                },
                registry.counter(
                    "repro_synopsis_imputed_attributes_total",
                    help="attribute values filled from training marginals",
                    tier=self.tier,
                ),
            )
        cache[1][outcome].inc()

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Vectorized ``Predict(SYN, ·)`` over a prepared matrix.

        ``X`` must be ``(n_windows, len(self.attributes))`` with columns
        in ``self.attributes`` order (as produced by
        ``Dataset.matrix(synopsis.attributes)``); the learners' matrix
        ``predict`` runs once over all rows instead of per-dict calls.
        """
        if not self.is_trained:
            raise RuntimeError("synopsis is not trained")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.attributes):
            raise ValueError(
                f"expected a (n, {len(self.attributes)}) matrix over "
                f"attributes {self.attributes}, got shape {X.shape}"
            )
        return self._learner.predict(X)

    def predict_dataset(self, dataset: Dataset) -> np.ndarray:
        """Batch prediction over a dataset with this synopsis' schema."""
        if not self.is_trained:
            raise RuntimeError("synopsis is not trained")
        return self.predict_batch(dataset.matrix(self.attributes))

    def evaluate(self, dataset: Dataset) -> ConfusionMatrix:
        """Confusion matrix of this synopsis on a labelled dataset."""
        pred = self.predict_dataset(dataset)
        return ConfusionMatrix.from_predictions(dataset.labels(), pred)

    def balanced_accuracy(self, dataset: Dataset) -> float:
        """The paper's BA metric on a labelled dataset."""
        return self.evaluate(dataset).balanced_accuracy

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of this (possibly trained) synopsis."""
        payload: Dict[str, object] = {
            "tier": self.tier,
            "workload": self.workload,
            "level": self.level,
            "config": {
                "learner": self.config.learner,
                "learner_kwargs": dict(self.config.learner_kwargs),
                "select_attributes": self.config.select_attributes,
                "min_attributes": self.config.min_attributes,
                "max_attributes": self.config.max_attributes,
                "max_candidates": self.config.max_candidates,
                "patience": self.config.patience,
                "cv_folds": self.config.cv_folds,
                "min_improvement": self.config.min_improvement,
                "improvement_sigma": self.config.improvement_sigma,
                "redundancy_threshold": self.config.redundancy_threshold,
                "seed": self.config.seed,
            },
            "attributes": list(self.attributes),
            "ranking": [[name, gain] for name, gain in self.ranking],
            "cv_score": self.cv_score,
            "cv_std": self.cv_std,
            "marginals": dict(self.attribute_marginals),
            "prior_vote": self.prior_vote,
        }
        if self.is_trained:
            payload["model"] = self._learner.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PerformanceSynopsis":
        """Rebuild a synopsis serialized by :meth:`to_dict`."""
        from ..learners.base import SynopsisLearner

        config = SynopsisConfig(**payload["config"])
        synopsis = cls(
            tier=str(payload["tier"]),
            workload=str(payload["workload"]),
            level=str(payload["level"]),
            config=config,
        )
        synopsis.attributes = list(payload.get("attributes", []))
        synopsis.ranking = [
            (name, float(gain)) for name, gain in payload.get("ranking", [])
        ]
        synopsis.cv_score = float(payload.get("cv_score", 0.0))
        synopsis.cv_std = float(payload.get("cv_std", 0.0))
        synopsis.attribute_marginals = {
            str(name): float(value)
            for name, value in payload.get("marginals", {}).items()
        }
        synopsis.prior_vote = int(payload.get("prior_vote", 0))
        if "model" in payload:
            synopsis._learner = SynopsisLearner.from_dict(payload["model"])
        return synopsis

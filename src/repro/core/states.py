"""System-state vocabulary.

The paper's class variable is binary: a server (or the whole site) is
either **underloaded** (0) or **overloaded** (1).  Saturation — the
knee between the two — is not a separate class; instances near it are
the intrinsically hard ones for every predictor.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["SystemState", "UNDERLOAD", "OVERLOAD"]

UNDERLOAD = 0
OVERLOAD = 1


class SystemState(IntEnum):
    """Binary high-level system state (the class variable C)."""

    UNDERLOAD = UNDERLOAD
    OVERLOAD = OVERLOAD

    @property
    def is_overloaded(self) -> bool:
        return self is SystemState.OVERLOAD

    @classmethod
    def from_label(cls, label: int) -> "SystemState":
        if label not in (UNDERLOAD, OVERLOAD):
            raise ValueError(f"invalid state label {label!r}")
        return cls(label)

"""Measurement-based admission control driven by the capacity meter.

The paper motivates online capacity measurement with exactly this use
case (Section I): "knowledge about the server capacity can help a
measurement-based admission controller in the front-end to regulate
the input traffic rate so as to prevent the server from running in an
overloaded state."

:class:`OnlineCapacityMonitor` turns the offline-trained
:class:`~repro.core.capacity.CapacityMeter` into a live signal: it
samples the website every second, aggregates the paper's 30-sample
windows on the fly, and emits a coordinated prediction per window.

:class:`AdmissionController` closes the loop with the classic
AIMD policy: on a predicted overload the admission probability is cut
multiplicatively; while the site is predicted healthy it recovers
additively.  Rejected requests are turned away immediately — the
cheapest possible failure mode compared to queueing them into a
collapsing server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core.capacity import CapacityMeter
from ..core.coordinator import CoordinatedPrediction
from ..simulator.engine import Simulator
from ..simulator.website import CompletedRequest, MultiTierWebsite, Request
from ..telemetry.sampler import TelemetrySampler

__all__ = ["OnlineCapacityMonitor", "AdmissionController", "AdmissionStats"]


class OnlineCapacityMonitor:
    """Streams live telemetry into per-window coordinated predictions."""

    def __init__(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        meter: CapacityMeter,
        *,
        interval: float = 1.0,
        on_prediction: Optional[Callable[[CoordinatedPrediction], None]] = None,
        seed: int = 0,
    ):
        if not meter.is_trained:
            raise ValueError("the capacity meter must be trained first")
        self.sim = sim
        self.meter = meter
        self.on_prediction = on_prediction
        self.predictions = 0
        self.last_prediction: Optional[CoordinatedPrediction] = None
        self._sampler = TelemetrySampler(
            sim, website, workload="online", interval=interval, seed=seed
        )
        self._next_window_start = 0
        self._timer = sim.every(interval, self._maybe_predict)

    def stop(self) -> None:
        self._timer.cancel()
        self._sampler.stop()

    # ------------------------------------------------------------------
    def _maybe_predict(self) -> None:
        records = self._sampler.run.records
        window = self.meter.window
        if len(records) - self._next_window_start < window:
            return
        chunk = records[self._next_window_start : self._next_window_start + window]
        self._next_window_start += window
        metrics: Dict[str, Dict[str, float]] = {}
        for tier in self.meter.tiers:
            dicts = [r.metrics(self.meter.level, tier) for r in chunk]
            metrics[tier] = {
                name: sum(d[name] for d in dicts) / len(dicts)
                for name in dicts[0]
            }
        prediction = self.meter.predict_window(metrics)
        self.predictions += 1
        self.last_prediction = prediction
        if self.on_prediction is not None:
            self.on_prediction(prediction)


@dataclass
class AdmissionStats:
    """Counters of the admission controller's decisions."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    overload_signals: int = 0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


class AdmissionController:
    """AIMD front-end gate driven by coordinated overload predictions.

    Exposes the same ``submit`` signature as
    :class:`~repro.simulator.website.MultiTierWebsite`, so an RBE can
    drive it directly in place of the website.
    """

    def __init__(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        meter: CapacityMeter,
        *,
        interval: float = 1.0,
        decrease_factor: float = 0.65,
        increase_step: float = 0.05,
        min_admission: float = 0.05,
        seed: int = 0,
    ):
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if increase_step <= 0:
            raise ValueError("increase_step must be positive")
        if not 0.0 < min_admission <= 1.0:
            raise ValueError("min_admission must be in (0, 1]")
        self.sim = sim
        self.website = website
        self.meter = meter
        self.decrease_factor = decrease_factor
        self.increase_step = increase_step
        self.min_admission = min_admission
        self.admission_probability = 1.0
        self.stats = AdmissionStats()
        self._rng = np.random.default_rng(seed)
        self.monitor = OnlineCapacityMonitor(
            sim,
            website,
            meter,
            interval=interval,
            on_prediction=self._on_prediction,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def _on_prediction(self, prediction: CoordinatedPrediction) -> None:
        if prediction.overloaded:
            self.stats.overload_signals += 1
            self.admission_probability = max(
                self.min_admission,
                self.admission_probability * self.decrease_factor,
            )
        else:
            self.admission_probability = min(
                1.0, self.admission_probability + self.increase_step
            )

    def submit(
        self,
        request: Request,
        on_complete: Callable[[CompletedRequest], None],
    ) -> None:
        """Admit or reject one request, then forward to the website."""
        self.stats.offered += 1
        if self._rng.uniform() > self.admission_probability:
            self.stats.rejected += 1
            on_complete(
                CompletedRequest(
                    request=request,
                    submit_time=self.sim.now,
                    finish_time=self.sim.now,
                    dropped=True,
                )
            )
            return
        self.stats.admitted += 1
        self.website.submit(request, on_complete)

    def stop(self) -> None:
        self.monitor.stop()

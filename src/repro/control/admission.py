"""Measurement-based admission control driven by the capacity meter.

The paper motivates online capacity measurement with exactly this use
case (Section I): "knowledge about the server capacity can help a
measurement-based admission controller in the front-end to regulate
the input traffic rate so as to prevent the server from running in an
overloaded state."

The sensing path is the canonical
:class:`~repro.core.monitor.OnlineCapacityMonitor` — the same hardened
implementation behind the ``repro monitor`` CLI: lenient streaming
aggregation, synopsis imputation/abstention, coordinator quorum voting
and hold-last-decision fallback.  There is deliberately no second
monitor here; the controller is a *consumer* of
:class:`~repro.core.monitor.MonitorDecision`.

:class:`AimdGate` closes the loop with the classic AIMD policy: on a
predicted overload the admission probability is cut multiplicatively;
while the site is predicted healthy it recovers additively.  A decision
whose telemetry confidence falls below ``confidence_floor`` — a held
quorum failure re-emitting stale state, or a vote built mostly from
substituted bits — moves the probability *nowhere*: blind recovery
during a telemetry blackout is how a collapsing site gets re-flooded,
and blind shedding on a stale overload vote starves it.  Rejected
requests are turned away immediately — the cheapest possible failure
mode compared to queueing them into a collapsing server.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

import numpy as np

from ..core.capacity import CapacityMeter
from ..core.monitor import MonitorDecision, OnlineCapacityMonitor
from ..obs import OBS
from ..obs.registry import Counter, Gauge, MetricsRegistry
from ..simulator.engine import Simulator
from ..simulator.website import CompletedRequest, MultiTierWebsite, Request
from ..telemetry.sampler import TelemetrySampler, WindowStats

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AimdGate",
    "GatedFrontEnd",
]

_ObsHandles = Tuple[MetricsRegistry, Gauge, Counter, Counter, Counter, Counter]


@dataclass
class AdmissionStats:
    """Counters of one gate's admission decisions."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    overload_signals: int = 0
    #: decisions whose telemetry confidence was below the floor, so the
    #: admission probability was held steady instead of moved
    low_confidence_holds: int = 0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


class AimdGate:
    """AIMD admission probability driven by monitor decisions.

    :meth:`update` consumes one
    :class:`~repro.core.monitor.MonitorDecision` per window;
    :meth:`admit` draws one Bernoulli admission decision per request.
    The two are deliberately decoupled from any particular front end so
    the single-site :class:`AdmissionController` and the multi-site
    :class:`~repro.control.service.CapacityService` share one audited
    actuation path.

    ``confidence_floor`` guards both AIMD directions against degraded
    telemetry: a decision with
    :attr:`~repro.core.monitor.MonitorDecision.confidence` below the
    floor holds the probability steady.  Clean-stream decisions carry
    confidence 1.0, so a zero-fault run is bit-identical to a gate
    without the floor.
    """

    def __init__(
        self,
        *,
        decrease_factor: float = 0.65,
        increase_step: float = 0.05,
        min_admission: float = 0.05,
        confidence_floor: float = 0.75,
        seed: Union[int, np.random.SeedSequence] = 0,
        site: str = "default",
    ) -> None:
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if increase_step <= 0:
            raise ValueError("increase_step must be positive")
        if not 0.0 < min_admission <= 1.0:
            raise ValueError("min_admission must be in (0, 1]")
        if not 0.0 <= confidence_floor <= 1.0:
            raise ValueError("confidence_floor must be in [0, 1]")
        self.decrease_factor = decrease_factor
        self.increase_step = increase_step
        self.min_admission = min_admission
        self.confidence_floor = confidence_floor
        self.site = site
        self.admission_probability = 1.0
        self.stats = AdmissionStats()
        self._rng = np.random.default_rng(seed)
        # cached metric handles, valid while OBS.registry is the same
        # object (transient; excluded from checkpoint state)
        self._obs_cache: Optional[_ObsHandles] = None

    # ------------------------------------------------------------------
    def update(self, decision: MonitorDecision) -> None:
        """Fold one per-window decision into the admission probability."""
        held = decision.confidence < self.confidence_floor
        if held:
            self.stats.low_confidence_holds += 1
        elif decision.prediction.overloaded:
            self.stats.overload_signals += 1
            self.admission_probability = max(
                self.min_admission,
                self.admission_probability * self.decrease_factor,
            )
        else:
            self.admission_probability = min(
                1.0, self.admission_probability + self.increase_step
            )
        if OBS.enabled:
            handles = self._handles()
            handles[1].set(self.admission_probability)
            if held:
                handles[5].inc()
            elif decision.prediction.overloaded:
                handles[4].inc()

    @staticmethod
    def update_many(
        gates: Sequence["AimdGate"],
        decisions: Sequence[MonitorDecision],
    ) -> None:
        """Fold one decision into each of N aligned gates, vectorized.

        The fleet-scale service drives all sites' AIMD moves from one
        numpy pass instead of N Python ``update`` calls.  The
        elementwise ``where/maximum/minimum`` arithmetic is bit-identical
        to the scalar ``max``/``min`` updates, and the per-gate counters
        are applied from the same masks, so a gate cannot tell which
        path moved it.  Each gate must appear at most once per call
        (its probability is read once); with observability enabled this
        falls back to sequential updates so the per-site metric
        side-effects stay exact.
        """
        if OBS.enabled or len(gates) <= 1:
            for gate, decision in zip(gates, decisions):
                gate.update(decision)
            return
        confidence = np.array([d.confidence for d in decisions])
        overloaded = np.array(
            [d.prediction.overloaded for d in decisions]
        )
        probability = np.array(
            [gate.admission_probability for gate in gates]
        )
        floor = np.array([gate.confidence_floor for gate in gates])
        decrease = np.array([gate.decrease_factor for gate in gates])
        step = np.array([gate.increase_step for gate in gates])
        min_admission = np.array([gate.min_admission for gate in gates])
        held = confidence < floor
        moved = np.where(
            ~held & overloaded,
            np.maximum(min_admission, probability * decrease),
            np.where(
                ~held & ~overloaded,
                np.minimum(1.0, probability + step),
                probability,
            ),
        )
        for i, gate in enumerate(gates):
            if held[i]:
                gate.stats.low_confidence_holds += 1
            elif overloaded[i]:
                gate.stats.overload_signals += 1
            gate.admission_probability = float(moved[i])

    def admit(self) -> bool:
        """Draw one admission decision at the current probability."""
        self.stats.offered += 1
        if self._rng.uniform() > self.admission_probability:
            self.stats.rejected += 1
            if OBS.enabled:
                self._handles()[3].inc()
            return False
        self.stats.admitted += 1
        if OBS.enabled:
            self._handles()[2].inc()
        return True

    # ------------------------------------------------------------------
    def _handles(self) -> _ObsHandles:
        cache = self._obs_cache
        if cache is None or cache[0] is not OBS.registry:
            registry = OBS.registry
            cache = self._obs_cache = (
                registry,
                registry.gauge(
                    "repro_admission_probability",
                    help="current AIMD admission probability, by site",
                    site=self.site,
                ),
                registry.counter(
                    "repro_admission_requests_total",
                    help="front-end admission outcomes, by site",
                    site=self.site,
                    outcome="admitted",
                ),
                registry.counter(
                    "repro_admission_requests_total",
                    help="front-end admission outcomes, by site",
                    site=self.site,
                    outcome="rejected",
                ),
                registry.counter(
                    "repro_admission_overload_signals_total",
                    help="monitor overload decisions acted on by the "
                    "AIMD gate, by site",
                    site=self.site,
                ),
                registry.counter(
                    "repro_admission_low_confidence_holds_total",
                    help="decisions below the confidence floor that "
                    "held the admission probability, by site",
                    site=self.site,
                ),
            )
        return cache

    # ------------------------------------------------------------------
    # checkpointing (used by the multi-site CapacityService)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Run-local gate state, JSON-serializable."""
        return {
            "admission_probability": self.admission_probability,
            "stats": asdict(self.stats),
            "rng": self._rng.bit_generator.state,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore the state captured by :meth:`state_dict`."""
        self.admission_probability = float(state["admission_probability"])
        self.stats = AdmissionStats(
            **{k: int(v) for k, v in state["stats"].items()}
        )
        self._rng.bit_generator.state = cast(Dict[str, Any], state["rng"])


class GatedFrontEnd:
    """Website-shaped ``submit`` that asks an :class:`AimdGate` first.

    Exposes the same ``submit`` signature as
    :class:`~repro.simulator.website.MultiTierWebsite`, so an RBE or
    open-loop source can drive it directly in place of the website.
    Rejections complete immediately as drops.
    """

    def __init__(
        self, sim: Simulator, gate: AimdGate, website: MultiTierWebsite
    ) -> None:
        self.sim = sim
        self.gate = gate
        self.website = website

    def submit(
        self,
        request: Request,
        on_complete: Callable[[CompletedRequest], None],
    ) -> None:
        """Admit or reject one request, then forward to the website."""
        if not self.gate.admit():
            on_complete(
                CompletedRequest(
                    request=request,
                    submit_time=self.sim.now,
                    finish_time=self.sim.now,
                    dropped=True,
                )
            )
            return
        self.website.submit(request, on_complete)


class AdmissionController:
    """Single-site closed loop: canonical monitor + AIMD front-end gate.

    Wires one :class:`~repro.core.monitor.OnlineCapacityMonitor`
    (sampling ``website`` every ``interval`` seconds) to one
    :class:`AimdGate`, and exposes the website's ``submit`` signature so
    an RBE can drive it directly in place of the website.

    The meter must carry a labeler (pipeline-trained and CLI-loaded
    meters do) unless one is passed explicitly — the hardened monitor
    scores every window against ground truth.
    """

    def __init__(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        meter: CapacityMeter,
        *,
        interval: float = 1.0,
        decrease_factor: float = 0.65,
        increase_step: float = 0.05,
        min_admission: float = 0.05,
        confidence_floor: float = 0.75,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        seed: int = 0,
        site: str = "default",
    ) -> None:
        self.sim = sim
        self.website = website
        self.meter = meter
        self.gate = AimdGate(
            decrease_factor=decrease_factor,
            increase_step=increase_step,
            min_admission=min_admission,
            confidence_floor=confidence_floor,
            seed=seed,
            site=site,
        )
        self._front_end = GatedFrontEnd(sim, self.gate, website)
        self.monitor = OnlineCapacityMonitor(
            meter,
            labeler=labeler,
            retain_decisions=0,
            on_decision=self._on_decision,
        )
        self._sampler: TelemetrySampler = self.monitor.attach(
            sim, website, workload="online", interval=interval, seed=seed
        )

    # ------------------------------------------------------------------
    @property
    def admission_probability(self) -> float:
        return self.gate.admission_probability

    @admission_probability.setter
    def admission_probability(self, value: float) -> None:
        self.gate.admission_probability = value

    @property
    def stats(self) -> AdmissionStats:
        return self.gate.stats

    # ------------------------------------------------------------------
    def _on_decision(self, decision: MonitorDecision) -> None:
        self.gate.update(decision)

    def submit(
        self,
        request: Request,
        on_complete: Callable[[CompletedRequest], None],
    ) -> None:
        """Admit or reject one request, then forward to the website."""
        self._front_end.submit(request, on_complete)

    def stop(self) -> None:
        self._sampler.stop()

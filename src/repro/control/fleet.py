"""Structure-of-arrays fleet backend for the multi-site service.

PR 5's :class:`~repro.control.service.CapacityService` keeps a full
Python monitor clone per site and loops site-by-site for everything
except the one batched synopsis call; at fleet scale (1k+ sites) the
interpreter loop, not the hardware, bounds throughput.
:class:`FleetState` removes that bound without forking the code path:

* Every site's coordinator tables are stacked into shared
  structure-of-arrays blocks — LHT ``(S, patterns, histories)``, GPT
  ``(S, patterns)``, history registers ``(S, patterns)`` and BPT
  ``(S, patterns, tiers)`` — and each
  :class:`~repro.core.coordinator.CoordinatedPredictor` re-points its
  tables at basic-slice *views* of its shard
  (:meth:`~repro.core.coordinator.CoordinatedPredictor.adopt_tables`).
  The per-site code path therefore reads and writes the same memory the
  vectorized path does: degraded windows can drop to the existing
  per-site quorum path mid-stream and the two stay bit-identical by
  construction.

* The clean-window decide path (:meth:`decide_clean`) replays the exact
  GPT/LHT/BPT arithmetic of
  :meth:`~repro.core.coordinator.CoordinatedPredictor.predict_votes`
  followed by
  :meth:`~repro.core.coordinator.CoordinatedPredictor.observe`
  elementwise across all sites in one numpy pass — identical IEEE
  operations in identical per-site order, so every decision is
  bit-for-bit the one the scalar path produces.

* Per-tick fold work is shared through
  :meth:`~repro.telemetry.streaming.StreamingWindowAggregator.prepare`
  (one row extraction per distinct record object, not per site) and the
  PI correlation moments live in one ``(S, definitions, 8)`` Welford
  array updated vectorized (:meth:`fold_group`); each monitor's
  trackers become :class:`_PiTrackerView` objects over that array so
  the scalar fallback path shares the same state.

* Sites whose fold state is bit-identical — same records folded from
  the same start, the entire fleet on a clean stream — form a *cohort*
  that folds through one representative aggregator; an emitted window
  is shared by every member (identical values by construction), and
  members materialize real copies of the state only where sharing ends
  (a fault delivers a diverging record, instrumentation or live-mode
  sampling needs per-site folds, or a checkpoint/state read requires
  every monitor to stand alone — :meth:`sync` / :meth:`dissolve`).

Bit-identity with the per-site path is the hard constraint throughout
and is pinned by ``tests/test_fleet.py`` the same way ``batch_votes``
parity is pinned in ``tests/test_service.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coordinator import CoordinatedPrediction, Scheme
from ..core.monitor import MonitorDecision, OnlineCapacityMonitor
from ..telemetry.dataset import OVERLOAD, UNDERLOAD
from ..telemetry.sampler import IntervalRecord
from ..telemetry.streaming import StreamingWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from ..drift.handle import MeterHandle
    from .service import SiteRuntime

__all__ = ["FleetState"]

#: field order of one PI tracker's row in the stacked moment array
_PI_FIELDS = (
    "n",
    "mean_x",
    "mean_y",
    "m2_x",
    "m2_y",
    "cov",
    "max_abs_x",
    "max_abs_y",
)


class _PiTrackerView:
    """:class:`~repro.telemetry.streaming.RunningCorrelation` over one
    ``(site, definition)`` row of the fleet's stacked moment array.

    Same update arithmetic in the same order, same ``state_dict``
    schema; scalar updates (the per-site fallback fold) and the fleet's
    vectorized group update therefore interleave freely on shared
    state without ever diverging from a plain tracker.
    """

    __slots__ = ("_row",)

    def __init__(self, row: np.ndarray) -> None:
        self._row = row  # shape (8,) view

    @property
    def n(self) -> int:
        return int(self._row[0])

    def update(self, x: float, y: float) -> None:
        row = self._row
        n = row[0] + 1.0
        row[0] = n
        dx = x - row[1]
        row[1] += dx / n
        row[3] += dx * (x - row[1])
        dy = y - row[2]
        row[2] += dy / n
        # co-moment uses the pre-update x delta and post-update y mean
        row[5] += dx * (y - row[2])
        row[4] += dy * (y - row[2])
        if abs(x) > row[6]:
            row[6] = abs(x)
        if abs(y) > row[7]:
            row[7] = abs(y)

    @property
    def value(self) -> float:
        row = self._row
        n = row[0]
        if n < 2:
            return 0.0
        sx = (row[3] / n) ** 0.5
        sy = (row[4] / n) ** 0.5
        tol_x = 1e-12 * max(1.0, row[6])
        tol_y = 1e-12 * max(1.0, row[7])
        if sx <= tol_x or sy <= tol_y:
            return 0.0
        return float((row[5] / n) / (sx * sy))

    def state_dict(self) -> Dict[str, float]:
        row = self._row
        state = {
            name: float(row[k]) for k, name in enumerate(_PI_FIELDS)
        }
        state["n"] = int(row[0])
        return state

    def load_state(self, state: Dict[str, float]) -> None:
        for k, name in enumerate(_PI_FIELDS):
            self._row[k] = float(state[name])


class FleetState:
    """Shared structure-of-arrays state for a homogeneous monitor fleet.

    ``monitors`` are the service's per-site clones (one trained meter,
    N clones); their coordinator parameters, adaptation flags and PI
    definitions must be homogeneous — the stacked tables assume one
    shared decision function.  Construction re-points every
    coordinator's tables and every monitor's PI trackers at views of
    the stacked arrays; from then on either path may touch any site.

    ``handle`` is the service's versioned
    :class:`~repro.drift.MeterHandle`.  The stacked tables are built
    from (and viewed by) whatever meter generation the monitors carry
    at construction; a hot-swap *replaces* the fleet — the service
    rebuilds ``FleetState`` over the freshly swapped monitors, exactly
    as ``resume()`` rebuilds it over restored ones — so the handle's
    version identifies which meter generation this fleet's arrays
    belong to.
    """

    def __init__(
        self,
        monitors: Sequence[OnlineCapacityMonitor],
        *,
        handle: Optional["MeterHandle"] = None,
    ) -> None:
        if not monitors:
            raise ValueError("FleetState needs at least one monitor")
        self.handle = handle
        self.monitors = list(monitors)
        coords = [m.meter.coordinator for m in self.monitors]
        ref = coords[0]
        signature = (
            ref.history_bits,
            ref.delta,
            ref.scheme,
            ref.counter_limit,
            ref.pattern_fallback,
            ref.pattern_counter_limit,
            tuple(ref.tiers),
            ref.n_synopses,
        )
        for coordinator in coords[1:]:
            other = (
                coordinator.history_bits,
                coordinator.delta,
                coordinator.scheme,
                coordinator.counter_limit,
                coordinator.pattern_fallback,
                coordinator.pattern_counter_limit,
                tuple(coordinator.tiers),
                coordinator.n_synopses,
            )
            if other != signature:
                raise ValueError(
                    "fleet coordinators must share parameters; got "
                    f"{other} vs {signature}"
                )
        adapt_flags = {m.adapt for m in self.monitors}
        if len(adapt_flags) != 1:
            raise ValueError("fleet monitors must share the adapt flag")
        self._adapt = adapt_flags.pop()
        self._delta = ref.delta
        self._counter_limit = ref.counter_limit
        self._pattern_fallback = ref.pattern_fallback
        self._pattern_counter_limit = ref.pattern_counter_limit
        self._fallback_state = (
            UNDERLOAD if ref.scheme is Scheme.OPTIMISTIC else OVERLOAD
        )
        self._mask = (1 << ref.history_bits) - 1
        self._bits = 1 << np.arange(ref.n_synopses, dtype=np.int64)
        self._tiers = list(ref.tiers)
        self._tier_index = {tier: k for k, tier in enumerate(self._tiers)}
        # BPT adaptation adds exactly one ±1.0 per cell (the per-site
        # loop's `+= 1.0 if tier == bottleneck else -1.0`); a
        # precomputed delta row per bottleneck keeps the float ops
        # identical — never "-1 everywhere then +2 on the winner"
        n_tiers = len(self._tiers)
        self._bpt_delta = np.full((n_tiers, n_tiers), -1.0)
        np.fill_diagonal(self._bpt_delta, 1.0)

        # ---- stack the coordinator tables and hand back views -------
        # (intra-package reach into CoordinatedPredictor's tables: the
        # adopt_tables contract is exactly this handshake)
        self.lht = np.stack([c._lht for c in coords])
        self.gpt = np.stack([c._gpt for c in coords])
        self.bpt = np.stack([c._bpt for c in coords])
        self.history = np.stack([c._history for c in coords])
        for i, coordinator in enumerate(coords):
            coordinator.adopt_tables(
                self.lht[i], self.gpt[i], self.bpt[i], self.history[i]
            )

        # ---- stack the PI tracker moments and hand back views -------
        items = self.monitors[0].pi_tracker_items()
        self.pi_definitions = [definition for definition, _ in items]
        for monitor in self.monitors[1:]:
            defs = [d for d, _ in monitor.pi_tracker_items()]
            if defs != self.pi_definitions:
                raise ValueError(
                    "fleet monitors must track identical PI definitions"
                )
        n_defs = len(self.pi_definitions)
        self.pi = np.zeros((len(self.monitors), n_defs, len(_PI_FIELDS)))
        for i, monitor in enumerate(self.monitors):
            trackers = {}
            for d, (definition, tracker) in enumerate(
                monitor.pi_tracker_items()
            ):
                state = tracker.state_dict()
                for k, name in enumerate(_PI_FIELDS):
                    self.pi[i, d, k] = float(state[name])
                trackers[definition] = _PiTrackerView(self.pi[i, d])
            if trackers:
                monitor.adopt_pi_trackers(trackers)

        # ---- fold cohorts -------------------------------------------
        # Sites whose fold state is bit-identical (same records folded
        # from the same start) share one *representative* whose
        # aggregator actually folds; the other members are materialized
        # from it lazily (:meth:`sync`, cohort splits, slow-path folds).
        # Only still-fresh monitors can be pooled up front — resumed
        # fleets start as singletons and simply fold per site.
        n = len(self.monitors)
        self._cohort: List[int] = list(range(n))
        self._members: Dict[int, List[int]] = {i: [i] for i in range(n)}
        self._rep: Dict[int, int] = {i: i for i in range(n)}
        self._next_cid = n
        self._flat = True
        fresh: Dict[tuple, List[int]] = {}
        for i, monitor in enumerate(self.monitors):
            aggregator = monitor.aggregator
            if (
                monitor.counters.ticks
                or aggregator.ticks_seen
                or aggregator.windows_emitted
                or aggregator._fill
                or aggregator._acc
            ):
                continue
            key = (
                aggregator.window,
                aggregator.level,
                tuple(aggregator.tiers),
                aggregator.lenient,
                aggregator.recent.maxlen,
            )
            fresh.setdefault(key, []).append(i)
        for indices in fresh.values():
            if len(indices) < 2:
                continue
            cid = self._next_cid
            self._next_cid += 1
            for i in indices:
                del self._members[self._cohort[i]]
                del self._rep[self._cohort[i]]
                self._cohort[i] = cid
            self._members[cid] = list(indices)
            self._rep[cid] = indices[0]
            self._flat = False

    # ------------------------------------------------------------------
    @property
    def n_sites(self) -> int:
        return len(self.monitors)

    @property
    def meter_version(self) -> int:
        """The meter generation these stacked tables were built from."""
        return self.handle.version if self.handle is not None else 1

    # ------------------------------------------------------------------
    # cohort bookkeeping
    # ------------------------------------------------------------------
    def _copy_state(self, src: int, dst: int) -> None:
        """Materialize site ``dst``'s fold state from its cohort rep."""
        source = self.monitors[src]
        target = self.monitors[dst]
        target.counters.ticks = source.counters.ticks
        target.aggregator.copy_state_from(source.aggregator)

    def _split(self, cid: int, advancing: List[int]) -> int:
        """Split ``advancing`` (a strict subset of cohort ``cid``) off.

        The subset about to fold a record the rest of the cohort did
        not receive becomes a new cohort; whichever side loses the
        representative gets one materialized *before* any state moves.
        """
        moving = set(advancing)
        remainder = [i for i in self._members[cid] if i not in moving]
        rep = self._rep[cid]
        new_cid = self._next_cid
        self._next_cid += 1
        if rep in moving:
            if remainder:
                self._copy_state(rep, remainder[0])
                self._rep[cid] = remainder[0]
                self._members[cid] = remainder
            new_rep = rep
        else:
            new_rep = advancing[0]
            self._copy_state(rep, new_rep)
            self._members[cid] = remainder
        for i in advancing:
            self._cohort[i] = new_cid
        self._members[new_cid] = list(advancing)
        self._rep[new_cid] = new_rep
        return new_cid

    def sync(self) -> None:
        """Materialize every cohort member from its representative.

        After this call each monitor's own aggregator and tick counter
        hold the state the per-site path would have produced — required
        before reading ``state_dict`` or checkpointing, and before any
        fold that bypasses :meth:`fold_group`.  Cohorts stay pooled.
        """
        if self._flat:
            return
        for cid, members in self._members.items():
            rep = self._rep[cid]
            for i in members:
                if i != rep:
                    self._copy_state(rep, i)

    def dissolve(self) -> None:
        """Sync, then drop to one-site cohorts (per-site folding).

        Called when the service leaves the fleet fold path (OBS
        instrumentation, live-mode sampling): sites then fold
        individually, so pooled state sharing must end first.
        """
        if self._flat:
            return
        self.sync()
        n = len(self.monitors)
        self._cohort = list(range(n))
        self._members = {i: [i] for i in range(n)}
        self._rep = {i: i for i in range(n)}
        self._next_cid = n
        self._flat = True

    # ------------------------------------------------------------------
    # vectorized fold
    # ------------------------------------------------------------------
    def fold_group(
        self, record: IntervalRecord, members: Sequence["SiteRuntime"]
    ) -> None:
        """Fold one distinct record object into its member sites.

        ``members`` are site runtimes (``.index``, ``.monitor``,
        ``.pending``) that all received *this exact record object* this
        tick.  The record's rows are extracted once per group; within
        each cohort of state-identical sites only the representative
        actually folds (an emitted window is shared by every member —
        same values by construction), with one vectorized PI update
        across all fast sites.  Cohorts whose members diverge this tick
        (a faulted sibling got a different record, or the schema no
        longer accepts the shared rows) split first, materializing
        state exactly where it is about to stop being shared; slow
        folds (schema drift, missing tiers or counters) then run per
        site — their tracker views write into the same moment array, so
        the paths stay interchangeable per tick.
        """
        ref = self._rep[self._cohort[members[0].index]]
        prepared = self.monitors[ref].aggregator.prepare(record)
        x_values: Optional[np.ndarray] = None
        if prepared is not None and self.pi_definitions:
            try:
                x_values = np.array(
                    [
                        definition.value(
                            record.metrics(definition.level, definition.tier)
                        )
                        for definition in self.pi_definitions
                    ],
                    dtype=float,
                )
            except KeyError:
                # a PI metric is missing: the per-site path would count
                # skipped updates / partial ticks, so everyone takes it
                prepared = None
        by_cohort: Dict[int, List["SiteRuntime"]] = {}
        cohort = self._cohort
        for site in members:
            by_cohort.setdefault(cohort[site.index], []).append(site)
        fast: List["SiteRuntime"] = []
        for cid, group in by_cohort.items():
            if len(group) != len(self._members[cid]):
                cid = self._split(cid, [site.index for site in group])
            rep = self._rep[cid]
            rep_monitor = self.monitors[rep]
            if prepared is not None and rep_monitor.aggregator.accepts(
                prepared
            ):
                fast.extend(group)
                window = rep_monitor.fold_prepared(record, prepared)
                if window is not None:
                    for site in group:
                        site.pending.append(window)
            else:
                # everyone folds for real: materialize members from the
                # rep's pre-fold state first, then advance in lockstep
                # (identical state + same record keeps the cohort alive)
                for site in group:
                    if site.index != rep:
                        self._copy_state(rep, site.index)
                for site in group:
                    window = site.monitor.fold(record)
                    if window is not None:
                        site.pending.append(window)
        if not fast:
            return
        if self.pi_definitions:
            assert x_values is not None
            self._pi_update(
                np.array([site.index for site in fast], dtype=np.intp),
                x_values,
                float(record.website.client.throughput),
            )

    def _pi_update(
        self, idx: np.ndarray, x: np.ndarray, y: float
    ) -> None:
        """One Welford step for ``len(idx)`` sites, all definitions.

        Elementwise ops in the exact order
        :meth:`~repro.telemetry.streaming.RunningCorrelation.update`
        applies them, so the result is bit-identical to scalar updates.
        """
        sub = self.pi[idx]  # (B, D, 8) — fancy index copies
        n = sub[..., 0] + 1.0
        dx = x[None, :] - sub[..., 1]
        mean_x = sub[..., 1] + dx / n
        m2_x = sub[..., 3] + dx * (x[None, :] - mean_x)
        dy = y - sub[..., 2]
        mean_y = sub[..., 2] + dy / n
        cov = sub[..., 5] + dx * (y - mean_y)
        m2_y = sub[..., 4] + dy * (y - mean_y)
        sub[..., 0] = n
        sub[..., 1] = mean_x
        sub[..., 2] = mean_y
        sub[..., 3] = m2_x
        sub[..., 4] = m2_y
        sub[..., 5] = cov
        sub[..., 6] = np.maximum(sub[..., 6], np.abs(x)[None, :])
        sub[..., 7] = np.maximum(sub[..., 7], abs(y))
        self.pi[idx] = sub

    # ------------------------------------------------------------------
    # vectorized clean-window decide
    # ------------------------------------------------------------------
    def decide_clean(
        self,
        entries: Sequence[
            Tuple[int, OnlineCapacityMonitor, StreamingWindow, Tuple[int, ...]]
        ],
    ) -> List[MonitorDecision]:
        """Decide one clean (batch-eligible) window per entry, stacked.

        ``entries`` are ``(site_index, monitor, window, votes)`` with
        **unique site indices** — the service batches multi-window
        flushes in waves so each site appears once per call.  The numpy
        pass reproduces ``predict_votes`` (GPV → history → Hc → λ with
        pattern fallback → BPT vote → speculative shift) and
        ``observe`` (history repair, ±1 LHT/GPT/BPT adaptation when the
        fleet adapts) elementwise; per-site bookkeeping then lands via
        :meth:`~repro.core.coordinator.CoordinatedPredictor.commit_clean_votes`
        and
        :meth:`~repro.core.monitor.OnlineCapacityMonitor.finish_fleet_decision`.
        """
        if not entries:
            return []
        idx = np.array([entry[0] for entry in entries], dtype=np.intp)
        vote_matrix = np.array(
            [entry[3] for entry in entries], dtype=np.int64
        )
        if ((vote_matrix != 0) & (vote_matrix != 1)).any():
            raise ValueError("synopsis votes must be 0/1")
        gpv = vote_matrix @ self._bits
        hist = self.history[idx, gpv]
        hc = self.lht[idx, gpv, hist]
        pattern_count = self.gpt[idx, gpv]
        hc_over = hc > self._delta
        hc_under = hc < -self._delta
        undecided = ~hc_over & ~hc_under
        if self._pattern_fallback:
            pattern_over = undecided & (pattern_count > self._delta)
            pattern_under = undecided & (pattern_count < -self._delta)
        else:
            pattern_over = pattern_under = np.zeros_like(hc_over)
        overload = hc_over | pattern_over
        underload = hc_under | pattern_under
        confident = overload | underload
        state = np.where(
            overload,
            OVERLOAD,
            np.where(underload, UNDERLOAD, self._fallback_state),
        ).astype(np.int64)
        bpt_rows = self.bpt[idx, gpv]
        bpt_has_vote = bpt_rows.any(axis=1)
        bpt_argmax = bpt_rows.argmax(axis=1)
        # speculative shift, exactly as _shift_history does per site
        self.history[idx, gpv] = ((hist << 1) | state) & self._mask

        predictions: List[CoordinatedPrediction] = []
        truths = np.empty(len(entries), dtype=np.int64)
        truth_bottlenecks: List[Optional[str]] = []
        for b, (_, monitor, window, votes) in enumerate(entries):
            state_b = int(state[b])
            bottleneck = None
            if state_b == OVERLOAD and bool(bpt_has_vote[b]):
                bottleneck = self._tiers[int(bpt_argmax[b])]
            predictions.append(
                CoordinatedPrediction(
                    state=state_b,
                    bottleneck=bottleneck,
                    gpv=int(gpv[b]),
                    hc=float(hc[b]),
                    confident=bool(confident[b]),
                    synopsis_votes=tuple(int(v) for v in votes),
                )
            )
            monitor.meter.coordinator.commit_clean_votes(
                votes, int(hist[b])
            )
            truth = int(monitor.labeler(window.stats))
            truths[b] = truth
            truth_bottlenecks.append(
                window.stats.bottleneck if truth == OVERLOAD else None
            )

        # ---- observe(): history repair + optional adaptation --------
        if self._adapt:
            step = np.where(truths == OVERLOAD, 1.0, -1.0)
            self.lht[idx, gpv, hist] = np.clip(
                hc + step, -self._counter_limit, self._counter_limit
            )
            self.gpt[idx, gpv] = np.clip(
                pattern_count + step,
                -self._pattern_counter_limit,
                self._pattern_counter_limit,
            )
            for b, bottleneck in enumerate(truth_bottlenecks):
                if bottleneck is None:
                    continue
                tier_k = self._tier_index.get(bottleneck)
                if tier_k is None:
                    raise ValueError(
                        f"unknown bottleneck tier {bottleneck!r}"
                    )
                self.bpt[idx[b], gpv[b]] += self._bpt_delta[tier_k]
        shifted = self.history[idx, gpv]
        self.history[idx, gpv] = (shifted & ~1) | truths

        return [
            monitor.finish_fleet_decision(
                window, predictions[b], int(truths[b]), truth_bottlenecks[b]
            )
            for b, (_, monitor, window, _) in enumerate(entries)
        ]

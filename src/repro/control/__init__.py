"""QoS control applications built on the capacity meter.

All controllers here sense through the *canonical*
:class:`~repro.core.monitor.OnlineCapacityMonitor` — there is exactly
one online monitor implementation in the codebase, shared with the
``repro monitor`` CLI and the fault-campaign harness.
"""

from .admission import (
    AdmissionController,
    AdmissionStats,
    AimdGate,
    GatedFrontEnd,
)
from .differentiation import ClassDifferentiator, ClassStats
from .fleet import FleetState
from .service import CapacityService, SiteSpec
from .shard import ShardedCapacityService, partition_sites
from .snapshot import FleetSnapshot, SiteSnapshot, SnapshotPublisher

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AimdGate",
    "CapacityService",
    "ClassDifferentiator",
    "ClassStats",
    "FleetSnapshot",
    "FleetState",
    "GatedFrontEnd",
    "ShardedCapacityService",
    "SiteSnapshot",
    "SiteSpec",
    "SnapshotPublisher",
    "partition_sites",
]

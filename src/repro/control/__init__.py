"""QoS control applications built on the capacity meter."""

from .admission import AdmissionController, AdmissionStats, OnlineCapacityMonitor
from .differentiation import ClassDifferentiator, ClassStats

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "ClassDifferentiator",
    "ClassStats",
    "OnlineCapacityMonitor",
]

"""Multi-process sharded backend for :class:`CapacityService`.

One process — even with the structure-of-arrays
:class:`~repro.control.fleet.FleetState` — caps the fleet at a single
core.  :class:`ShardedCapacityService` partitions the site list into
contiguous shards, runs each shard as a full single-process
:class:`~repro.control.service.CapacityService` (fleet backend and all)
inside a long-lived worker process on a
:class:`~repro.parallel.pool.WorkerPool`, and merges the per-tick
decision streams back into the parent.

Determinism / bit-equality
--------------------------
The merged stream is bit-identical to the single-process service for
*any* worker count, because nothing a site computes depends on which
shard it landed in:

* every site's RNG substreams derive from ``SeedSequence(site_seed)``
  only (:meth:`~repro.control.service.SiteSpec.seed_streams`) — never
  from a worker or shard index;
* batched synopsis votes are pure functions of each window (identical
  whether the batch spans 1000 sites or a 250-site shard);
* the single-process flush emits decisions in (site order, window
  order) within each tick, so with *contiguous* shards the canonical
  order is recovered by concatenating the shards' per-tick streams in
  shard order — a merge that never looks at wall-clock completion.

Startup and steady-state costs are kept off the decision path: the one
trained meter crosses into each worker exactly once, as a read-only
``meter.to_payload()`` broadcast folded into the pool's warm-up
handshake; per-tick traffic ships in multi-tick chunks, and the parent
pulls chunk ``k``'s reply blobs off every pipe *before* unpickling
them, handing out chunk ``k + 1`` first so its merge work overlaps the
workers' compute.

Checkpointing extends the ``repro.service-checkpoint/2`` manifest with
a ``"sharded"`` layout — one fleet-sharded ``fleet.monitor.<i>.json``
per worker plus the merged gate/injector/watchdog states — that can be
saved at N workers and resumed at M (including M = 0: the
single-process :meth:`CapacityService.resume` reads the sharded layout
directly), and a sharded service resumes any v1/v2 single-process
manifest, since each worker simply resumes its slice of the checkpoint
through ``CapacityService.resume(..., allow_subset=True)``.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.capacity import CapacityMeter
from ..core.monitor import MonitorDecision
from ..faults.checkpoint import (
    read_json_checkpoint,
    save_fleet_checkpoint,
    write_json_atomic,
)
from ..obs import OBS, MetricsRegistry, merge_snapshot, snapshot_lines
from ..parallel.pool import WorkerPool
from ..telemetry.sampler import IntervalRecord, WindowStats
from .service import (
    SERVICE_FORMAT,
    SERVICE_FORMAT_V1,
    CapacityService,
    SiteDecision,
    SiteSpec,
)

__all__ = ["ShardedCapacityService", "partition_sites"]

#: (tick, site name, decision, post-update gate admission probability)
#: emitted by live-mode workers, merged on (tick, shard) in the parent
LiveDecision = Tuple[int, str, MonitorDecision, float]


def partition_sites(
    sites: Sequence[SiteSpec], workers: int
) -> List[List[SiteSpec]]:
    """Balanced *contiguous* partition of ``sites`` into ``workers`` shards.

    Contiguity is what makes the deterministic merge trivial: global
    site order == shard order + within-shard order, so concatenating
    per-shard decision lists per tick reproduces the single-process
    emission order exactly.  Never returns an empty shard (the worker
    count is clamped to the site count).
    """
    if workers < 1:
        raise ValueError("partition_sites needs at least one worker")
    if not sites:
        raise ValueError("partition_sites needs at least one site")
    workers = min(workers, len(sites))
    base, extra = divmod(len(sites), workers)
    shards: List[List[SiteSpec]] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        shards.append(list(sites[start : start + size]))
        start += size
    return shards


# ----------------------------------------------------------------------
# worker-side state and tasks (module level: picklable by reference)
# ----------------------------------------------------------------------
#: this process's shard service (set by the pool initializer)
_SHARD: Optional[CapacityService] = None
#: live-mode state: simulator + captured (tick, name, decision, gate_p)
_LIVE: Dict[str, Any] = {}


def _init_shard(worker_index: int, common: Dict[str, Any]) -> None:
    """Pool initializer: build (or resume) this worker's shard service.

    Runs inside the pool's warm-up handshake, so meter rebuild and
    monitor cloning are done before the first chunk arrives.
    """
    global _SHARD
    # a fork-started worker inherits the parent's registry contents;
    # merging that copy back would double-count, so always start fresh
    OBS.reset()
    if common["obs"]:
        OBS.enable(registry=MetricsRegistry())
    specs: List[SiteSpec] = common["shards"][worker_index]
    labeler = common["labeler"]
    opts = common["opts"]
    if common["resume_dir"] is not None:
        _SHARD = CapacityService.resume(
            common["resume_dir"],
            specs,
            labeler=labeler,
            use_watchdog=opts["use_watchdog"],
            stall_ticks=opts["stall_ticks"],
            batch_votes=opts["batch_votes"],
            use_fleet=opts["use_fleet"],
            allow_subset=True,  # the parent validated the full list
            retain_decisions=opts["retain_decisions"],
        )
    else:
        meter = CapacityMeter.from_payload(common["meter"], labeler=labeler)
        _SHARD = CapacityService(
            meter,
            specs,
            adapt=opts["adapt"],
            labeler=labeler,
            min_votes=opts["min_votes"],
            max_imputed_fraction=opts["max_imputed_fraction"],
            confidence_decay=opts["confidence_decay"],
            use_watchdog=opts["use_watchdog"],
            stall_ticks=opts["stall_ticks"],
            batch_votes=opts["batch_votes"],
            use_fleet=opts["use_fleet"],
            retain_decisions=opts["retain_decisions"],
        )


def _shard() -> CapacityService:
    assert _SHARD is not None, "worker initializer did not run"
    return _SHARD


def _shard_replay_chunk(
    records: Sequence[IntervalRecord],
) -> List[List[SiteDecision]]:
    """Push one chunk of ticks; decisions grouped per tick."""
    service = _shard()
    return [service.push(record) for record in records]


def _shard_sync() -> int:
    """Materialize cohort members (mirrors ``replay``'s final sync)."""
    service = _shard()
    if service.fleet is not None:
        service.fleet.sync()
    return service.ticks


def _shard_save(directory: str, shard_index: int) -> Dict[str, Any]:
    """Write this shard's monitor file; return its manifest fragment."""
    service = _shard()
    if service.fleet is not None:
        service.fleet.sync()
    filename = f"fleet.monitor.{shard_index}.json"
    save_fleet_checkpoint(
        [(site.name, site.monitor) for site in service.sites],
        Path(directory) / filename,
    )
    return {
        "file": filename,
        "sites": [site.name for site in service.sites],
        "gates": {
            site.name: site.gate.state_dict() for site in service.sites
        },
        "injectors": {
            site.name: site.injector.state_dict()
            for site in service.sites
            if site.injector is not None
        },
        "watchdogs": {
            site.name: site.watchdog.state_dict()
            for site in service.sites
            if site.watchdog is not None
        },
    }


def _shard_summary() -> List[str]:
    return _shard().summary_rows()


def _shard_gate_states() -> Dict[str, Dict[str, Any]]:
    service = _shard()
    return {site.name: site.gate.state_dict() for site in service.sites}


def _shard_monitor_states() -> Dict[str, Dict[str, Any]]:
    """Post-sync ``state_dict`` + coordinator tables per site."""
    service = _shard()
    if service.fleet is not None:
        service.fleet.sync()
    return {
        site.name: {
            "state": site.monitor.state_dict(),
            "tables": site.monitor.meter.coordinator.table_state(),
        }
        for site in service.sites
    }


def _shard_obs_lines() -> Optional[List[str]]:
    """This worker's registry snapshot (None when obs is disabled)."""
    if not OBS.enabled:
        return None
    return snapshot_lines(OBS.registry)


def _shard_attach(
    factory: Callable[..., Tuple[Any, float]],
    factory_args: Tuple[Any, ...],
) -> float:
    """Live mode: build this shard's simulator and start sampling.

    ``factory(service, *factory_args)`` is a module-level callable (the
    CLI provides one) that constructs the shard's websites and
    simulator, calls :meth:`CapacityService.attach`, and returns
    ``(sim, duration)``.  Decisions are captured with their tick and
    post-update gate probability so the parent can merge streams from
    independent per-shard simulators on ``(tick, shard order)``.
    """
    service = _shard()
    captured: List[LiveDecision] = []

    def on_decision(name: str, decision: MonitorDecision) -> None:
        captured.append(
            (
                service.ticks,
                name,
                decision,
                service.site(name).gate.admission_probability,
            )
        )

    service.on_decision = on_decision
    sim, duration = factory(service, *factory_args)
    _LIVE["sim"] = sim
    _LIVE["captured"] = captured
    return float(duration)


def _shard_advance(until: float) -> Tuple[List[LiveDecision], int]:
    """Advance this shard's simulator to ``until``; drain captures."""
    _LIVE["sim"].run(until=until)
    captured: List[LiveDecision] = _LIVE["captured"]
    drained = list(captured)
    captured.clear()
    return drained, _shard().ticks


def _shard_detach() -> None:
    """Stop live sampling (keeps the service resumable/saveable)."""
    _shard().stop()


# ----------------------------------------------------------------------
class ShardedCapacityService:
    """N sites sharded across worker processes, one merged stream.

    Replay mode mirrors :class:`CapacityService`: :meth:`push` /
    :meth:`replay` return ``(site name, decision)`` pairs in the exact
    order the single-process service would emit them, and
    ``on_decision`` observes the merged stream.  :meth:`save` writes a
    ``"sharded"`` service checkpoint that any worker count — including
    the single-process service — can resume; :meth:`resume` reads any
    v1/v2 layout.  Always :meth:`close` (or use as a context manager):
    the workers are real processes.
    """

    def __init__(
        self,
        meter: Optional[CapacityMeter],
        sites: Sequence[SiteSpec],
        *,
        workers: int,
        adapt: bool = False,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        min_votes: Optional[int] = None,
        max_imputed_fraction: float = 0.5,
        confidence_decay: float = 0.5,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
        batch_votes: bool = True,
        use_fleet: bool = True,
        retain_decisions: Optional[int] = None,
        on_decision: Optional[Callable[[str, MonitorDecision], None]] = None,
        chunk_ticks: int = 16,
        _resume_dir: Optional[str] = None,
        _resume_ticks: int = 0,
    ) -> None:
        if not sites:
            raise ValueError("ShardedCapacityService needs at least one site")
        names = [spec.name for spec in sites]
        if len(set(names)) != len(names):
            raise ValueError("duplicate site names in the sharded fleet")
        if chunk_ticks < 1:
            raise ValueError("chunk_ticks must be positive")
        if meter is None and _resume_dir is None:
            raise ValueError("a meter is required unless resuming")
        if labeler is None and meter is not None:
            labeler = meter.labeler
        shards = partition_sites(sites, workers)
        self.shards = shards
        self.site_names = names
        self.on_decision = on_decision
        self.chunk_ticks = chunk_ticks
        self.ticks = _resume_ticks
        self._closed = False
        common: Dict[str, Any] = {
            "obs": OBS.enabled,
            "meter": meter.to_payload() if meter is not None else None,
            "labeler": labeler,
            "shards": shards,
            "resume_dir": _resume_dir,
            "opts": {
                "adapt": adapt,
                "min_votes": min_votes,
                "max_imputed_fraction": max_imputed_fraction,
                "confidence_decay": confidence_decay,
                "use_watchdog": use_watchdog,
                "stall_ticks": stall_ticks,
                "batch_votes": batch_votes,
                "use_fleet": use_fleet,
                "retain_decisions": retain_decisions,
            },
        }
        # the pool's warm-up handshake doubles as the meter broadcast:
        # __init__ returns only after every shard is built and ready
        self.pool = WorkerPool(
            len(shards), initializer=_init_shard, initargs=(common,)
        )

    @classmethod
    def resume(
        cls,
        directory: Union[str, Path],
        sites: Sequence[SiteSpec],
        *,
        workers: int,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
        batch_votes: bool = True,
        use_fleet: bool = True,
        allow_subset: bool = False,
        retain_decisions: Optional[int] = None,
        on_decision: Optional[Callable[[str, MonitorDecision], None]] = None,
        chunk_ticks: int = 16,
    ) -> "ShardedCapacityService":
        """Resume any service checkpoint across ``workers`` processes.

        The worker count is independent of the one that wrote the
        checkpoint: each worker resumes its own contiguous slice via
        :meth:`CapacityService.resume`, which reads per-site, fleet and
        sharded layouts alike.  Manifest validation (format, missing
        gate state, orphaned sites unless ``allow_subset``) happens
        once here in the parent, exactly as the single-process resume
        would report it.
        """
        target = Path(directory)
        manifest = read_json_checkpoint(target / "service.json")
        if manifest.get("format") not in (SERVICE_FORMAT, SERVICE_FORMAT_V1):
            raise ValueError(f"{target} is not a service checkpoint")
        gate_states = manifest["gates"]
        supplied = {spec.name for spec in sites}
        for spec in sites:
            if spec.name not in gate_states:
                raise ValueError(
                    f"checkpoint has no gate state for site {spec.name!r}"
                )
        orphans = sorted(name for name in gate_states if name not in supplied)
        if orphans and not allow_subset:
            raise ValueError(
                f"checkpoint has state for sites not in the supplied "
                f"list: {orphans}; pass allow_subset=True to resume "
                f"without them"
            )
        return cls(
            None,
            sites,
            workers=workers,
            labeler=labeler,
            use_watchdog=use_watchdog,
            stall_ticks=stall_ticks,
            batch_votes=batch_votes,
            use_fleet=use_fleet,
            retain_decisions=retain_decisions,
            on_decision=on_decision,
            chunk_ticks=chunk_ticks,
            _resume_dir=str(target),
            _resume_ticks=int(manifest["ticks"]),
        )

    # ------------------------------------------------------------------
    # replay mode
    # ------------------------------------------------------------------
    def _emit(
        self, per_worker: Sequence[List[List[SiteDecision]]]
    ) -> List[SiteDecision]:
        """Merge one chunk: tick-major, shard-major, site-major."""
        merged: List[SiteDecision] = []
        ticks = len(per_worker[0])
        for tick in range(ticks):
            for worker_out in per_worker:
                for name, decision in worker_out[tick]:
                    if self.on_decision is not None:
                        self.on_decision(name, decision)
                    merged.append((name, decision))
        return merged

    def push(self, record: IntervalRecord) -> List[SiteDecision]:
        """Offer one record to every site, merged like the fleet path."""
        self.ticks += 1
        per_worker = self.pool.broadcast(_shard_replay_chunk, [record])
        return self._emit(per_worker)

    def replay(
        self, records: Sequence[IntervalRecord]
    ) -> List[SiteDecision]:
        """Replay a recorded stream, chunked and pipelined.

        Chunk ``k``'s reply blobs are pulled off every pipe and chunk
        ``k + 1`` dispatched *before* chunk ``k`` is unpickled and
        merged, so the parent's merge work overlaps the workers'
        compute instead of serializing with it.
        """
        pool = self.pool
        decisions: List[SiteDecision] = []
        chunks = [
            list(records[start : start + self.chunk_ticks])
            for start in range(0, len(records), self.chunk_ticks)
        ]
        in_flight = False
        for chunk in chunks:
            blobs: Optional[List[bytes]] = None
            if in_flight:
                # strict request-response per worker: never two chunks
                # queued at once, so a full pipe can't deadlock us
                blobs = [
                    pool.result_bytes(worker) for worker in range(pool.size)
                ]
            for worker in range(pool.size):
                pool.submit(worker, _shard_replay_chunk, chunk)
            in_flight = True
            if blobs is not None:
                decisions.extend(
                    self._emit([pool.load_result(blob) for blob in blobs])
                )
        if in_flight:
            decisions.extend(
                self._emit(
                    [pool.result(worker) for worker in range(pool.size)]
                )
            )
        self.ticks += len(records)
        self.pool.broadcast(_shard_sync)
        return decisions

    # ------------------------------------------------------------------
    # live mode (driven by the CLI)
    # ------------------------------------------------------------------
    def attach_factory(
        self,
        factory: Callable[..., Tuple[Any, float]],
        *factory_args: Any,
    ) -> float:
        """Start live sampling on every shard; returns max duration.

        ``factory`` must be a module-level callable; it runs once per
        worker as ``factory(shard_service, *factory_args)``, builds the
        shard's simulator + websites, attaches them, and returns
        ``(sim, duration)``.
        """
        durations = self.pool.broadcast(_shard_attach, factory, factory_args)
        return max(float(d) for d in durations)

    def advance(self, until: float) -> List[Tuple[str, MonitorDecision, float]]:
        """Advance every shard's simulator to ``until``; merged stream.

        Returns ``(site name, decision, gate admission probability)``
        triples ordered by ``(tick, shard, within-shard order)`` — the
        order the single-process live loop emits them.
        """
        outs = self.pool.broadcast(_shard_advance, until)
        ticks = max(int(out[1]) for out in outs)
        events: List[Tuple[int, int, int, LiveDecision]] = []
        for worker, (drained, _) in enumerate(outs):
            for sequence, item in enumerate(drained):
                events.append((int(item[0]), worker, sequence, item))
        events.sort(key=lambda event: (event[0], event[1], event[2]))
        self.ticks = max(self.ticks, ticks)
        merged: List[Tuple[str, MonitorDecision, float]] = []
        for _, _, _, (_, name, decision, gate_p) in events:
            if self.on_decision is not None:
                self.on_decision(name, decision)
            merged.append((name, decision, float(gate_p)))
        return merged

    def detach(self) -> None:
        """Stop live sampling on every shard."""
        self.pool.broadcast(_shard_detach)

    # ------------------------------------------------------------------
    # checkpoint / inspection
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        """Write a ``"sharded"``-layout service checkpoint.

        Workers write their ``fleet.monitor.<i>.json`` files in
        parallel (each atomically); the parent merges their manifest
        fragments — gate, injector and watchdog states keyed by site,
        in global site order — and writes ``service.json`` last, so a
        reader never observes a manifest pointing at missing shards.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        for worker in range(self.pool.size):
            self.pool.submit(worker, _shard_save, str(target), worker)
        fragments = [
            self.pool.result(worker) for worker in range(self.pool.size)
        ]
        manifest: Dict[str, Any] = {
            "format": SERVICE_FORMAT,
            "layout": "sharded",
            "ticks": self.ticks,
            "shards": [
                {"file": fragment["file"], "sites": fragment["sites"]}
                for fragment in fragments
            ],
            "gates": {},
            "injectors": {},
            "watchdogs": {},
        }
        for fragment in fragments:
            manifest["gates"].update(fragment["gates"])
            manifest["injectors"].update(fragment["injectors"])
            manifest["watchdogs"].update(fragment["watchdogs"])
        write_json_atomic(target / "service.json", manifest)
        return target

    def sync(self) -> None:
        """Materialize cohort members on every shard."""
        self.pool.broadcast(_shard_sync)

    def gate_states(self) -> Dict[str, Dict[str, Any]]:
        """Every site's gate ``state_dict``, in global site order."""
        merged: Dict[str, Dict[str, Any]] = {}
        for states in self.pool.broadcast(_shard_gate_states):
            merged.update(states)
        return merged

    def monitor_states(self) -> Dict[str, Dict[str, Any]]:
        """Every site's post-sync monitor state + coordinator tables."""
        merged: Dict[str, Dict[str, Any]] = {}
        for states in self.pool.broadcast(_shard_monitor_states):
            merged.update(states)
        return merged

    def summary_rows(self) -> List[str]:
        """Per-site status blocks, in global site order."""
        rows: List[str] = []
        for shard_rows in self.pool.broadcast(_shard_summary):
            rows.extend(shard_rows)
        return rows

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def merge_observability(self) -> int:
        """Fold every worker's metrics registry into the parent's.

        Counters and histograms sum, gauges are last-write-wins (in
        worker order).  Zero-cost when observability is disabled: no
        broadcast, no pipe traffic.  Returns merged sample count.
        """
        if not OBS.enabled:
            return 0
        merged = 0
        for lines in self.pool.broadcast(_shard_obs_lines):
            if lines:
                merged += merge_snapshot(OBS.registry, lines)
        return merged

    def close(self) -> None:
        """Merge worker metrics, then stop the workers (idempotent)."""
        if self._closed:
            return
        try:
            self.merge_observability()
        finally:
            self._closed = True
            self.pool.close()

    def __enter__(self) -> "ShardedCapacityService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

"""Multi-process sharded backend for :class:`CapacityService`.

One process — even with the structure-of-arrays
:class:`~repro.control.fleet.FleetState` — caps the fleet at a single
core.  :class:`ShardedCapacityService` partitions the site list into
contiguous shards, runs each shard as a full single-process
:class:`~repro.control.service.CapacityService` (fleet backend and all)
inside a long-lived worker process on a
:class:`~repro.parallel.pool.WorkerPool`, and merges the per-tick
decision streams back into the parent.

Determinism / bit-equality
--------------------------
The merged stream is bit-identical to the single-process service for
*any* worker count, because nothing a site computes depends on which
shard it landed in:

* every site's RNG substreams derive from ``SeedSequence(site_seed)``
  only (:meth:`~repro.control.service.SiteSpec.seed_streams`) — never
  from a worker or shard index;
* batched synopsis votes are pure functions of each window (identical
  whether the batch spans 1000 sites or a 250-site shard);
* the single-process flush emits decisions in (site order, window
  order) within each tick, so with *contiguous* shards the canonical
  order is recovered by concatenating the shards' per-tick streams in
  shard order — a merge that never looks at wall-clock completion.

Startup and steady-state costs are kept off the decision path: the one
trained meter crosses into each worker exactly once, as a read-only
``meter.to_payload()`` broadcast folded into the pool's warm-up
handshake; per-tick traffic ships in multi-tick chunks, and the parent
pulls chunk ``k``'s reply blobs off every pipe *before* unpickling
them, handing out chunk ``k + 1`` first so its merge work overlaps the
workers' compute.

Checkpointing extends the ``repro.service-checkpoint/2`` manifest with
a ``"sharded"`` layout — one fleet-sharded ``fleet.monitor.<i>.json``
per worker plus the merged gate/injector/watchdog states — that can be
saved at N workers and resumed at M (including M = 0: the
single-process :meth:`CapacityService.resume` reads the sharded layout
directly), and a sharded service resumes any v1/v2 single-process
manifest, since each worker simply resumes its slice of the checkpoint
through ``CapacityService.resume(..., allow_subset=True)``.

Self-healing
------------
The fabric assumes worker processes die.  A supervisor rides the
replay/live loops:

* **periodic recovery checkpoints** — every ``supervise_ticks`` ticks
  (at the pipe-idle point between collecting chunk *k* and merging it)
  the service writes an incremental ``"sharded"`` checkpoint, and a
  bounded in-parent replay buffer retains every record since;
* **crash recovery** — a worker that crashes
  (:class:`~repro.parallel.pool.WorkerCrash`) or hangs past
  ``recv_timeout`` (:class:`~repro.parallel.pool.WorkerTimeout`) is
  respawned, its shard resumed from the last recovery checkpoint (or
  the original resume dir, or rebuilt cold from the meter payload),
  the intervening ticks replayed from the buffer, and the in-flight
  chunk re-dispatched — so the recovered shard's decision stream is
  **bit-identical** to an uninterrupted run (the checkpoint/resume ==
  uninterrupted invariant the single-process tests pin).  In live mode
  the simulator cannot be checkpointed, so recovery re-attaches the
  seeded factory and re-advances from zero — slower, same bit-identity.
* **degraded merge** — when recovery is disabled, exhausted
  (``max_respawns``) or impossible (replay-buffer gap), the shard is
  marked *lost* and the merge synthesizes held decisions for its sites
  at every window boundary with geometrically decaying confidence —
  the PR 3 monitor semantics lifted to fleet level, so consumers see a
  telemetry blackout (confidence 0.0 freezes AIMD gates at their
  ``confidence_floor``), never an exception;
* **process chaos** — a seeded
  :class:`~repro.faults.process.ProcessFaultPlan` (kill -9 / hang /
  slow-reply at given ticks and workers) injects real process faults
  deterministically, so crash-recovery campaigns are CI-gateable like
  telemetry-fault campaigns.

Caveat: worker ``repro.obs`` registries die with their process, so
merged *metrics* can undercount the span before the last recovery
checkpoint after a crash; the decision stream itself stays exact.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.capacity import CapacityMeter
from ..core.coordinator import CoordinatedPrediction
from ..core.monitor import MonitorDecision
from ..drift.detector import DriftConfig, DriftDetector
from ..drift.handle import StagedSwap, next_window_boundary
from ..faults.checkpoint import (
    read_json_checkpoint,
    save_fleet_checkpoint,
    write_json_atomic,
)
from ..faults.process import ProcessFaultPlan, ProcessFaultSpec
from ..obs import OBS, MetricsRegistry, merge_snapshot, snapshot_lines
from ..parallel.pool import WorkerCrash, WorkerError, WorkerPool, WorkerTimeout
from ..telemetry.sampler import IntervalRecord, WindowStats
from .service import (
    SERVICE_FORMAT,
    SERVICE_FORMAT_V1,
    CapacityService,
    SiteDecision,
    SiteSpec,
)
from .snapshot import FleetSnapshot, SnapshotPublisher

__all__ = ["ShardedCapacityService", "partition_sites"]

#: (tick, site name, decision, post-update gate admission probability)
#: emitted by live-mode workers, merged on (tick, shard) in the parent
LiveDecision = Tuple[int, str, MonitorDecision, float]


def partition_sites(
    sites: Sequence[SiteSpec], workers: int
) -> List[List[SiteSpec]]:
    """Balanced *contiguous* partition of ``sites`` into ``workers`` shards.

    Contiguity is what makes the deterministic merge trivial: global
    site order == shard order + within-shard order, so concatenating
    per-shard decision lists per tick reproduces the single-process
    emission order exactly.  Never returns an empty shard (the worker
    count is clamped to the site count).
    """
    if workers < 1:
        raise ValueError("partition_sites needs at least one worker")
    if not sites:
        raise ValueError("partition_sites needs at least one site")
    workers = min(workers, len(sites))
    base, extra = divmod(len(sites), workers)
    shards: List[List[SiteSpec]] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        shards.append(list(sites[start : start + size]))
        start += size
    return shards


# ----------------------------------------------------------------------
# worker-side state and tasks (module level: picklable by reference)
# ----------------------------------------------------------------------
#: this process's shard service (set by the pool initializer)
_SHARD: Optional[CapacityService] = None
#: live-mode state: simulator + captured (tick, name, decision, gate_p)
_LIVE: Dict[str, Any] = {}


def _init_shard(worker_index: int, common: Dict[str, Any]) -> None:
    """Pool initializer: build (or resume) this worker's shard service.

    Runs inside the pool's warm-up handshake, so meter rebuild and
    monitor cloning are done before the first chunk arrives.
    """
    global _SHARD
    # a fork-started worker inherits the parent's registry contents;
    # merging that copy back would double-count, so always start fresh
    OBS.reset()
    if common["obs"]:
        OBS.enable(registry=MetricsRegistry())
    specs: List[SiteSpec] = common["shards"][worker_index]
    labeler = common["labeler"]
    opts = common["opts"]
    if common["resume_dir"] is not None:
        _SHARD = CapacityService.resume(
            common["resume_dir"],
            specs,
            labeler=labeler,
            use_watchdog=opts["use_watchdog"],
            stall_ticks=opts["stall_ticks"],
            batch_votes=opts["batch_votes"],
            use_fleet=opts["use_fleet"],
            allow_subset=True,  # the parent validated the full list
            retain_decisions=opts["retain_decisions"],
        )
    else:
        meter = CapacityMeter.from_payload(common["meter"], labeler=labeler)
        _SHARD = CapacityService(
            meter,
            specs,
            adapt=opts["adapt"],
            labeler=labeler,
            min_votes=opts["min_votes"],
            max_imputed_fraction=opts["max_imputed_fraction"],
            confidence_decay=opts["confidence_decay"],
            use_watchdog=opts["use_watchdog"],
            stall_ticks=opts["stall_ticks"],
            batch_votes=opts["batch_votes"],
            use_fleet=opts["use_fleet"],
            retain_decisions=opts["retain_decisions"],
        )


def _shard() -> CapacityService:
    assert _SHARD is not None, "worker initializer did not run"
    return _SHARD


def _shard_replay_chunk(
    records: Sequence[IntervalRecord],
) -> List[List[SiteDecision]]:
    """Push one chunk of ticks; decisions grouped per tick."""
    service = _shard()
    return [service.push(record) for record in records]


def _shard_sync() -> int:
    """Materialize cohort members (mirrors ``replay``'s final sync)."""
    service = _shard()
    if service.fleet is not None:
        service.fleet.sync()
    return service.ticks


def _shard_window() -> int:
    """Decision-window length in ticks (shared by every site)."""
    return int(_shard().sites[0].monitor.meter.window)


def _shard_stage_swap(
    payload: Dict[str, Any], version: int, effective: int
) -> int:
    """Stage a parent-issued meter hot-swap on this shard.

    The parent computes one ``(version, effective tick)`` pair and
    broadcasts it, so every shard installs the retrained meter at the
    same window boundary — the merged stream never mixes meter
    versions within a tick.  Installs immediately when the shard is
    already sitting on the boundary (``CapacityService.stage_swap``
    semantics); re-staging an installed version is a no-op, which is
    what makes post-crash re-broadcasts safe.
    """
    service = _shard()
    service.stage_swap(
        StagedSwap(version=version, effective_tick=effective, payload=payload)
    )
    return service.handle.version


def _shard_replay_chunk_slow(
    records: Sequence[IntervalRecord], delay: float
) -> List[List[SiteDecision]]:
    """Chaos ``slow``: stall, then answer correctly (a GC pause)."""
    time.sleep(delay)
    return _shard_replay_chunk(records)


def _shard_hang() -> None:
    """Chaos ``hang``: never reply within any sane deadline."""
    time.sleep(3600.0)


def _shard_save(directory: str, shard_index: int) -> Dict[str, Any]:
    """Write this shard's monitor file; return its manifest fragment."""
    service = _shard()
    if service.fleet is not None:
        service.fleet.sync()
    filename = f"fleet.monitor.{shard_index}.json"
    save_fleet_checkpoint(
        [(site.name, site.monitor) for site in service.sites],
        Path(directory) / filename,
    )
    return {
        "file": filename,
        "sites": [site.name for site in service.sites],
        "gates": {
            site.name: site.gate.state_dict() for site in service.sites
        },
        "injectors": {
            site.name: site.injector.state_dict()
            for site in service.sites
            if site.injector is not None
        },
        "watchdogs": {
            site.name: site.watchdog.state_dict()
            for site in service.sites
            if site.watchdog is not None
        },
    }


def _shard_summary() -> List[str]:
    return _shard().summary_rows()


def _shard_gate_states() -> Dict[str, Dict[str, Any]]:
    service = _shard()
    return {site.name: site.gate.state_dict() for site in service.sites}


def _shard_monitor_states() -> Dict[str, Dict[str, Any]]:
    """Post-sync ``state_dict`` + coordinator tables per site."""
    service = _shard()
    if service.fleet is not None:
        service.fleet.sync()
    return {
        site.name: {
            "state": site.monitor.state_dict(),
            "tables": site.monitor.meter.coordinator.table_state(),
        }
        for site in service.sites
    }


def _shard_obs_lines() -> Optional[List[str]]:
    """This worker's registry snapshot (None when obs is disabled)."""
    if not OBS.enabled:
        return None
    return snapshot_lines(OBS.registry)


def _shard_attach(
    factory: Callable[..., Tuple[Any, float]],
    factory_args: Tuple[Any, ...],
) -> float:
    """Live mode: build this shard's simulator and start sampling.

    ``factory(service, *factory_args)`` is a module-level callable (the
    CLI provides one) that constructs the shard's websites and
    simulator, calls :meth:`CapacityService.attach`, and returns
    ``(sim, duration)``.  Decisions are captured with their tick and
    post-update gate probability so the parent can merge streams from
    independent per-shard simulators on ``(tick, shard order)``.
    """
    service = _shard()
    captured: List[LiveDecision] = []

    def on_decision(name: str, decision: MonitorDecision) -> None:
        captured.append(
            (
                service.ticks,
                name,
                decision,
                service.site(name).gate.admission_probability,
            )
        )

    service.on_decision = on_decision
    sim, duration = factory(service, *factory_args)
    _LIVE["sim"] = sim
    _LIVE["captured"] = captured
    return float(duration)


def _shard_advance(until: float) -> Tuple[List[LiveDecision], int]:
    """Advance this shard's simulator to ``until``; drain captures."""
    _LIVE["sim"].run(until=until)
    captured: List[LiveDecision] = _LIVE["captured"]
    drained = list(captured)
    captured.clear()
    return drained, _shard().ticks


def _shard_advance_slow(
    until: float, delay: float
) -> Tuple[List[LiveDecision], int]:
    """Chaos ``slow`` for live mode: stall, then advance correctly."""
    time.sleep(delay)
    return _shard_advance(until)


def _shard_detach() -> None:
    """Stop live sampling (keeps the service resumable/saveable)."""
    _shard().stop()


@dataclass
class _Chunk:
    """One dispatched slice of the record stream.

    ``start``/``end`` are *global service ticks* (1-based, inclusive)
    so recovery knows exactly which span a redelivery must cover.
    """

    records: List[IntervalRecord]
    start: int
    end: int


# ----------------------------------------------------------------------
class ShardedCapacityService:
    """N sites sharded across worker processes, one merged stream.

    Replay mode mirrors :class:`CapacityService`: :meth:`push` /
    :meth:`replay` return ``(site name, decision)`` pairs in the exact
    order the single-process service would emit them, and
    ``on_decision`` observes the merged stream.  :meth:`save` writes a
    ``"sharded"`` service checkpoint that any worker count — including
    the single-process service — can resume; :meth:`resume` reads any
    v1/v2 layout.  Always :meth:`close` (or use as a context manager):
    the workers are real processes.
    """

    def __init__(
        self,
        meter: Optional[CapacityMeter],
        sites: Sequence[SiteSpec],
        *,
        workers: int,
        adapt: bool = False,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        min_votes: Optional[int] = None,
        max_imputed_fraction: float = 0.5,
        confidence_decay: float = 0.5,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
        batch_votes: bool = True,
        use_fleet: bool = True,
        retain_decisions: Optional[int] = None,
        on_decision: Optional[Callable[[str, MonitorDecision], None]] = None,
        chunk_ticks: int = 16,
        recover: bool = True,
        max_respawns: int = 3,
        supervise_ticks: int = 256,
        recv_timeout: Optional[float] = None,
        replay_buffer_ticks: Optional[int] = None,
        process_faults: Optional[ProcessFaultPlan] = None,
        supervise_dir: Optional[Union[str, Path]] = None,
        _resume_dir: Optional[str] = None,
        _resume_ticks: int = 0,
        _resume_meter_version: int = 1,
        _resume_pending: Optional[Dict[str, Any]] = None,
        _resume_drift: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not sites:
            raise ValueError("ShardedCapacityService needs at least one site")
        names = [spec.name for spec in sites]
        if len(set(names)) != len(names):
            raise ValueError("duplicate site names in the sharded fleet")
        if chunk_ticks < 1:
            raise ValueError("chunk_ticks must be positive")
        if meter is None and _resume_dir is None:
            raise ValueError("a meter is required unless resuming")
        if max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")
        if supervise_ticks < 0:
            raise ValueError("supervise_ticks must be non-negative")
        if recv_timeout is not None and recv_timeout <= 0:
            raise ValueError("recv_timeout must be positive (or None)")
        if labeler is None and meter is not None:
            labeler = meter.labeler
        shards = partition_sites(sites, workers)
        if process_faults is not None:
            if process_faults.max_worker() >= len(shards):
                raise ValueError(
                    f"process fault plan targets worker "
                    f"{process_faults.max_worker()} but only "
                    f"{len(shards)} shards exist"
                )
            if recv_timeout is None and any(
                spec.kind == "hang" for spec in process_faults.faults
            ):
                raise ValueError(
                    "hang faults need recv_timeout: a hung worker is "
                    "only detectable via a reply deadline"
                )
        self.shards = shards
        self.site_names = names
        self.on_decision = on_decision
        self.chunk_ticks = chunk_ticks
        self.ticks = _resume_ticks
        self._closed = False
        # --- supervision state -----------------------------------------
        self._recover = recover
        self._max_respawns = max_respawns
        self._supervise_ticks = supervise_ticks
        self._recv_timeout = recv_timeout
        self._plan = process_faults
        self._fired: Set[int] = set()
        self._respawns: List[int] = [0] * len(shards)
        self._lost: Set[int] = set()
        self._lost_reasons: Dict[int, str] = {}
        self._resume_base = _resume_ticks
        self._resume_dir = _resume_dir
        if replay_buffer_ticks is not None:
            span: Optional[int] = replay_buffer_ticks
        elif not recover:
            span = 0  # nothing to replay into; skip the buffering cost
        elif supervise_ticks > 0:
            # worst-case recovery gap: one full checkpoint period plus
            # the chunk in flight and the chunk being merged
            span = supervise_ticks + 2 * chunk_ticks
        else:
            span = None  # no periodic checkpoints: keep everything
        self._replay_buffer: Deque[Tuple[int, IntervalRecord]] = deque(
            maxlen=span
        )
        self._ckpt_root = (
            None if supervise_dir is None else Path(supervise_dir)
        )
        self._ckpt_owned = False
        self._ckpt_path: Optional[Path] = None
        self._ckpt_ticks = -1
        # degraded-merge state: last decision + held streak per site
        self._confidence_decay = confidence_decay
        self._last_decisions: Dict[str, MonitorDecision] = {}
        self._held_streaks: Dict[str, int] = {}
        self._last_gate_p: Dict[str, float] = {}
        self._held_emitted = 0
        # --- drift + hot-swap state ------------------------------------
        # the workers own the MeterHandles; the parent mirrors their
        # version arithmetic from a swap log of (staged swap, tick it
        # was staged at) so checkpoints, snapshots and recovery all
        # agree on which meter version is installed at any tick
        self._base_meter_version = int(_resume_meter_version)
        self._published_version = int(_resume_meter_version)
        self._swap_log: List[Tuple[StagedSwap, int]] = []
        self._ckpt_meter_version = int(_resume_meter_version)
        self.drift: Optional[DriftDetector] = None
        self._drift_manifest_state: Optional[Dict[str, Any]] = (
            dict(_resume_drift) if _resume_drift is not None else None
        )
        if _resume_pending is not None:
            # a swap the saved service had staged but not installed;
            # each worker re-stages it itself (CapacityService.resume
            # reads the same manifest) — the parent only needs it in
            # the log for version accounting and re-broadcasts
            self._swap_log.append(
                (StagedSwap.from_manifest(dict(_resume_pending)), _resume_ticks)
            )
        #: latest published FleetSnapshot; None until enable_snapshots()
        self.snapshot: Optional[FleetSnapshot] = None
        self._publisher: Optional[SnapshotPublisher] = None
        # live mode: factory + last merged slice boundary for recovery
        self._live_factory: Optional[Callable[..., Tuple[Any, float]]] = None
        self._live_args: Tuple[Any, ...] = ()
        self._live_now = 0.0
        common: Dict[str, Any] = {
            "obs": OBS.enabled,
            "meter": meter.to_payload() if meter is not None else None,
            "labeler": labeler,
            "shards": shards,
            "resume_dir": _resume_dir,
            "opts": {
                "adapt": adapt,
                "min_votes": min_votes,
                "max_imputed_fraction": max_imputed_fraction,
                "confidence_decay": confidence_decay,
                "use_watchdog": use_watchdog,
                "stall_ticks": stall_ticks,
                "batch_votes": batch_votes,
                "use_fleet": use_fleet,
                "retain_decisions": retain_decisions,
            },
        }
        self._common = common
        # the pool's warm-up handshake doubles as the meter broadcast:
        # __init__ returns only after every shard is built and ready
        self.pool = WorkerPool(
            len(shards), initializer=_init_shard, initargs=(common,)
        )
        # window length (in ticks) drives degraded-merge synthesis; fetch
        # it now while the pipes are idle — mid-replay a probe would
        # desync the strict request-response protocol
        if meter is not None:
            self._window = int(meter.window)
        else:
            self._window = int(self.pool.call(0, _shard_window))

    @classmethod
    def resume(
        cls,
        directory: Union[str, Path],
        sites: Sequence[SiteSpec],
        *,
        workers: int,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
        batch_votes: bool = True,
        use_fleet: bool = True,
        allow_subset: bool = False,
        retain_decisions: Optional[int] = None,
        on_decision: Optional[Callable[[str, MonitorDecision], None]] = None,
        chunk_ticks: int = 16,
        recover: bool = True,
        max_respawns: int = 3,
        supervise_ticks: int = 256,
        recv_timeout: Optional[float] = None,
        replay_buffer_ticks: Optional[int] = None,
        process_faults: Optional[ProcessFaultPlan] = None,
        supervise_dir: Optional[Union[str, Path]] = None,
    ) -> "ShardedCapacityService":
        """Resume any service checkpoint across ``workers`` processes.

        The worker count is independent of the one that wrote the
        checkpoint: each worker resumes its own contiguous slice via
        :meth:`CapacityService.resume`, which reads per-site, fleet and
        sharded layouts alike.  Manifest validation (format, missing
        gate state, orphaned sites unless ``allow_subset``) happens
        once here in the parent, exactly as the single-process resume
        would report it.
        """
        target = Path(directory)
        manifest = read_json_checkpoint(target / "service.json")
        if manifest.get("format") not in (SERVICE_FORMAT, SERVICE_FORMAT_V1):
            raise ValueError(f"{target} is not a service checkpoint")
        gate_states = manifest["gates"]
        supplied = {spec.name for spec in sites}
        lost = set(manifest.get("lost_sites", ()))
        for spec in sites:
            if spec.name not in gate_states:
                if spec.name in lost:
                    raise ValueError(
                        f"site {spec.name!r} was being served degraded "
                        f"(its shard worker was lost) when this "
                        f"checkpoint was written, so it has no state; "
                        f"drop it from the fleet or resume an earlier "
                        f"checkpoint"
                    )
                raise ValueError(
                    f"checkpoint has no gate state for site {spec.name!r}"
                )
        orphans = sorted(name for name in gate_states if name not in supplied)
        if orphans and not allow_subset:
            raise ValueError(
                f"checkpoint has state for sites not in the supplied "
                f"list: {orphans}; pass allow_subset=True to resume "
                f"without them"
            )
        return cls(
            None,
            sites,
            workers=workers,
            labeler=labeler,
            use_watchdog=use_watchdog,
            stall_ticks=stall_ticks,
            batch_votes=batch_votes,
            use_fleet=use_fleet,
            retain_decisions=retain_decisions,
            on_decision=on_decision,
            chunk_ticks=chunk_ticks,
            recover=recover,
            max_respawns=max_respawns,
            supervise_ticks=supervise_ticks,
            recv_timeout=recv_timeout,
            replay_buffer_ticks=replay_buffer_ticks,
            process_faults=process_faults,
            supervise_dir=supervise_dir,
            _resume_dir=str(target),
            _resume_ticks=int(manifest["ticks"]),
            _resume_meter_version=int(manifest.get("meter_version", 1)),
            _resume_pending=manifest.get("pending_swap"),
            _resume_drift=manifest.get("drift"),
        )

    # ------------------------------------------------------------------
    # supervisor: failure accounting, recovery, degraded synthesis
    # ------------------------------------------------------------------
    @property
    def lost_workers(self) -> Tuple[int, ...]:
        """Workers the supervisor has given up on, ascending."""
        return tuple(sorted(self._lost))

    def lost_sites(self) -> List[str]:
        """Sites currently served by degraded-merge synthesis only."""
        return [
            spec.name
            for worker in sorted(self._lost)
            for spec in self.shards[worker]
        ]

    def enable_snapshots(self) -> FleetSnapshot:
        """Start publishing lock-free gate-state snapshots.

        Mirrors :meth:`CapacityService.enable_snapshots`: every merged
        chunk / live slice ends by swapping a fresh immutable
        :class:`~repro.control.snapshot.FleetSnapshot` into
        ``self.snapshot`` via a single reference assignment, readable
        from any thread without a lock.  Gates live in the workers, so
        entries start at the AIMD initial probability (1.0) and track
        live-mode gate reports thereafter (replay merges carry no gate
        probabilities — those entries keep their last value).  The
        snapshot's ``lost_sites`` mirrors :meth:`lost_sites`, which is
        what makes ``GET /healthz`` degraded-aware.
        """
        self._publisher = SnapshotPublisher(
            {
                spec.name: 1.0
                for shard in self.shards
                for spec in shard
            }
        )
        self.snapshot = self._publisher.publish(
            self.ticks,
            tuple(self.lost_sites()),
            meter_version=self.meter_version,
        )
        return self.snapshot

    # ------------------------------------------------------------------
    # drift detection and meter hot-swap
    # ------------------------------------------------------------------
    @staticmethod
    def _install_tick(swap: StagedSwap, staged_tick: int) -> int:
        """First tick at which the workers have ``swap`` installed.

        Staged *at* the boundary → the workers' ``stage_swap`` installs
        immediately (the boundary window has already decided); staged
        mid-window → they install on the first push past the boundary.
        """
        if staged_tick >= swap.effective_tick:
            return swap.effective_tick
        return swap.effective_tick + 1

    def _installed_version(self, tick: int) -> int:
        """The meter version the workers serve as of ``tick``."""
        version = self._base_meter_version
        for swap, staged in self._swap_log:
            if self._install_tick(swap, staged) <= tick:
                version = max(version, swap.version)
        return version

    @property
    def window(self) -> int:
        """The decision window length (ticks) all sites share."""
        return int(self._window)

    @property
    def meter_version(self) -> int:
        """The installed meter version (1 until the first hot-swap)."""
        return self._installed_version(self.ticks)

    def _pending_swap(self) -> Optional[StagedSwap]:
        """The staged-but-not-installed swap, if any (latest version)."""
        latest: Optional[StagedSwap] = None
        for swap, staged in self._swap_log:
            if self._install_tick(swap, staged) > self.ticks:
                if latest is None or swap.version > latest.version:
                    latest = swap
        return latest

    def _sync_version(self, tick: int) -> None:
        """Fire install side effects once a swap's boundary passes.

        The workers install mid-push; the parent notices when its merge
        loop crosses the install tick — before folding that tick's
        decisions into the drift detector, so a fresh meter starts with
        clean drift horizons exactly as the single-process path does.
        """
        version = self._installed_version(tick)
        if version == self._published_version:
            return
        self._published_version = version
        if self.drift is not None:
            self.drift.notify_swap()
        if OBS.enabled:
            # repro_meter_swaps_total is counted inside the workers
            # (each shard installs); merging would double-count a
            # parent-side increment, so only the gauge lives here
            OBS.set(
                "repro_meter_version",
                float(version),
                help="Installed meter version.",
            )

    def enable_drift(
        self, config: Optional[DriftConfig] = None
    ) -> DriftDetector:
        """Put a drift detector on the merged decision path.

        Detection is parent-side — the detector folds the merged
        stream, so its verdicts are identical for any worker count and
        survive worker crashes untouched.  Synthesized decisions for
        lost shards are *not* folded: a dead worker is a blackout the
        health endpoint already reports, not evidence the meter's
        model of the workload went stale.
        """
        self.drift = DriftDetector(config)
        if self._drift_manifest_state is not None:
            self.drift.load_state(self._drift_manifest_state)
            self._drift_manifest_state = None
        return self.drift

    def _observe_drift(
        self, name: str, decision: MonitorDecision
    ) -> Optional[bool]:
        """Fold one merged decision into the detector; drift flag."""
        if self.drift is None:
            return None
        return self.drift.observe(name, decision).drifted

    def swap_meter(
        self,
        meter: Union[CapacityMeter, Dict[str, Any]],
        *,
        version: Optional[int] = None,
    ) -> StagedSwap:
        """Stage a hot-swap to a retrained meter on every shard.

        Must be called at a pipe-idle point (between :meth:`push` /
        :meth:`replay` / :meth:`advance` calls — anywhere user code
        runs).  One ``(version, effective tick)`` pair is broadcast to
        all shards, so the swap lands at the same window boundary
        everywhere and the merged stream is bit-identical to the
        single-process service staging the same swap at the same tick.
        A worker that crashes during the broadcast is recovered and the
        log re-staged, so the swap is never half-applied.
        """
        payload = (
            meter.to_payload()
            if isinstance(meter, CapacityMeter)
            else dict(meter)
        )
        if version is None:
            top = self._base_meter_version
            for swap, _ in self._swap_log:
                top = max(top, swap.version)
            version = top + 1
        effective = next_window_boundary(self.ticks, self._window)
        staged = StagedSwap(
            version=version, effective_tick=effective, payload=payload
        )
        # log before broadcasting: recovery inside _call_live must
        # already see this entry to re-stage it on a respawned worker
        self._swap_log.append((staged, self.ticks))
        self._call_live(
            _shard_stage_swap,
            lambda worker: (staged.payload, staged.version, staged.effective_tick),
        )
        self._sync_version(self.ticks)
        return staged

    def _restage_swaps(self, worker: int, base_version: int) -> None:
        """Re-stage logged swaps newer than ``base_version`` on ``worker``.

        Runs right after a respawn, before any replay/attach traffic,
        so the recovered shard installs each swap at exactly the tick
        the uninterrupted run did.  Raises ``WorkerError`` on failure —
        the caller's recovery loop owns the respawn budget.
        """
        for swap, _ in self._swap_log:
            if swap.version <= base_version:
                continue
            self.pool.submit(
                worker,
                _shard_stage_swap,
                swap.payload,
                swap.version,
                swap.effective_tick,
            )
            self.pool.result(worker, None)

    def supervisor_stats(self) -> Dict[str, Any]:
        """Operational summary of the self-healing machinery."""
        return {
            "respawns": list(self._respawns),
            "lost": sorted(self._lost),
            "lost_reasons": dict(self._lost_reasons),
            "checkpoint_ticks": self._ckpt_ticks,
            "faults_fired": len(self._fired),
            "held_synthesized": self._held_emitted,
            "meter_version": self.meter_version,
        }

    def _note_failure(self, worker: int, exc: WorkerError) -> None:
        if OBS.enabled:
            kind = "timeout" if isinstance(exc, WorkerTimeout) else "crash"
            OBS.inc(
                "repro_shard_worker_failures_total",
                help="worker crashes and hang timeouts seen by the "
                "shard supervisor",
                kind=kind,
            )

    def _mark_lost(self, worker: int, reason: str) -> None:
        if worker in self._lost:
            return
        self._lost.add(worker)
        self._lost_reasons[worker] = reason
        if OBS.enabled:
            OBS.inc(
                "repro_shard_workers_lost_total",
                help="shards abandoned to degraded-merge serving",
            )

    def _recovery_source(self) -> Tuple[Optional[str], int, int]:
        """(resume dir, tick base, meter version) of the freshest state.

        Preference order: last recovery checkpoint > the directory this
        service itself resumed from > cold rebuild from the broadcast
        meter payload (base 0).  The meter version says which swaps the
        source's tables already contain, so recovery re-stages exactly
        the newer ones.
        """
        if self._ckpt_path is not None:
            return str(self._ckpt_path), self._ckpt_ticks, self._ckpt_meter_version
        if self._resume_dir is not None:
            return self._resume_dir, self._resume_base, self._base_meter_version
        # __init__ guaranteed a meter payload exists (original version)
        return None, 0, self._base_meter_version

    def _buffered(self, base: int, upto: int) -> Optional[List[IntervalRecord]]:
        """Records for ticks ``base+1 .. upto``; None on a buffer gap."""
        if upto <= base:
            return []
        records = [
            record
            for tick, record in self._replay_buffer
            if base < tick <= upto
        ]
        if len(records) != upto - base:
            return None
        return records

    def _buffer_records(self, chunk: _Chunk) -> None:
        for offset, record in enumerate(chunk.records):
            self._replay_buffer.append((chunk.start + offset, record))

    def _recover_worker(self, worker: int, upto: int) -> bool:
        """Rebuild ``worker``'s shard bit-identically through ``upto``.

        Respawns the process, resumes the shard from the freshest
        source, and replays the intervening ticks from the in-parent
        buffer.  Returns False — marking the worker lost — when
        recovery is disabled, the respawn budget is exhausted, or the
        buffer cannot cover the gap.
        """
        if not self._recover:
            self._mark_lost(worker, "recovery disabled")
            return False
        t0 = time.monotonic()
        while self._respawns[worker] < self._max_respawns:
            self._respawns[worker] += 1
            if OBS.enabled:
                OBS.inc(
                    "repro_shard_respawns_total",
                    help="worker processes respawned by the supervisor",
                )
            source, base, base_version = self._recovery_source()
            records = self._buffered(base, upto)
            if records is None:
                self._mark_lost(
                    worker,
                    f"replay buffer cannot cover ticks "
                    f"{base + 1}..{upto}",
                )
                return False
            try:
                common = dict(self._common)
                common["resume_dir"] = source
                self.pool.respawn(worker, initargs=(common,))
                # swaps newer than the source's tables must be staged
                # before the replay so they install at the right ticks
                self._restage_swaps(worker, base_version)
                if records:
                    # rebuild replay: decisions recomputed and discarded
                    self.pool.submit(worker, _shard_replay_chunk, records)
                    self.pool.result_bytes(worker, None)
                if OBS.enabled:
                    OBS.observe(
                        "repro_shard_recovery_seconds",
                        time.monotonic() - t0,
                        help="wall-clock latency of shard crash recovery",
                    )
                return True
            except WorkerError as exc:
                self._note_failure(worker, exc)
                continue
        self._mark_lost(worker, "respawn budget exhausted")
        return False

    def _recover_live(self, worker: int) -> bool:
        """Live-mode recovery: rebuild and re-simulate from zero.

        A simulator cannot be checkpointed mid-flight, so the shard is
        rebuilt from its *original* source, the factory re-attached,
        and the sim re-advanced to the last merged slice boundary
        (captures discarded) — bit-identical because everything is
        seeded from the site specs.
        """
        if not self._recover:
            self._mark_lost(worker, "recovery disabled")
            return False
        t0 = time.monotonic()
        while self._respawns[worker] < self._max_respawns:
            self._respawns[worker] += 1
            if OBS.enabled:
                OBS.inc(
                    "repro_shard_respawns_total",
                    help="worker processes respawned by the supervisor",
                )
            try:
                self.pool.respawn(worker, initargs=(self._common,))
                # the shard rebuilt from its original source: stage the
                # whole swap log again before re-simulating, so each
                # swap re-installs at the tick the original run used
                self._restage_swaps(worker, self._base_meter_version)
                if self._live_factory is not None:
                    self.pool.submit(
                        worker,
                        _shard_attach,
                        self._live_factory,
                        self._live_args,
                    )
                    self.pool.result(worker, None)
                    if self._live_now > 0.0:
                        self.pool.submit(worker, _shard_advance, self._live_now)
                        self.pool.result(worker, None)  # discard captures
                if OBS.enabled:
                    OBS.observe(
                        "repro_shard_recovery_seconds",
                        time.monotonic() - t0,
                        help="wall-clock latency of shard crash recovery",
                    )
                return True
            except WorkerError as exc:
                self._note_failure(worker, exc)
                continue
        self._mark_lost(worker, "respawn budget exhausted")
        return False

    def _recover_any(self, worker: int) -> bool:
        """Mode-appropriate recovery through the current tick."""
        if self._live_factory is not None:
            return self._recover_live(worker)
        return self._recover_worker(worker, self.ticks)

    def _due_fault(self, worker: int, upto: int) -> Optional[ProcessFaultSpec]:
        """Next unfired chaos spec for ``worker`` due by tick ``upto``."""
        if self._plan is None:
            return None
        for index, spec in enumerate(self._plan.faults):
            if index in self._fired or spec.worker != worker:
                continue
            if spec.tick <= upto:
                self._fired.add(index)
                if OBS.enabled:
                    OBS.inc(
                        "repro_shard_process_faults_total",
                        help="process chaos faults injected",
                        kind=spec.kind,
                    )
                return spec
        return None

    def _maybe_checkpoint(self) -> None:
        """Periodic recovery checkpoint at the pipe-idle point."""
        if not self._recover or self._supervise_ticks <= 0:
            return
        base = self._ckpt_ticks if self._ckpt_ticks >= 0 else self._resume_base
        if self.ticks - base < self._supervise_ticks:
            return
        if self._ckpt_root is None:
            self._ckpt_root = Path(
                tempfile.mkdtemp(prefix="repro-shard-supervise-")
            )
            self._ckpt_owned = True
        target = self._ckpt_root / f"ticks-{self.ticks}"
        t0 = time.monotonic()
        try:
            self.save(target)
        except WorkerError:
            # a crash mid-checkpoint was handled (or the worker marked
            # lost) inside save(); skip this period, keep serving
            return
        previous = self._ckpt_path
        self._ckpt_path, self._ckpt_ticks = target, self.ticks
        self._ckpt_meter_version = self.meter_version
        if previous is not None:
            shutil.rmtree(previous, ignore_errors=True)
        if OBS.enabled:
            OBS.observe_span(
                "shard_supervise_checkpoint", time.monotonic() - t0
            )

    def _synthesize(self, worker: int, tick: int) -> List[SiteDecision]:
        """Held decisions for a lost shard's sites at a window boundary.

        Exactly the monitor's quorum-failure fallback lifted to fleet
        level: last decision re-emitted with geometrically decayed
        counter value, no synopsis votes, everyone abstained — so
        ``MonitorDecision.confidence`` is 0.0 and AIMD gates freeze at
        their floor.  Sites with no prior decision are skipped (there
        is nothing to hold).  ``truth``/``stats`` are the stale values
        from the last real window: a blackout has no fresh telemetry.
        """
        if self._window <= 0 or tick % self._window != 0:
            return []
        out: List[SiteDecision] = []
        for spec in self.shards[worker]:
            last = self._last_decisions.get(spec.name)
            if last is None:
                continue
            streak = self._held_streaks.get(spec.name, 0) + 1
            self._held_streaks[spec.name] = streak
            prev = last.prediction
            total = len(prev.synopsis_votes) or len(prev.abstained)
            prediction = CoordinatedPrediction(
                state=prev.state,
                bottleneck=prev.bottleneck,
                gpv=prev.gpv,
                hc=prev.hc * self._confidence_decay,
                confident=False,
                synopsis_votes=(),
                degraded=True,
                abstained=tuple(range(total)),
            )
            span = last.t_end - last.t_start
            decision = MonitorDecision(
                index=last.index + 1,
                t_start=last.t_start + span,
                t_end=last.t_end + span,
                prediction=prediction,
                truth=last.truth,
                truth_bottleneck=last.truth_bottleneck,
                stats=last.stats,
                held=True,
                quality=last.quality,
            )
            self._last_decisions[spec.name] = decision
            self._held_emitted += 1
            if OBS.enabled:
                OBS.inc(
                    "repro_shard_held_synthesized_total",
                    help="held decisions synthesized for lost shards",
                )
            out.append((spec.name, decision))
        return out

    # ------------------------------------------------------------------
    # replay mode
    # ------------------------------------------------------------------
    def _submit_chunk(
        self, worker: int, chunk: _Chunk, fault: Optional[ProcessFaultSpec]
    ) -> None:
        if fault is not None and fault.kind == "hang":
            self.pool.submit(worker, _shard_hang)
            return
        if fault is not None and fault.kind == "kill":
            # kill BEFORE submitting: the worker is idle at dispatch
            # (strict request-response), so a pre-submit SIGKILL always
            # loses this chunk.  Killing after submit races the worker —
            # a fast worker can finish the chunk before the signal
            # lands, which makes degraded (no-recover) campaigns
            # nondeterministic about which window goes HELD.
            pid = self.pool.pid(worker)
            if pid is not None:
                os.kill(pid, signal.SIGKILL)
        if fault is not None and fault.kind == "slow":
            self.pool.submit(
                worker, _shard_replay_chunk_slow, chunk.records, fault.delay
            )
        else:
            self.pool.submit(worker, _shard_replay_chunk, chunk.records)

    def _dispatch_chunk(self, chunk: _Chunk) -> None:
        for worker in range(self.pool.size):
            if worker in self._lost:
                continue
            fault = self._due_fault(worker, chunk.end)
            try:
                self._submit_chunk(worker, chunk, fault)
            except WorkerCrash as exc:
                # died since its last reply; leave the slot empty —
                # collection will detect the dead worker and recover
                self._note_failure(worker, exc)

    def _recover_and_redo(self, worker: int, chunk: _Chunk) -> Optional[bytes]:
        """Recover ``worker`` and re-run the in-flight chunk."""
        while self._recover_worker(worker, chunk.start - 1):
            try:
                self.pool.submit(worker, _shard_replay_chunk, chunk.records)
                return self.pool.result_bytes(worker, self._recv_timeout)
            except (WorkerCrash, WorkerTimeout) as exc:
                self._note_failure(worker, exc)
        return None

    def _collect_chunk(self, chunk: _Chunk) -> Dict[int, Optional[bytes]]:
        """Pull chunk replies off every pipe, recovering as needed.

        Pipes are strictly per-worker, so one worker's crash never
        desyncs another's request-response stream.  Advances the global
        tick counter and the replay buffer — both must reflect this
        chunk before the next checkpoint or recovery looks at them.
        """
        blobs: Dict[int, Optional[bytes]] = {}
        for worker in range(self.pool.size):
            if worker in self._lost:
                blobs[worker] = None
                continue
            try:
                blobs[worker] = self.pool.result_bytes(
                    worker, self._recv_timeout
                )
            except (WorkerCrash, WorkerTimeout) as exc:
                self._note_failure(worker, exc)
                blobs[worker] = self._recover_and_redo(worker, chunk)
        self.ticks = chunk.end
        self._buffer_records(chunk)
        return blobs

    def _emit_chunk(
        self, chunk: _Chunk, blobs: Dict[int, Optional[bytes]]
    ) -> List[SiteDecision]:
        """Merge one chunk: tick-major, shard-major, site-major.

        Lost shards contribute synthesized held decisions at their
        window boundaries, in the same shard-order slot their real
        decisions would occupy.
        """
        decoded: Dict[int, List[List[SiteDecision]]] = {
            worker: self.pool.load_result(blob, worker)
            for worker, blob in blobs.items()
            if blob is not None
        }
        merged: List[SiteDecision] = []
        for offset in range(len(chunk.records)):
            tick = chunk.start + offset
            self._sync_version(tick)
            for worker in range(self.pool.size):
                out = decoded.get(worker)
                if out is None:
                    emitted = self._synthesize(worker, tick)
                    synthesized = True
                else:
                    emitted = out[offset]
                    synthesized = False
                    for name, decision in emitted:
                        self._last_decisions[name] = decision
                        self._held_streaks[name] = 0
                for name, decision in emitted:
                    drifted = (
                        None
                        if synthesized
                        else self._observe_drift(name, decision)
                    )
                    if self._publisher is not None:
                        self._publisher.update(name, decision, drifted=drifted)
                    if self.on_decision is not None:
                        self.on_decision(name, decision)
                    merged.append((name, decision))
        if self._publisher is not None:
            self.snapshot = self._publisher.publish(
                self.ticks,
                tuple(self.lost_sites()),
                meter_version=self.meter_version,
            )
        return merged

    def push(self, record: IntervalRecord) -> List[SiteDecision]:
        """Offer one record to every site, merged like the fleet path."""
        chunk = _Chunk([record], self.ticks + 1, self.ticks + 1)
        self._dispatch_chunk(chunk)
        blobs = self._collect_chunk(chunk)
        return self._emit_chunk(chunk, blobs)

    def replay(
        self, records: Sequence[IntervalRecord]
    ) -> List[SiteDecision]:
        """Replay a recorded stream, chunked, pipelined and supervised.

        Chunk ``k``'s reply blobs are pulled off every pipe and chunk
        ``k + 1`` dispatched *before* chunk ``k`` is unpickled and
        merged, so the parent's merge work overlaps the workers'
        compute.  The pipe-idle instant between collect and dispatch is
        where periodic recovery checkpoints happen; worker crashes and
        hangs during collection trigger bit-identical recovery (or
        degraded-merge synthesis once a worker is lost).
        """
        decisions: List[SiteDecision] = []
        base = self.ticks
        chunks: List[_Chunk] = []
        for start in range(0, len(records), self.chunk_ticks):
            recs = list(records[start : start + self.chunk_ticks])
            chunks.append(
                _Chunk(recs, base + start + 1, base + start + len(recs))
            )
        pending: Optional[_Chunk] = None
        for chunk in chunks:
            if pending is not None:
                # strict request-response per worker: never two chunks
                # queued at once, so a full pipe can't deadlock us
                blobs = self._collect_chunk(pending)
                self._maybe_checkpoint()
                self._dispatch_chunk(chunk)
                decisions.extend(self._emit_chunk(pending, blobs))
            else:
                self._dispatch_chunk(chunk)
            pending = chunk
        if pending is not None:
            blobs = self._collect_chunk(pending)
            decisions.extend(self._emit_chunk(pending, blobs))
        self.sync()
        return decisions

    # ------------------------------------------------------------------
    # supervised control-plane calls (pipes idle, per-worker recovery)
    # ------------------------------------------------------------------
    def _call_one(
        self, worker: int, fn: Callable[..., Any], args: Tuple[Any, ...]
    ) -> Tuple[bool, Any]:
        """Run ``fn`` on one worker, recovering across failures.

        Terminates because every failed iteration consumes at least one
        unit of the worker's respawn budget.
        """
        while True:
            try:
                self.pool.submit(worker, fn, *args)
                return True, self.pool.result(worker, None)
            except (WorkerCrash, WorkerTimeout) as exc:
                self._note_failure(worker, exc)
                if not self._recover_any(worker):
                    return False, None

    def _call_live(
        self,
        fn: Callable[..., Any],
        argfn: Callable[[int], Tuple[Any, ...]],
    ) -> Dict[int, Any]:
        """Run ``fn(*argfn(w))`` on every live worker; worker → result.

        Submits in parallel, collects in worker order; a worker that
        fails is recovered (mode-appropriately) and retried, or marked
        lost and omitted from the result.
        """
        live = [w for w in range(self.pool.size) if w not in self._lost]
        results: Dict[int, Any] = {}
        submitted: List[int] = []
        failed: List[int] = []
        for worker in live:
            try:
                self.pool.submit(worker, fn, *argfn(worker))
                submitted.append(worker)
            except WorkerCrash as exc:
                self._note_failure(worker, exc)
                failed.append(worker)
        for worker in submitted:
            try:
                results[worker] = self.pool.result(worker, None)
            except (WorkerCrash, WorkerTimeout) as exc:
                self._note_failure(worker, exc)
                failed.append(worker)
        for worker in failed:
            ok, value = self._call_one(worker, fn, argfn(worker))
            if ok:
                results[worker] = value
        return results

    # ------------------------------------------------------------------
    # live mode (driven by the CLI)
    # ------------------------------------------------------------------
    def attach_factory(
        self,
        factory: Callable[..., Tuple[Any, float]],
        *factory_args: Any,
    ) -> float:
        """Start live sampling on every shard; returns max duration.

        ``factory`` must be a module-level callable; it runs once per
        worker as ``factory(shard_service, *factory_args)``, builds the
        shard's simulator + websites, attaches them, and returns
        ``(sim, duration)``.  The factory is retained so crash recovery
        can rebuild a shard's simulator from scratch.
        """
        self._live_factory = factory
        self._live_args = factory_args
        self._live_now = 0.0
        outs = self._call_live(
            _shard_attach, lambda worker: (factory, factory_args)
        )
        return max((float(d) for d in outs.values()), default=0.0)

    def _submit_advance(
        self, worker: int, until: float, fault: Optional[ProcessFaultSpec]
    ) -> None:
        if fault is not None and fault.kind == "hang":
            self.pool.submit(worker, _shard_hang)
            return
        if fault is not None and fault.kind == "kill":
            # pre-submit kill, same reasoning as _submit_chunk: the
            # idle worker deterministically loses the whole advance
            pid = self.pool.pid(worker)
            if pid is not None:
                os.kill(pid, signal.SIGKILL)
        if fault is not None and fault.kind == "slow":
            self.pool.submit(worker, _shard_advance_slow, until, fault.delay)
        else:
            self.pool.submit(worker, _shard_advance, until)

    def _recover_and_advance(
        self, worker: int, until: float
    ) -> Optional[Tuple[List[LiveDecision], int]]:
        while self._recover_live(worker):
            try:
                self.pool.submit(worker, _shard_advance, until)
                out = self.pool.result(worker, None)
                return (list(out[0]), int(out[1]))
            except (WorkerCrash, WorkerTimeout) as exc:
                self._note_failure(worker, exc)
        return None

    def advance(self, until: float) -> List[Tuple[str, MonitorDecision, float]]:
        """Advance every shard's simulator to ``until``; merged stream.

        Returns ``(site name, decision, gate admission probability)``
        triples ordered by ``(tick, shard, within-shard order)`` — the
        order the single-process live loop emits them.  Chaos faults
        due by the current tick fire at this slice boundary; a crashed
        or hung shard is re-simulated from zero and re-advanced, so the
        merged stream stays bit-identical to a fault-free run.  Lost
        shards contribute synthesized held decisions at their window
        boundaries (gate probability frozen at its last value).
        """
        previous_ticks = self.ticks
        live = [w for w in range(self.pool.size) if w not in self._lost]
        redo: List[int] = []
        for worker in live:
            fault = self._due_fault(worker, self.ticks)
            try:
                self._submit_advance(worker, until, fault)
            except WorkerCrash as exc:
                self._note_failure(worker, exc)
                redo.append(worker)
        outs: Dict[int, Tuple[List[LiveDecision], int]] = {}
        for worker in live:
            if worker in redo:
                recovered = self._recover_and_advance(worker, until)
                if recovered is not None:
                    outs[worker] = recovered
                continue
            try:
                out = self.pool.result(worker, self._recv_timeout)
                outs[worker] = (list(out[0]), int(out[1]))
            except (WorkerCrash, WorkerTimeout) as exc:
                self._note_failure(worker, exc)
                recovered = self._recover_and_advance(worker, until)
                if recovered is not None:
                    outs[worker] = recovered
        ticks = max(
            (out[1] for out in outs.values()), default=previous_ticks
        )
        self.ticks = max(self.ticks, ticks)
        self._live_now = until
        events: List[Tuple[int, int, int, LiveDecision]] = []
        for worker, (drained, _) in sorted(outs.items()):
            for sequence, item in enumerate(drained):
                events.append((int(item[0]), worker, sequence, item))
        for worker in sorted(self._lost):
            sequence = 0
            for tick in range(previous_ticks + 1, self.ticks + 1):
                for name, decision in self._synthesize(worker, tick):
                    events.append(
                        (
                            tick,
                            worker,
                            sequence,
                            (
                                tick,
                                name,
                                decision,
                                self._last_gate_p.get(name, 0.0),
                            ),
                        )
                    )
                    sequence += 1
        events.sort(key=lambda event: (event[0], event[1], event[2]))
        merged: List[Tuple[str, MonitorDecision, float]] = []
        for tick, worker, _, (_, name, decision, gate_p) in events:
            self._sync_version(tick)
            lost = worker in self._lost
            if not lost:
                self._last_decisions[name] = decision
                self._held_streaks[name] = 0
                self._last_gate_p[name] = float(gate_p)
            drifted = None if lost else self._observe_drift(name, decision)
            if self._publisher is not None:
                # lost shards: probability stays frozen at its last
                # published value (the synthesized gate_p may be a 0.0
                # placeholder when no real decision preceded the loss)
                self._publisher.update(
                    name,
                    decision,
                    None if lost else float(gate_p),
                    drifted=drifted,
                )
            if self.on_decision is not None:
                self.on_decision(name, decision)
            merged.append((name, decision, float(gate_p)))
        self._sync_version(self.ticks)
        if self._publisher is not None:
            self.snapshot = self._publisher.publish(
                self.ticks,
                tuple(self.lost_sites()),
                meter_version=self.meter_version,
            )
        return merged

    def detach(self) -> None:
        """Stop live sampling on every live shard."""
        self._call_live(_shard_detach, lambda worker: ())

    # ------------------------------------------------------------------
    # checkpoint / inspection
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        """Write a ``"sharded"``-layout service checkpoint.

        Workers write their ``fleet.monitor.<i>.json`` files in
        parallel (each atomically); the parent merges their manifest
        fragments — gate, injector and watchdog states keyed by site,
        in global site order — and writes ``service.json`` last, so a
        reader never observes a manifest pointing at missing shards.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        fragments = self._call_live(
            _shard_save, lambda worker: (str(target), worker)
        )
        manifest: Dict[str, Any] = {
            "format": SERVICE_FORMAT,
            "layout": "sharded",
            "ticks": self.ticks,
            "meter_version": self.meter_version,
            "shards": [
                {"file": fragment["file"], "sites": fragment["sites"]}
                for _, fragment in sorted(fragments.items())
            ],
            "gates": {},
            "injectors": {},
            "watchdogs": {},
        }
        for _, fragment in sorted(fragments.items()):
            manifest["gates"].update(fragment["gates"])
            manifest["injectors"].update(fragment["injectors"])
            manifest["watchdogs"].update(fragment["watchdogs"])
        if self._lost:
            # recorded so a later resume can say *why* these sites have
            # no state, instead of a bare missing-gate error
            manifest["lost_sites"] = self.lost_sites()
        pending = self._pending_swap()
        if pending is not None:
            manifest["pending_swap"] = pending.to_manifest()
        if self.drift is not None:
            manifest["drift"] = self.drift.state_dict()
        write_json_atomic(target / "service.json", manifest)
        return target

    def sync(self) -> None:
        """Materialize cohort members on every live shard."""
        self._call_live(_shard_sync, lambda worker: ())

    def gate_states(self) -> Dict[str, Dict[str, Any]]:
        """Live sites' gate ``state_dict``, in global site order."""
        merged: Dict[str, Dict[str, Any]] = {}
        for _, states in sorted(
            self._call_live(_shard_gate_states, lambda worker: ()).items()
        ):
            merged.update(states)
        return merged

    def monitor_states(self) -> Dict[str, Dict[str, Any]]:
        """Live sites' post-sync monitor state + coordinator tables."""
        merged: Dict[str, Dict[str, Any]] = {}
        for _, states in sorted(
            self._call_live(_shard_monitor_states, lambda worker: ()).items()
        ):
            merged.update(states)
        return merged

    def summary_rows(self) -> List[str]:
        """Per-site status blocks for live sites, in global site order."""
        rows: List[str] = []
        for _, shard_rows in sorted(
            self._call_live(_shard_summary, lambda worker: ()).items()
        ):
            rows.extend(shard_rows)
        return rows

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def merge_observability(self) -> int:
        """Fold every worker's metrics registry into the parent's.

        Counters and histograms sum, gauges are last-write-wins (in
        worker order).  Zero-cost when observability is disabled: no
        broadcast, no pipe traffic.  Returns merged sample count.
        """
        if not OBS.enabled:
            return 0
        merged = 0
        for _, lines in sorted(
            self._call_live(_shard_obs_lines, lambda worker: ()).items()
        ):
            if lines:
                merged += merge_snapshot(OBS.registry, lines)
        return merged

    def close(self) -> None:
        """Merge worker metrics, then stop the workers (idempotent).

        Also removes the supervisor's private recovery-checkpoint
        directory when it created one.
        """
        if self._closed:
            return
        try:
            self.merge_observability()
        finally:
            self._closed = True
            self.pool.close()
            if self._ckpt_owned and self._ckpt_root is not None:
                shutil.rmtree(self._ckpt_root, ignore_errors=True)

    def __enter__(self) -> "ShardedCapacityService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

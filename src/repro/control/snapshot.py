"""Lock-free published snapshots of the fleet's gate state.

The HTTP front end (:mod:`repro.frontend`) must answer admit queries
with p99 latency decoupled from window-compute time, while telemetry
folding and batched inference keep running on the service's tick loop
(a background thread, or worker processes behind
:class:`~repro.control.shard.ShardedCapacityService`).  Sharing the
live gate objects across threads would need a lock on the decision
path; instead the service *publishes*: at the end of every flush it
builds an immutable :class:`FleetSnapshot` and swaps it into
``service.snapshot`` with a single reference assignment — atomic under
the GIL, so a reader on any thread always sees a complete, consistent
snapshot (possibly one window stale, never torn).

Publication is opt-in (:meth:`CapacityService.enable_snapshots`):
the default replay/serve paths pay nothing, keeping the fleet-scale
benchmark floors untouched.

``lost_sites`` carries the sharded service's degraded-merge state
(PR 8): sites whose shard worker is gone are being served held
decisions with decaying confidence — a telemetry blackout — and a
health endpoint must report that instead of letting an orchestrator
route traffic to a blind meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple

from ..core.monitor import MonitorDecision

__all__ = ["FleetSnapshot", "SiteSnapshot", "SnapshotPublisher"]


@dataclass(frozen=True)
class SiteSnapshot:
    """One site's published admission state, immutable.

    ``window_index`` is -1 until the site's first decided window;
    ``degraded`` marks decisions below full telemetry confidence
    (held quorum failures, lost-shard synthesis) — the AIMD gate holds
    its probability on those, and the front end surfaces the flag.
    ``drifted`` carries the drift detector's latched verdict for the
    site (always False when drift detection is off).
    """

    name: str
    admission_probability: float
    confidence: float
    overloaded: bool
    held: bool
    degraded: bool
    window_index: int
    drifted: bool = False


@dataclass(frozen=True)
class FleetSnapshot:
    """Immutable point-in-time view of every site's gate state.

    ``seq`` increments per publication (readers can detect staleness
    cheaply); ``tick`` is the service tick counter at publish time;
    ``lost_sites`` names sites currently served by degraded-merge
    synthesis only (their shard worker is gone); ``meter_version`` is
    the installed :class:`~repro.drift.MeterHandle` version (1 until
    the first hot-swap).
    """

    seq: int
    tick: int
    sites: Mapping[str, SiteSnapshot] = field(default_factory=dict)
    lost_sites: Tuple[str, ...] = ()
    meter_version: int = 1

    def __post_init__(self) -> None:
        # deep immutability: readers on other threads must never see a
        # snapshot change under them, however it was constructed
        object.__setattr__(self, "sites", MappingProxyType(dict(self.sites)))

    @property
    def healthy(self) -> bool:
        """False while any site is served from a lost shard."""
        return not self.lost_sites

    @property
    def warmed(self) -> bool:
        """Has any site decided a real window yet?

        ``enable_snapshots()`` publishes an initial seed snapshot
        before the first flush so readers never see ``None``; until a
        real decision lands every entry still carries
        ``window_index == -1`` and a health endpoint should report
        *warming up*, not an empty-but-healthy fleet.
        """
        return any(entry.window_index >= 0 for entry in self.sites.values())

    @property
    def drifted_sites(self) -> Tuple[str, ...]:
        """Sites whose drift verdict is currently latched."""
        return tuple(
            name
            for name, entry in sorted(self.sites.items())
            if entry.drifted
        )


def _entry(
    name: str,
    probability: float,
    decision: Optional[MonitorDecision],
    drifted: bool = False,
) -> SiteSnapshot:
    if decision is None:
        return SiteSnapshot(
            name=name,
            admission_probability=probability,
            confidence=1.0,
            overloaded=False,
            held=False,
            degraded=False,
            window_index=-1,
            drifted=drifted,
        )
    return SiteSnapshot(
        name=name,
        admission_probability=probability,
        confidence=decision.confidence,
        overloaded=decision.prediction.overloaded,
        held=decision.held,
        degraded=decision.prediction.degraded,
        window_index=decision.index,
        drifted=drifted,
    )


class SnapshotPublisher:
    """Builds successive :class:`FleetSnapshot` values for a service.

    Not thread-safe — only the service's tick thread calls
    :meth:`update`/:meth:`publish`; readers consume the returned
    immutable snapshots.  Sites keep their last entry until their next
    decision, so a snapshot always covers the whole fleet.
    """

    def __init__(self, initial: Mapping[str, float]) -> None:
        self._seq = 0
        self._entries: Dict[str, SiteSnapshot] = {
            name: _entry(name, probability, None)
            for name, probability in initial.items()
        }

    def update(
        self,
        name: str,
        decision: MonitorDecision,
        probability: Optional[float] = None,
        drifted: Optional[bool] = None,
    ) -> None:
        """Fold one decided window.

        ``probability=None`` keeps the old probability and
        ``drifted=None`` keeps the old drift flag, so producers that
        don't track one of the two never clobber it.
        """
        previous = self._entries.get(name)
        if probability is None:
            probability = (
                previous.admission_probability if previous is not None else 1.0
            )
        if drifted is None:
            drifted = previous.drifted if previous is not None else False
        self._entries[name] = _entry(name, float(probability), decision, drifted)

    def publish(
        self,
        tick: int,
        lost_sites: Tuple[str, ...] = (),
        meter_version: int = 1,
    ) -> FleetSnapshot:
        """A fresh immutable snapshot of every site's current entry."""
        self._seq += 1
        return FleetSnapshot(
            seq=self._seq,
            tick=tick,
            sites=dict(self._entries),
            lost_sites=lost_sites,
            meter_version=meter_version,
        )

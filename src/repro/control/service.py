"""Multi-site capacity service: N monitored, gated websites, one loop.

The paper measures one website; a hosting platform runs many.
:class:`CapacityService` generalizes the closed loop to N independent
sites sharing one trained :class:`~repro.core.capacity.CapacityMeter`:
every site gets a *fresh clone* of the meter (its own speculative
history and online adaptation — clones are made through
:func:`~repro.faults.campaign.fresh_monitor`), its own
:class:`~repro.control.admission.AimdGate`, and optionally its own
:class:`~repro.faults.injector.FaultInjector` +
:class:`~repro.faults.watchdog.SamplerWatchdog`, so degraded-telemetry
scenarios replay per site exactly as ``repro faults`` replays them for
one.

Synopsis inference is *batched across sites*: each tick every site
folds its record (:meth:`OnlineCapacityMonitor.fold`), and when windows
complete the service stacks the clean windows' attribute rows into one
matrix per tier synopsis and calls
:meth:`~repro.core.synopsis.PerformanceSynopsis.predict_batch` once —
valid because all clones share identical trained synopses (online
adaptation touches only the coordinator tables).  Each site's
:meth:`~repro.core.monitor.OnlineCapacityMonitor.decide` then consumes
its precomputed vote vector, bit-identical to the per-site path
(``batch_votes=False``); degraded windows always fall back to the
per-site quorum path.

Checkpoint/resume reuses :mod:`repro.faults.checkpoint`: one monitor
checkpoint per site plus a service manifest with the gate states,
written atomically.  Fault injectors are *not* checkpointed — a resumed
service restarts whatever plans its specs carry from tick zero of the
resumed stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.capacity import CapacityMeter
from ..core.monitor import MonitorDecision, OnlineCapacityMonitor
from ..faults.campaign import fresh_monitor
from ..faults.checkpoint import (
    load_checkpoint,
    read_json_checkpoint,
    save_checkpoint,
    write_json_atomic,
)
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.watchdog import SamplerWatchdog
from ..obs import OBS
from ..simulator.engine import Simulator
from ..simulator.website import MultiTierWebsite
from ..telemetry.sampler import IntervalRecord, TelemetrySampler, WindowStats
from ..telemetry.streaming import StreamingWindow
from .admission import AimdGate, GatedFrontEnd

__all__ = [
    "SERVICE_FORMAT",
    "CapacityService",
    "SiteDecision",
    "SiteSpec",
]

SERVICE_FORMAT = "repro.service-checkpoint/1"

#: (site name, decision) pair emitted by :meth:`CapacityService.push`
SiteDecision = Tuple[str, MonitorDecision]


@dataclass(frozen=True)
class SiteSpec:
    """Configuration of one hosted website in a :class:`CapacityService`.

    ``plan`` optionally injects a deterministic fault schedule into this
    site's telemetry stream (the other sites stay clean); the gate knobs
    mirror :class:`~repro.control.admission.AimdGate`.
    """

    name: str
    seed: int = 0
    plan: Optional[FaultPlan] = None
    decrease_factor: float = 0.65
    increase_step: float = 0.05
    min_admission: float = 0.05
    confidence_floor: float = 0.75

    def make_gate(self) -> AimdGate:
        return AimdGate(
            decrease_factor=self.decrease_factor,
            increase_step=self.increase_step,
            min_admission=self.min_admission,
            confidence_floor=self.confidence_floor,
            seed=self.seed,
            site=self.name,
        )


class SiteRuntime:
    """One site's live pieces: monitor, gate, optional fault path."""

    def __init__(
        self,
        spec: SiteSpec,
        monitor: OnlineCapacityMonitor,
        gate: AimdGate,
        *,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
    ) -> None:
        self.spec = spec
        self.monitor = monitor
        self.gate = gate
        #: windows folded this tick, awaiting the batched decide pass
        self.pending: List[StreamingWindow] = []
        self.injector: Optional[FaultInjector] = None
        self.watchdog: Optional[SamplerWatchdog] = None
        if spec.plan is not None:
            self.injector = FaultInjector(spec.plan)
            self.injector.downstream = self._deliver
            if use_watchdog:
                self.watchdog = SamplerWatchdog(
                    monitor.meter.tiers,
                    self.injector.rearm,
                    stall_ticks=stall_ticks,
                )

    @property
    def name(self) -> str:
        return self.spec.name

    def offer(self, record: IntervalRecord) -> None:
        """Route one interval record through this site's fault path."""
        if self.injector is not None:
            self.injector.push(record)
        else:
            self._deliver(record)

    def _deliver(self, record: IntervalRecord) -> None:
        if self.watchdog is not None:
            self.watchdog.observe(record)
        window = self.monitor.fold(record)
        if window is not None:
            self.pending.append(window)


class CapacityService:
    """N independent capacity-monitored websites behind AIMD gates.

    Drive it in replay mode (:meth:`push` / :meth:`replay` with
    recorded interval records — every site sees the same stream through
    its own fault plan) or live mode (:meth:`attach` with one simulator
    and per-site websites).  ``on_decision`` receives
    ``(site_name, decision)`` for every decided window, in deterministic
    site order.
    """

    def __init__(
        self,
        meter: CapacityMeter,
        sites: Sequence[SiteSpec],
        *,
        adapt: bool = False,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        min_votes: Optional[int] = None,
        max_imputed_fraction: float = 0.5,
        confidence_decay: float = 0.5,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
        batch_votes: bool = True,
        retain_decisions: Optional[int] = None,
        on_decision: Optional[Callable[[str, MonitorDecision], None]] = None,
    ) -> None:
        if not sites:
            raise ValueError("CapacityService needs at least one site")
        if labeler is None:
            labeler = meter.labeler
        self._init_base(batch_votes=batch_votes, on_decision=on_decision)
        payload = meter.to_payload()  # serialize once, clone N times
        for spec in sites:
            monitor = fresh_monitor(
                meter,
                labeler,
                adapt=adapt,
                min_votes=min_votes,
                max_imputed_fraction=max_imputed_fraction,
                confidence_decay=confidence_decay,
                payload=payload,
                retain_decisions=retain_decisions,
            )
            self._add_site(
                spec,
                monitor,
                spec.make_gate(),
                use_watchdog=use_watchdog,
                stall_ticks=stall_ticks,
            )

    # ------------------------------------------------------------------
    # construction plumbing (shared with resume())
    # ------------------------------------------------------------------
    def _init_base(
        self,
        *,
        batch_votes: bool,
        on_decision: Optional[Callable[[str, MonitorDecision], None]],
    ) -> None:
        self.sites: List[SiteRuntime] = []
        self.batch_votes = batch_votes
        self.on_decision = on_decision
        self.ticks = 0
        self._samplers: List[TelemetrySampler] = []
        self._flush_timer: Optional[Any] = None

    def _add_site(
        self,
        spec: SiteSpec,
        monitor: OnlineCapacityMonitor,
        gate: AimdGate,
        *,
        use_watchdog: bool,
        stall_ticks: int,
    ) -> None:
        if any(site.name == spec.name for site in self.sites):
            raise ValueError(f"duplicate site name {spec.name!r}")
        self.sites.append(
            SiteRuntime(
                spec,
                monitor,
                gate,
                use_watchdog=use_watchdog,
                stall_ticks=stall_ticks,
            )
        )

    def site(self, name: str) -> SiteRuntime:
        """Look one site up by name."""
        for runtime in self.sites:
            if runtime.name == name:
                return runtime
        raise KeyError(f"no site named {name!r}")

    # ------------------------------------------------------------------
    # replay mode
    # ------------------------------------------------------------------
    def push(self, record: IntervalRecord) -> List[SiteDecision]:
        """Offer one record to every site, then decide completed windows."""
        self.ticks += 1
        for site in self.sites:
            site.offer(record)
        return self._flush()

    def replay(
        self, records: Sequence[IntervalRecord]
    ) -> List[SiteDecision]:
        """Replay a recorded stream through all sites."""
        decisions: List[SiteDecision] = []
        for record in records:
            decisions.extend(self.push(record))
        return decisions

    # ------------------------------------------------------------------
    # live mode
    # ------------------------------------------------------------------
    def attach(
        self,
        sim: Simulator,
        websites: Mapping[str, MultiTierWebsite],
        *,
        interval: float = 1.0,
        hpc_noise: float = 0.03,
        os_noise: float = 0.05,
    ) -> None:
        """Sample every site's website live, deciding windows per tick.

        One sampler per site streams into that site's fault path; a
        single flush timer (registered *after* the samplers, so it runs
        last at each shared timestamp) drives the batched decide pass.
        """
        missing = [s.name for s in self.sites if s.name not in websites]
        if missing:
            raise ValueError(f"no website for sites {missing}")
        for site in self.sites:
            self._samplers.append(
                TelemetrySampler(
                    sim,
                    websites[site.name],
                    workload=f"serve-{site.name}",
                    interval=interval,
                    hpc_noise=hpc_noise,
                    os_noise=os_noise,
                    seed=site.spec.seed,
                    on_record=site.offer,
                    retain=0,
                )
            )
        self._flush_timer = sim.every(interval, self._on_tick)

    def front_end(
        self, sim: Simulator, name: str, website: MultiTierWebsite
    ) -> GatedFrontEnd:
        """A website-shaped submit gate bound to ``name``'s AIMD gate."""
        return GatedFrontEnd(sim, self.site(name).gate, website)

    def stop(self) -> None:
        """Stop live sampling and the flush timer."""
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        for sampler in self._samplers:
            sampler.stop()
        self._samplers = []

    def _on_tick(self) -> None:
        self.ticks += 1
        self._flush()

    # ------------------------------------------------------------------
    # the batched decide pass
    # ------------------------------------------------------------------
    def _flush(self) -> List[SiteDecision]:
        pending: List[Tuple[SiteRuntime, StreamingWindow]] = []
        for site in self.sites:
            for window in site.pending:
                pending.append((site, window))
            site.pending = []
        if not pending:
            return []
        votes: List[Optional[Tuple[int, ...]]] = [None] * len(pending)
        if self.batch_votes:
            eligible = [
                i
                for i, (_, window) in enumerate(pending)
                if self._batch_eligible(window)
            ]
            if eligible:
                batched = self._batched_votes(
                    [pending[i][1] for i in eligible]
                )
                for i, vote in zip(eligible, batched):
                    votes[i] = vote
        decisions: List[SiteDecision] = []
        for (site, window), vote in zip(pending, votes):
            if OBS.enabled:
                t0 = OBS.clock()
                decision = site.monitor.decide(window, votes=vote)
                OBS.observe_span(
                    f"site_decide.{site.name}", OBS.clock() - t0
                )
            else:
                decision = site.monitor.decide(window, votes=vote)
            site.gate.update(decision)
            if self.on_decision is not None:
                self.on_decision(site.name, decision)
            decisions.append((site.name, decision))
        return decisions

    @property
    def _synopses(self) -> List[Any]:
        # all clones carry identical trained synopses; the first site's
        # serve as the batch schema and model
        return list(self.sites[0].monitor.meter.coordinator.synopses)

    def _batch_eligible(self, window: StreamingWindow) -> bool:
        """Clean windows only: complete coverage, every attribute present.

        Anything else must go through the per-site
        :meth:`~repro.core.coordinator.CoordinatedPredictor.predict_degraded`
        quorum path, which owns imputation and abstention.
        """
        quality = window.quality
        if quality is not None and not quality.complete:
            return False
        for synopsis in self._synopses:
            tier_metrics = window.metrics.get(synopsis.tier)
            if tier_metrics is None:
                return False
            for attribute in synopsis.attributes:
                if attribute not in tier_metrics:
                    return False
        return True

    def _batched_votes(
        self, windows: Sequence[StreamingWindow]
    ) -> List[Tuple[int, ...]]:
        """One ``predict_batch`` call per synopsis over all windows."""
        synopses = self._synopses
        per_synopsis: List[np.ndarray] = []
        for synopsis in synopses:
            matrix = np.array(
                [
                    [
                        window.metrics[synopsis.tier][attribute]
                        for attribute in synopsis.attributes
                    ]
                    for window in windows
                ],
                dtype=float,
            )
            per_synopsis.append(synopsis.predict_batch(matrix))
        return [
            tuple(int(per_synopsis[j][i]) for j in range(len(synopses)))
            for i in range(len(windows))
        ]

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        """Checkpoint every site's monitor plus the gate manifest.

        Layout: ``<dir>/<site>.monitor.json`` (one full
        :mod:`repro.faults.checkpoint` file per site) and
        ``<dir>/service.json`` (format tag, tick count, per-site gate
        states).  All writes are atomic.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        for site in self.sites:
            save_checkpoint(site.monitor, target / f"{site.name}.monitor.json")
        manifest: Dict[str, object] = {
            "format": SERVICE_FORMAT,
            "ticks": self.ticks,
            "gates": {
                site.name: site.gate.state_dict() for site in self.sites
            },
        }
        write_json_atomic(target / "service.json", manifest)
        return target

    @classmethod
    def resume(
        cls,
        directory: Union[str, Path],
        sites: Sequence[SiteSpec],
        *,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
        batch_votes: bool = True,
        retain_decisions: Optional[int] = None,
        on_decision: Optional[Callable[[str, MonitorDecision], None]] = None,
    ) -> "CapacityService":
        """Rebuild a service exactly where :meth:`save` left it.

        ``sites`` re-supplies the process-local spec objects (fault
        plans and gate knobs don't round-trip through the manifest);
        every spec must have a monitor checkpoint in ``directory``.
        Monitors resume bit-identically (meter payload + run-local
        state); gates resume probability, counters and RNG state.  Fault
        injectors restart their plans from the resumed stream's first
        tick.
        """
        target = Path(directory)
        manifest = read_json_checkpoint(target / "service.json")
        if manifest.get("format") != SERVICE_FORMAT:
            raise ValueError(f"{target} is not a service checkpoint")
        service = cls.__new__(cls)
        service._init_base(batch_votes=batch_votes, on_decision=on_decision)
        gate_states = manifest["gates"]
        for spec in sites:
            if spec.name not in gate_states:
                raise ValueError(
                    f"checkpoint has no gate state for site {spec.name!r}"
                )
            monitor = load_checkpoint(
                target / f"{spec.name}.monitor.json",
                labeler=labeler,
                retain_decisions=retain_decisions,
            )
            gate = spec.make_gate()
            gate.load_state(gate_states[spec.name])
            service._add_site(
                spec,
                monitor,
                gate,
                use_watchdog=use_watchdog,
                stall_ticks=stall_ticks,
            )
        if not service.sites:
            raise ValueError("CapacityService needs at least one site")
        service.ticks = int(manifest["ticks"])
        return service

    # ------------------------------------------------------------------
    def summary_rows(self) -> List[str]:
        """One compact status block per site."""
        rows: List[str] = []
        for site in self.sites:
            counters = site.monitor.counters
            scores = site.monitor.scores()
            stats = site.gate.stats
            rows.append(
                f"site {site.name}: {counters.windows} windows, "
                f"BA {scores['overload_ba']:.3f}, "
                f"{counters.degraded_windows} degraded "
                f"({counters.held_decisions} held)"
            )
            rows.append(
                f"  gate: p={site.gate.admission_probability:.2f}, "
                f"{stats.admitted}/{stats.offered} admitted, "
                f"{stats.overload_signals} overload signals, "
                f"{stats.low_confidence_holds} low-confidence holds"
            )
        return rows

"""Multi-site capacity service: N monitored, gated websites, one loop.

The paper measures one website; a hosting platform runs many.
:class:`CapacityService` generalizes the closed loop to N independent
sites sharing one trained :class:`~repro.core.capacity.CapacityMeter`:
every site gets a *fresh clone* of the meter (its own speculative
history and online adaptation — clones are made through
:func:`~repro.faults.campaign.fresh_monitor`), its own
:class:`~repro.control.admission.AimdGate`, and optionally its own
:class:`~repro.faults.injector.FaultInjector` +
:class:`~repro.faults.watchdog.SamplerWatchdog`, so degraded-telemetry
scenarios replay per site exactly as ``repro faults`` replays them for
one.

Synopsis inference is *batched across sites*: each tick every site
folds its record (:meth:`OnlineCapacityMonitor.fold`), and when windows
complete the service stacks the clean windows' attribute rows into one
matrix per tier synopsis and calls
:meth:`~repro.core.synopsis.PerformanceSynopsis.predict_batch` once —
valid because all clones share identical trained synopses (online
adaptation touches only the coordinator tables).  Each site's
:meth:`~repro.core.monitor.OnlineCapacityMonitor.decide` then consumes
its precomputed vote vector, bit-identical to the per-site path
(``batch_votes=False``); degraded windows always fall back to the
per-site quorum path.

With ``use_fleet=True`` (the default) the remaining per-site Python
loops collapse into the structure-of-arrays
:class:`~repro.control.fleet.FleetState` backend: coordinator tables
and PI moments live in stacked arrays (each site's objects hold views),
per-tick fold work is shared per distinct record object, clean windows
decide in one vectorized pass per flush wave, and AIMD gates move via
:meth:`~repro.control.admission.AimdGate.update_many`.  Degraded
windows and schema-drifted sites drop to the per-site path mid-stream;
because both paths operate on the same memory, every decision stays
bit-identical to ``use_fleet=False`` (pinned in ``tests/test_fleet.py``).

Checkpoint/resume reuses :mod:`repro.faults.checkpoint`: a service
manifest (format tag, tick count, gate states, and — since format v2 —
fault-injector and watchdog state, so resumed campaigns replay their
plans from where they stopped rather than from tick zero) plus either
one monitor checkpoint per site or, when the fleet backend is active,
one fleet-sharded file storing the shared meter template once.  All
writes are atomic; v1 manifests are still read.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.capacity import CapacityMeter
from ..core.monitor import MonitorDecision, OnlineCapacityMonitor
from ..drift.detector import DriftConfig, DriftDetector
from ..drift.handle import MeterHandle, StagedSwap, next_window_boundary
from ..faults.campaign import fresh_monitor
from ..faults.checkpoint import (
    load_checkpoint,
    load_fleet_checkpoint,
    read_json_checkpoint,
    save_checkpoint,
    save_fleet_checkpoint,
    write_json_atomic,
)
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.watchdog import SamplerWatchdog
from ..obs import OBS
from ..simulator.engine import Simulator
from ..simulator.website import MultiTierWebsite
from ..telemetry.sampler import IntervalRecord, TelemetrySampler, WindowStats
from ..telemetry.streaming import StreamingWindow
from .admission import AimdGate, GatedFrontEnd
from .fleet import FleetState
from .snapshot import FleetSnapshot, SnapshotPublisher

__all__ = [
    "SERVICE_FORMAT",
    "CapacityService",
    "SiteDecision",
    "SiteSpec",
]

#: current manifest format: v2 adds fault-injector / watchdog state and
#: the checkpoint layout tag ("per-site" or "fleet")
SERVICE_FORMAT = "repro.service-checkpoint/2"
SERVICE_FORMAT_V1 = "repro.service-checkpoint/1"

#: (site name, decision) pair emitted by :meth:`CapacityService.push`
SiteDecision = Tuple[str, MonitorDecision]


@dataclass(frozen=True)
class SiteSpec:
    """Configuration of one hosted website in a :class:`CapacityService`.

    ``plan`` optionally injects a deterministic fault schedule into this
    site's telemetry stream (the other sites stay clean); the gate knobs
    mirror :class:`~repro.control.admission.AimdGate`.

    ``seed`` is the site's *root* seed.  The AIMD gate's admission RNG
    and the live-mode sampler noise draw from independent
    ``SeedSequence`` substreams spawned off it — feeding one integer to
    both generators (the pre-fix behaviour) correlates admission
    coin-flips with telemetry noise, which is exactly the kind of
    coupling a capacity experiment must not carry.  Replay mode never
    draws from the gate RNG, so recorded-stream goldens are unaffected.
    """

    name: str
    seed: int = 0
    plan: Optional[FaultPlan] = None
    decrease_factor: float = 0.65
    increase_step: float = 0.05
    min_admission: float = 0.05
    confidence_floor: float = 0.75

    def seed_streams(self) -> Tuple[np.random.SeedSequence, int]:
        """(gate substream, sampler seed) derived from the root seed."""
        gate_stream, sampler_stream = np.random.SeedSequence(
            self.seed
        ).spawn(2)
        # samplers derive per-tier child seeds with integer arithmetic,
        # so they get a plain int drawn from their substream
        return gate_stream, int(sampler_stream.generate_state(1)[0])

    @property
    def sampler_seed(self) -> int:
        return self.seed_streams()[1]

    def make_gate(self) -> AimdGate:
        gate_stream, _ = self.seed_streams()
        return AimdGate(
            decrease_factor=self.decrease_factor,
            increase_step=self.increase_step,
            min_admission=self.min_admission,
            confidence_floor=self.confidence_floor,
            seed=gate_stream,
            site=self.name,
        )


class SiteRuntime:
    """One site's live pieces: monitor, gate, optional fault path."""

    def __init__(
        self,
        spec: SiteSpec,
        monitor: OnlineCapacityMonitor,
        gate: AimdGate,
        *,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
    ) -> None:
        self.spec = spec
        self.monitor = monitor
        self.gate = gate
        #: position in the service's site list (fleet array row)
        self.index = 0
        #: windows folded this tick, awaiting the batched decide pass
        self.pending: List[StreamingWindow] = []
        #: when set (fleet fold), delivered records queue here instead
        #: of folding immediately, so the service can group identical
        #: record objects across sites and fold them vectorized
        self._capture: Optional[List[IntervalRecord]] = None
        self.injector: Optional[FaultInjector] = None
        self.watchdog: Optional[SamplerWatchdog] = None
        if spec.plan is not None:
            self.injector = FaultInjector(spec.plan)
            self.injector.downstream = self._deliver
            if use_watchdog:
                self.watchdog = SamplerWatchdog(
                    monitor.meter.tiers,
                    self.injector.rearm,
                    stall_ticks=stall_ticks,
                )

    @property
    def name(self) -> str:
        return self.spec.name

    def offer(self, record: IntervalRecord) -> None:
        """Route one interval record through this site's fault path."""
        if self.injector is not None:
            self.injector.push(record)
        else:
            self._deliver(record)

    def _deliver(self, record: IntervalRecord) -> None:
        if self.watchdog is not None:
            self.watchdog.observe(record)
        if self._capture is not None:
            self._capture.append(record)
            return
        window = self.monitor.fold(record)
        if window is not None:
            self.pending.append(window)


class CapacityService:
    """N independent capacity-monitored websites behind AIMD gates.

    Drive it in replay mode (:meth:`push` / :meth:`replay` with
    recorded interval records — every site sees the same stream through
    its own fault plan) or live mode (:meth:`attach` with one simulator
    and per-site websites).  ``on_decision`` receives
    ``(site_name, decision)`` for every decided window, in deterministic
    site order.
    """

    def __init__(
        self,
        meter: CapacityMeter,
        sites: Sequence[SiteSpec],
        *,
        adapt: bool = False,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        min_votes: Optional[int] = None,
        max_imputed_fraction: float = 0.5,
        confidence_decay: float = 0.5,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
        batch_votes: bool = True,
        use_fleet: bool = True,
        retain_decisions: Optional[int] = None,
        on_decision: Optional[Callable[[str, MonitorDecision], None]] = None,
    ) -> None:
        if not sites:
            raise ValueError("CapacityService needs at least one site")
        if labeler is None:
            labeler = meter.labeler
        self._init_base(batch_votes=batch_votes, on_decision=on_decision)
        payload = meter.to_payload()  # serialize once, clone N times
        for spec in sites:
            monitor = fresh_monitor(
                meter,
                labeler,
                adapt=adapt,
                min_votes=min_votes,
                max_imputed_fraction=max_imputed_fraction,
                confidence_decay=confidence_decay,
                payload=payload,
                retain_decisions=retain_decisions,
            )
            self._add_site(
                spec,
                monitor,
                spec.make_gate(),
                use_watchdog=use_watchdog,
                stall_ticks=stall_ticks,
            )
        self.handle = MeterHandle(meter)
        self._init_fleet(use_fleet)

    # ------------------------------------------------------------------
    # construction plumbing (shared with resume())
    # ------------------------------------------------------------------
    def _init_base(
        self,
        *,
        batch_votes: bool,
        on_decision: Optional[Callable[[str, MonitorDecision], None]],
    ) -> None:
        self.sites: List[SiteRuntime] = []
        self.batch_votes = batch_votes
        self.on_decision = on_decision
        self.ticks = 0
        self.fleet: Optional[FleetState] = None
        self._samplers: List[TelemetrySampler] = []
        self._flush_timer: Optional[Any] = None
        #: latest published FleetSnapshot; None until enable_snapshots()
        self.snapshot: Optional[FleetSnapshot] = None
        self._publisher: Optional[SnapshotPublisher] = None
        #: versioned meter indirection; hot-swaps install through it
        self.handle: MeterHandle = MeterHandle(meter=None)
        #: decision-path drift detector; None until enable_drift()
        self.drift: Optional[DriftDetector] = None
        # drift state carried by a resumed manifest, loaded lazily when
        # enable_drift() re-arms the detector
        self._drift_manifest_state: Optional[Dict[str, Any]] = None

    def _init_fleet(self, use_fleet: bool) -> None:
        """Adopt all sites into the structure-of-arrays backend."""
        if use_fleet:
            self.fleet = FleetState(
                [site.monitor for site in self.sites],
                handle=self.handle,
            )

    def _add_site(
        self,
        spec: SiteSpec,
        monitor: OnlineCapacityMonitor,
        gate: AimdGate,
        *,
        use_watchdog: bool,
        stall_ticks: int,
    ) -> None:
        if any(site.name == spec.name for site in self.sites):
            raise ValueError(f"duplicate site name {spec.name!r}")
        runtime = SiteRuntime(
            spec,
            monitor,
            gate,
            use_watchdog=use_watchdog,
            stall_ticks=stall_ticks,
        )
        runtime.index = len(self.sites)
        self.sites.append(runtime)

    def site(self, name: str) -> SiteRuntime:
        """Look one site up by name."""
        for runtime in self.sites:
            if runtime.name == name:
                return runtime
        raise KeyError(f"no site named {name!r}")

    def enable_snapshots(self) -> FleetSnapshot:
        """Start publishing lock-free gate-state snapshots.

        After this, every flush ends by swapping a fresh immutable
        :class:`~repro.control.snapshot.FleetSnapshot` into
        ``self.snapshot`` (single reference assignment, atomic under
        the GIL) — the HTTP front end reads it from any thread without
        a lock.  Off by default: the plain replay/serve paths skip the
        publisher entirely.
        """
        self._publisher = SnapshotPublisher(
            {
                site.name: site.gate.admission_probability
                for site in self.sites
            }
        )
        self.snapshot = self._publisher.publish(
            self.ticks, meter_version=self.handle.version
        )
        return self.snapshot

    # ------------------------------------------------------------------
    # drift detection and meter hot-swap
    # ------------------------------------------------------------------
    @property
    def window(self) -> int:
        """The decision window length (ticks) all sites share."""
        return int(self.sites[0].monitor.meter.window)

    @property
    def meter_version(self) -> int:
        """The installed meter version (1 until the first hot-swap)."""
        return self.handle.version

    def enable_drift(
        self, config: Optional[DriftConfig] = None
    ) -> DriftDetector:
        """Put a drift detector on the decision path.

        Every decided window is folded into the detector before
        publication; resumed services restore the checkpointed detector
        state the manifest carried (same config expected), so a resumed
        campaign triggers on exactly the window the uninterrupted one
        would.
        """
        self.drift = DriftDetector(config)
        if self._drift_manifest_state is not None:
            self.drift.load_state(self._drift_manifest_state)
            self._drift_manifest_state = None
        return self.drift

    def swap_meter(
        self,
        meter: Union[CapacityMeter, Dict[str, Any]],
        *,
        version: Optional[int] = None,
    ) -> StagedSwap:
        """Stage a hot-swap to a retrained meter (or its payload).

        The swap installs at the next window boundary — immediately if
        the service is sitting on one — so no decision window ever
        mixes two meters' votes.  Returns the staged swap (its
        ``effective_tick`` tells the caller when it lands).
        """
        payload = (
            meter.to_payload()
            if isinstance(meter, CapacityMeter)
            else dict(meter)
        )
        if version is None:
            version = self.handle.next_version()
        swap = StagedSwap(
            version=version,
            effective_tick=next_window_boundary(self.ticks, self.window),
            payload=payload,
        )
        self.stage_swap(swap)
        return swap

    def stage_swap(self, swap: StagedSwap) -> None:
        """Stage a fully specified swap (sharded workers land here)."""
        self.handle.stage(swap)
        self._maybe_install_swap()

    def _maybe_install_swap(self) -> None:
        swap = self.handle.due(self.ticks)
        if swap is not None:
            self._install_swap(swap)

    def _install_swap(self, swap: StagedSwap) -> None:
        """Install a staged meter: one reference swap per monitor.

        Every site gets a fresh clone of the retrained meter (its own
        speculative history and online adaptation, exactly as at
        construction); run-local state — aggregators mid-window,
        counters, PI trackers, gates, fault plans — carries over
        untouched.  The fleet backend is rebuilt over the new tables,
        which mirrors what ``resume()`` does after restoring state, so
        a live swap is bit-identical to stop-retrain-restart.
        """
        use_fleet = self.fleet is not None
        if use_fleet:
            assert self.fleet is not None
            # materialize every monitor's own state (cohorts share reps)
            # before the old fleet's arrays are abandoned
            self.fleet.dissolve()
            self.fleet = None
        template: Optional[CapacityMeter] = None
        for site in self.sites:
            clone = CapacityMeter.from_payload(
                swap.payload, labeler=site.monitor.labeler
            )
            if template is None:
                template = CapacityMeter.from_payload(
                    swap.payload, labeler=site.monitor.labeler
                )
            site.monitor.swap_meter(clone)
        assert template is not None
        self.handle.install(template, swap.version)
        if self.drift is not None:
            self.drift.notify_swap()
        if use_fleet:
            self._init_fleet(True)
            if self._flush_timer is not None and self.fleet is not None:
                # live mode folds per site (see attach())
                self.fleet.dissolve()
        if OBS.enabled:
            OBS.inc(
                "repro_meter_swaps_total",
                help="Meter hot-swaps installed.",
            )
            OBS.set(
                "repro_meter_version",
                float(swap.version),
                help="Installed meter version.",
            )

    def _observe_drift(self, name: str, decision: MonitorDecision) -> Optional[bool]:
        """Fold one decision into the detector; returns the drift flag."""
        if self.drift is None:
            return None
        return self.drift.observe(name, decision).drifted

    # ------------------------------------------------------------------
    # replay mode
    # ------------------------------------------------------------------
    def push(self, record: IntervalRecord) -> List[SiteDecision]:
        """Offer one record to every site, then decide completed windows."""
        if self.handle.pending is not None:
            # staged swaps land between ticks, never inside one: the
            # boundary window has decided, the next hasn't folded yet
            self._maybe_install_swap()
        self.ticks += 1
        if self.fleet is not None and not OBS.enabled:
            try:
                for site in self.sites:
                    site._capture = []
                for site in self.sites:
                    site.offer(record)
                self._fold_tick_fleet()
            finally:
                for site in self.sites:
                    site._capture = None
        else:
            if self.fleet is not None:
                # instrumented pushes fold per site: cohort-pooled fold
                # state must be materialized and unpooled first
                self.fleet.dissolve()
            for site in self.sites:
                site.offer(record)
        return self._flush()

    def _fold_tick_fleet(self) -> None:
        """Fold this tick's captured deliveries through the fleet.

        Fault paths may deliver 0, 1 or 2 records per site per tick
        (drops / duplicates), so deliveries are consumed position by
        position: at each position, sites holding *the same record
        object* (the common case — injector-less sites all receive the
        producer's record untouched) fold as one group with a single
        row extraction and one vectorized PI update.
        """
        assert self.fleet is not None
        position = 0
        while True:
            groups: Dict[int, Tuple[IntervalRecord, List[SiteRuntime]]] = {}
            for site in self.sites:
                capture = site._capture
                if capture is None or position >= len(capture):
                    continue
                delivered = capture[position]
                entry = groups.get(id(delivered))
                if entry is None:
                    groups[id(delivered)] = (delivered, [site])
                else:
                    entry[1].append(site)
            if not groups:
                return
            for delivered, members in groups.values():
                self.fleet.fold_group(delivered, members)
            position += 1

    def replay(
        self, records: Sequence[IntervalRecord]
    ) -> List[SiteDecision]:
        """Replay a recorded stream through all sites."""
        decisions: List[SiteDecision] = []
        for record in records:
            decisions.extend(self.push(record))
        if self.fleet is not None:
            # leave every monitor individually readable (state_dict,
            # counters) — cohort members materialize from their reps
            self.fleet.sync()
        return decisions

    # ------------------------------------------------------------------
    # live mode
    # ------------------------------------------------------------------
    def attach(
        self,
        sim: Simulator,
        websites: Mapping[str, MultiTierWebsite],
        *,
        interval: float = 1.0,
        hpc_noise: float = 0.03,
        os_noise: float = 0.05,
    ) -> None:
        """Sample every site's website live, deciding windows per tick.

        One sampler per site streams into that site's fault path; a
        single flush timer (registered *after* the samplers, so it runs
        last at each shared timestamp) drives the batched decide pass.
        """
        missing = [s.name for s in self.sites if s.name not in websites]
        if missing:
            raise ValueError(f"no website for sites {missing}")
        if self.fleet is not None:
            # live samplers deliver straight into each site's fault
            # path (per-site folds): end cohort-pooled folding first
            self.fleet.dissolve()
        for site in self.sites:
            self._samplers.append(
                TelemetrySampler(
                    sim,
                    websites[site.name],
                    workload=f"serve-{site.name}",
                    interval=interval,
                    hpc_noise=hpc_noise,
                    os_noise=os_noise,
                    seed=site.spec.sampler_seed,
                    on_record=site.offer,
                    retain=0,
                )
            )
        self._flush_timer = sim.every(interval, self._on_tick)

    def front_end(
        self, sim: Simulator, name: str, website: MultiTierWebsite
    ) -> GatedFrontEnd:
        """A website-shaped submit gate bound to ``name``'s AIMD gate."""
        return GatedFrontEnd(sim, self.site(name).gate, website)

    def stop(self) -> None:
        """Stop live sampling and the flush timer."""
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        for sampler in self._samplers:
            sampler.stop()
        self._samplers = []

    def _on_tick(self) -> None:
        if self.handle.pending is not None:
            # folds never touch the coordinator, so installing before
            # this tick's flush (but after the boundary tick's) keeps
            # live mode window-aligned with replay mode
            self._maybe_install_swap()
        self.ticks += 1
        self._flush()

    # ------------------------------------------------------------------
    # the batched decide pass
    # ------------------------------------------------------------------
    def _flush(self) -> List[SiteDecision]:
        pending: List[Tuple[SiteRuntime, StreamingWindow]] = []
        for site in self.sites:
            for window in site.pending:
                pending.append((site, window))
            site.pending = []
        if not pending:
            return []
        votes: List[Optional[Tuple[int, ...]]] = [None] * len(pending)
        if self.batch_votes:
            # a cohort-shared window appears once per member site:
            # eligibility and votes are pure functions of the window,
            # so compute them once per distinct object
            eligibility: Dict[int, bool] = {}
            eligible: List[int] = []
            for i, (_, window) in enumerate(pending):
                flag = eligibility.get(id(window))
                if flag is None:
                    flag = eligibility[id(window)] = self._batch_eligible(
                        window
                    )
                if flag:
                    eligible.append(i)
            if eligible:
                unique: List[StreamingWindow] = []
                slot: Dict[int, int] = {}
                for i in eligible:
                    key = id(pending[i][1])
                    if key not in slot:
                        slot[key] = len(unique)
                        unique.append(pending[i][1])
                batched = self._batched_votes(unique)
                for i in eligible:
                    votes[i] = batched[slot[id(pending[i][1])]]
        if self.fleet is not None and not OBS.enabled:
            return self._flush_fleet(pending, votes)
        decisions: List[SiteDecision] = []
        for (site, window), vote in zip(pending, votes):
            if OBS.enabled:
                t0 = OBS.clock()
                decision = site.monitor.decide(window, votes=vote)
                OBS.observe_span(
                    f"site_decide.{site.name}", OBS.clock() - t0
                )
            else:
                decision = site.monitor.decide(window, votes=vote)
            site.gate.update(decision)
            drifted = self._observe_drift(site.name, decision)
            if self._publisher is not None:
                self._publisher.update(
                    site.name,
                    decision,
                    site.gate.admission_probability,
                    drifted=drifted,
                )
            if self.on_decision is not None:
                self.on_decision(site.name, decision)
            decisions.append((site.name, decision))
        if self._publisher is not None:
            self.snapshot = self._publisher.publish(
                self.ticks, meter_version=self.handle.version
            )
        return decisions

    def _flush_fleet(
        self,
        pending: Sequence[Tuple["SiteRuntime", StreamingWindow]],
        votes: Sequence[Optional[Tuple[int, ...]]],
    ) -> List[SiteDecision]:
        """Decide pending windows through the structure-of-arrays path.

        A site can complete more than one window per flush (duplicate
        faults), so the pending list is split into *waves* — wave k
        holds each site's k-th window — guaranteeing unique site rows
        per vectorized :meth:`~repro.control.fleet.FleetState.decide_clean`
        call.  Within a wave, batch-eligible windows with precomputed
        votes decide vectorized; degraded (or unbatched) windows take
        the per-site quorum path on the same shared tables.  Gates move
        per wave via
        :meth:`~repro.control.admission.AimdGate.update_many`, and the
        final emission loop preserves the per-site path's canonical
        ``(site order, window order)`` sequence exactly.
        """
        assert self.fleet is not None
        waves: List[List[int]] = []
        seen: Dict[int, int] = {}
        for k, (site, _) in enumerate(pending):
            occurrence = seen.get(site.index, 0)
            seen[site.index] = occurrence + 1
            if occurrence == len(waves):
                waves.append([])
            waves[occurrence].append(k)
        decided: List[Optional[MonitorDecision]] = [None] * len(pending)
        for wave in waves:
            clean = [k for k in wave if votes[k] is not None]
            if clean:
                fleet_decisions = self.fleet.decide_clean(
                    [
                        (
                            pending[k][0].index,
                            pending[k][0].monitor,
                            pending[k][1],
                            votes[k],
                        )
                        for k in clean
                    ]
                )
                for k, decision in zip(clean, fleet_decisions):
                    decided[k] = decision
            for k in wave:
                if votes[k] is None:
                    site, window = pending[k]
                    decided[k] = site.monitor.decide(window)
            AimdGate.update_many(
                [pending[k][0].gate for k in wave],
                [decided[k] for k in wave],
            )
        decisions: List[SiteDecision] = []
        for (site, _), decision in zip(pending, decided):
            assert decision is not None
            drifted = self._observe_drift(site.name, decision)
            if self._publisher is not None:
                self._publisher.update(
                    site.name,
                    decision,
                    site.gate.admission_probability,
                    drifted=drifted,
                )
            if self.on_decision is not None:
                self.on_decision(site.name, decision)
            decisions.append((site.name, decision))
        if self._publisher is not None:
            self.snapshot = self._publisher.publish(
                self.ticks, meter_version=self.handle.version
            )
        return decisions

    @property
    def _synopses(self) -> List[Any]:
        # all clones carry identical trained synopses; the first site's
        # serve as the batch schema and model
        return list(self.sites[0].monitor.meter.coordinator.synopses)

    def _batch_eligible(self, window: StreamingWindow) -> bool:
        """Clean windows only: complete coverage, every attribute present.

        Anything else must go through the per-site
        :meth:`~repro.core.coordinator.CoordinatedPredictor.predict_degraded`
        quorum path, which owns imputation and abstention.
        """
        quality = window.quality
        if quality is not None and not quality.complete:
            return False
        for synopsis in self._synopses:
            tier_metrics = window.metrics.get(synopsis.tier)
            if tier_metrics is None:
                return False
            for attribute in synopsis.attributes:
                if attribute not in tier_metrics:
                    return False
        return True

    def _batched_votes(
        self, windows: Sequence[StreamingWindow]
    ) -> List[Tuple[int, ...]]:
        """One ``predict_batch`` call per synopsis over all windows."""
        synopses = self._synopses
        per_synopsis: List[np.ndarray] = []
        for synopsis in synopses:
            matrix = np.array(
                [
                    [
                        window.metrics[synopsis.tier][attribute]
                        for attribute in synopsis.attributes
                    ]
                    for window in windows
                ],
                dtype=float,
            )
            per_synopsis.append(synopsis.predict_batch(matrix))
        return [
            tuple(int(per_synopsis[j][i]) for j in range(len(synopses)))
            for i in range(len(windows))
        ]

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        """Checkpoint every site's monitor plus the gate manifest.

        Layout: monitor state as either ``<dir>/<site>.monitor.json``
        (one full :mod:`repro.faults.checkpoint` file per site) or — when
        the fleet backend is active — a single fleet-sharded
        ``<dir>/fleet.monitor.json`` storing the shared meter template
        once; plus ``<dir>/service.json`` (format tag, checkpoint
        layout, tick count, per-site gate states, and the run-local
        state of every fault injector and watchdog, so resumed
        campaigns pick their fault plans up mid-stream instead of
        replaying them from tick zero).  All writes are atomic.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        if self.fleet is not None:
            # checkpoints read each monitor's own state: materialize
            # cohort members before serializing
            self.fleet.sync()
            layout = "fleet"
            save_fleet_checkpoint(
                [(site.name, site.monitor) for site in self.sites],
                target / "fleet.monitor.json",
            )
        else:
            layout = "per-site"
            for site in self.sites:
                save_checkpoint(
                    site.monitor, target / f"{site.name}.monitor.json"
                )
        manifest: Dict[str, object] = {
            "format": SERVICE_FORMAT,
            "layout": layout,
            "ticks": self.ticks,
            "meter_version": self.handle.version,
            "gates": {
                site.name: site.gate.state_dict() for site in self.sites
            },
            "injectors": {
                site.name: site.injector.state_dict()
                for site in self.sites
                if site.injector is not None
            },
            "watchdogs": {
                site.name: site.watchdog.state_dict()
                for site in self.sites
                if site.watchdog is not None
            },
        }
        if self.handle.pending is not None:
            manifest["pending_swap"] = self.handle.pending.to_manifest()
        if self.drift is not None:
            manifest["drift"] = self.drift.state_dict()
        write_json_atomic(target / "service.json", manifest)
        return target

    @classmethod
    def resume(
        cls,
        directory: Union[str, Path],
        sites: Sequence[SiteSpec],
        *,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        use_watchdog: bool = True,
        stall_ticks: int = 3,
        batch_votes: bool = True,
        use_fleet: bool = True,
        allow_subset: bool = False,
        retain_decisions: Optional[int] = None,
        on_decision: Optional[Callable[[str, MonitorDecision], None]] = None,
        meter: Optional[Union[CapacityMeter, Dict[str, Any]]] = None,
    ) -> "CapacityService":
        """Rebuild a service exactly where :meth:`save` left it.

        ``sites`` re-supplies the process-local spec objects (fault
        plans and gate knobs don't round-trip through the manifest);
        every spec must have monitor state in ``directory``, and —
        unless ``allow_subset=True`` — every checkpointed site must
        appear in ``sites``: a site silently dropped from a resumed
        fleet is almost always an operator mistake, so orphaned
        checkpoint state raises :class:`ValueError` naming the sites.
        Monitors resume bit-identically (meter payload + run-local
        state); gates resume probability, counters and RNG state; and —
        for format-v2 checkpoints — fault injectors and watchdogs
        resume their plan cursors, stall maps, RNG streams and backoff
        schedules, so the resumed faulted stream continues exactly
        where the saved one stopped.  v1 checkpoints (no injector /
        watchdog state, always per-site layout) are still read; their
        injectors restart from the resumed stream's first tick as
        before.

        ``meter`` stages a hot-swap to a retrained meter immediately
        after the restore — the stop-retrain-restart form of a live
        :meth:`swap_meter`, and bit-identical to it when the checkpoint
        sits on a window boundary.  A swap the saved service had staged
        but not yet installed (``pending_swap`` in a v2+ manifest) is
        re-staged automatically; an explicit ``meter`` supersedes it.
        """
        target = Path(directory)
        manifest = read_json_checkpoint(target / "service.json")
        if manifest.get("format") not in (SERVICE_FORMAT, SERVICE_FORMAT_V1):
            raise ValueError(f"{target} is not a service checkpoint")
        service = cls.__new__(cls)
        service._init_base(batch_votes=batch_votes, on_decision=on_decision)
        gate_states = manifest["gates"]
        supplied = {spec.name for spec in sites}
        lost = set(manifest.get("lost_sites", ()))
        for spec in sites:
            if spec.name not in gate_states:
                if spec.name in lost:
                    raise ValueError(
                        f"site {spec.name!r} was being served degraded "
                        f"(its shard worker was lost) when this "
                        f"checkpoint was written, so it has no state; "
                        f"drop it from the fleet or resume an earlier "
                        f"checkpoint"
                    )
                raise ValueError(
                    f"checkpoint has no gate state for site {spec.name!r}"
                )
        orphans = sorted(name for name in gate_states if name not in supplied)
        if orphans and not allow_subset:
            raise ValueError(
                f"checkpoint has state for sites not in the supplied "
                f"list: {orphans}; pass allow_subset=True to resume "
                f"without them"
            )
        layout = manifest.get("layout", "per-site")
        fleet_monitors: Dict[str, OnlineCapacityMonitor] = {}
        if layout == "fleet":
            fleet_monitors = dict(
                load_fleet_checkpoint(
                    target / "fleet.monitor.json",
                    labeler=labeler,
                    retain_decisions=retain_decisions,
                )
            )
        elif layout == "sharded":
            # one fleet-sharded monitor file per save-time worker; load
            # only the shards that hold supplied sites, and only those
            # sites from each (a resharded resume pays for its own
            # slice, not the whole checkpointed fleet)
            for shard in manifest.get("shards", []):
                wanted = supplied & set(shard["sites"])
                if not wanted:
                    continue
                fleet_monitors.update(
                    load_fleet_checkpoint(
                        target / str(shard["file"]),
                        labeler=labeler,
                        retain_decisions=retain_decisions,
                        sites=wanted,
                    )
                )
        injector_states = manifest.get("injectors", {})
        watchdog_states = manifest.get("watchdogs", {})
        for spec in sites:
            if layout in ("fleet", "sharded"):
                if spec.name not in fleet_monitors:
                    raise ValueError(
                        f"fleet checkpoint has no monitor for site "
                        f"{spec.name!r}"
                    )
                monitor = fleet_monitors[spec.name]
            else:
                monitor = load_checkpoint(
                    target / f"{spec.name}.monitor.json",
                    labeler=labeler,
                    retain_decisions=retain_decisions,
                )
            gate = spec.make_gate()
            gate.load_state(gate_states[spec.name])
            service._add_site(
                spec,
                monitor,
                gate,
                use_watchdog=use_watchdog,
                stall_ticks=stall_ticks,
            )
            runtime = service.sites[-1]
            if runtime.injector is not None and spec.name in injector_states:
                runtime.injector.load_state(injector_states[spec.name])
            if runtime.watchdog is not None and spec.name in watchdog_states:
                runtime.watchdog.load_state(watchdog_states[spec.name])
        if not service.sites:
            raise ValueError("CapacityService needs at least one site")
        service.ticks = int(manifest["ticks"])
        service.handle = MeterHandle(
            service.sites[0].monitor.meter,
            version=int(manifest.get("meter_version", 1)),
        )
        raw_drift = manifest.get("drift")
        if raw_drift is not None:
            service._drift_manifest_state = dict(raw_drift)
        service._init_fleet(use_fleet)
        raw_pending = manifest.get("pending_swap")
        if raw_pending is not None and meter is None:
            service.stage_swap(StagedSwap.from_manifest(dict(raw_pending)))
        if meter is not None:
            service.swap_meter(meter)
        return service

    # ------------------------------------------------------------------
    def summary_rows(self) -> List[str]:
        """One compact status block per site."""
        rows: List[str] = []
        for site in self.sites:
            counters = site.monitor.counters
            scores = site.monitor.scores()
            stats = site.gate.stats
            rows.append(
                f"site {site.name}: {counters.windows} windows, "
                f"BA {scores['overload_ba']:.3f}, "
                f"{counters.degraded_windows} degraded "
                f"({counters.held_decisions} held)"
            )
            rows.append(
                f"  gate: p={site.gate.admission_probability:.2f}, "
                f"{stats.admitted}/{stats.offered} admitted, "
                f"{stats.overload_signals} overload signals, "
                f"{stats.low_confidence_holds} low-confidence holds"
            )
        return rows

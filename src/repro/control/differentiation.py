"""Class-based service differentiation under overload.

The paper motivates capacity measurement with QoS provisioning: "for
input traffic of multi-class requests, server capacity information can
also be used by a back-end scheduler to calculate the portion of the
capacity to be allocated to each class" (Section I).

:class:`ClassDifferentiator` is that scheduler's front-end form: when
the coordinated predictor signals overload it sheds *browse*-class
interactions first, protecting *order*-class transactions — the ones
that carry revenue in the TPC-W bookstore.  Only if shedding all
sheddable browse traffic is not enough does it start rejecting order
traffic too; during recovery the order class is restored first.

Like :class:`~repro.control.admission.AdmissionController`, the sensing
path is the canonical :class:`~repro.core.monitor.OnlineCapacityMonitor`
and every decision's telemetry confidence is checked against
``confidence_floor`` before the per-class probabilities move — a held
or mostly-substituted vote moves nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..core.capacity import CapacityMeter
from ..core.monitor import MonitorDecision, OnlineCapacityMonitor
from ..simulator.engine import Simulator
from ..simulator.website import (
    BROWSE,
    CompletedRequest,
    MultiTierWebsite,
    ORDER,
    Request,
)
from ..telemetry.sampler import TelemetrySampler, WindowStats

__all__ = ["ClassStats", "ClassDifferentiator"]


@dataclass
class ClassStats:
    """Per-class admission counters."""

    offered: Dict[str, int] = field(
        default_factory=lambda: {BROWSE: 0, ORDER: 0}
    )
    admitted: Dict[str, int] = field(
        default_factory=lambda: {BROWSE: 0, ORDER: 0}
    )
    rejected: Dict[str, int] = field(
        default_factory=lambda: {BROWSE: 0, ORDER: 0}
    )
    #: decisions below the confidence floor that moved no probability
    low_confidence_holds: int = 0

    def rejection_rate(self, category: str) -> float:
        offered = self.offered[category]
        return self.rejected[category] / offered if offered else 0.0


class ClassDifferentiator:
    """Two-class overload gate: shed browse traffic before order traffic.

    Exposes the website's ``submit`` signature so an RBE or open-loop
    source can drive it directly.
    """

    def __init__(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        meter: CapacityMeter,
        *,
        interval: float = 1.0,
        decrease_factor: float = 0.6,
        increase_step: float = 0.08,
        min_browse_admission: float = 0.02,
        min_order_admission: float = 0.3,
        confidence_floor: float = 0.75,
        labeler: Optional[Callable[[WindowStats], int]] = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if increase_step <= 0:
            raise ValueError("increase_step must be positive")
        if not 0.0 <= confidence_floor <= 1.0:
            raise ValueError("confidence_floor must be in [0, 1]")
        self.sim = sim
        self.website = website
        self.meter = meter
        self.decrease_factor = decrease_factor
        self.increase_step = increase_step
        self.min_browse_admission = min_browse_admission
        self.min_order_admission = min_order_admission
        self.confidence_floor = confidence_floor
        #: per-class admission probabilities
        self.admission: Dict[str, float] = {BROWSE: 1.0, ORDER: 1.0}
        self.stats = ClassStats()
        self._rng = np.random.default_rng(seed)
        self.monitor = OnlineCapacityMonitor(
            meter,
            labeler=labeler,
            retain_decisions=0,
            on_decision=self._on_decision,
        )
        self._sampler: TelemetrySampler = self.monitor.attach(
            sim, website, workload="online", interval=interval, seed=seed
        )

    # ------------------------------------------------------------------
    def _on_decision(self, decision: MonitorDecision) -> None:
        if decision.confidence < self.confidence_floor:
            # degraded telemetry: neither shed on a stale overload vote
            # nor re-admit the crowd on a blind "healthy" one
            self.stats.low_confidence_holds += 1
            return
        if decision.prediction.overloaded:
            browse = self.admission[BROWSE]
            if browse > self.min_browse_admission:
                # shed the sheddable class first
                self.admission[BROWSE] = max(
                    self.min_browse_admission,
                    browse * self.decrease_factor,
                )
            else:
                # browse already floored: the order class must give
                self.admission[ORDER] = max(
                    self.min_order_admission,
                    self.admission[ORDER] * self.decrease_factor,
                )
        else:
            # recover the protected class first
            if self.admission[ORDER] < 1.0:
                self.admission[ORDER] = min(
                    1.0, self.admission[ORDER] + self.increase_step
                )
            else:
                self.admission[BROWSE] = min(
                    1.0, self.admission[BROWSE] + self.increase_step
                )

    # ------------------------------------------------------------------
    def submit(
        self,
        request: Request,
        on_complete: Callable[[CompletedRequest], None],
    ) -> None:
        """Admit or reject by class, then forward to the website."""
        category = request.category
        self.stats.offered[category] += 1
        if self._rng.uniform() > self.admission[category]:
            self.stats.rejected[category] += 1
            on_complete(
                CompletedRequest(
                    request=request,
                    submit_time=self.sim.now,
                    finish_time=self.sim.now,
                    dropped=True,
                )
            )
            return
        self.stats.admitted[category] += 1
        self.website.submit(request, on_complete)

    def stop(self) -> None:
        self._sampler.stop()

"""Application-server tier (the paper's Tomcat 5.5 on a Pentium 4).

The paper's front-end machine is the *weaker* box — a single-core
2.0 GHz Pentium 4 with 512 MB RAM — which is why the ordering mix,
whose transactions are servlet-CPU heavy, saturates this tier first.

Defaults here are calibrated so that:

* ordering-mix traffic exhausts the CPU while many worker threads are
  runnable (high run-queue, heavy context switching, L2 thrash), and
* browsing-mix traffic leaves the tier lightly utilized with most
  threads blocked on the database.
"""

from __future__ import annotations

from typing import Optional

from .engine import Simulator
from .resources import CacheModel, ContentionModel
from .server import HardwareSpec, TierServer

__all__ = ["AppServer", "PENTIUM4_SPEC"]

#: The paper's front-end machine: Pentium 4 2.0 GHz, 512 KB L2, 512 MB RAM.
PENTIUM4_SPEC = HardwareSpec(
    name="app",
    cores=1,
    frequency_ghz=2.0,
    speed_factor=1.0,
    l2_cache_kb=512.0,
    memory_mb=512.0,
    instructions_per_work=1.6e9,
)


class AppServer(TierServer):
    """Tomcat-like servlet tier.

    ``workers`` mirrors Tomcat's ``maxThreads``; a thread is held for a
    request's whole stay (including its JDBC wait).  Only *runnable*
    threads contribute to L2 pressure — a blocked thread's cache lines
    age out — and queued connections touch no memory at all, which is
    exactly why the L2 miss rate tracks CPU-bound concurrency and not
    mere connection count.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        spec: HardwareSpec = PENTIUM4_SPEC,
        workers: int = 80,
        queue_capacity: Optional[int] = None,
        contention: Optional[ContentionModel] = None,
        cache: Optional[CacheModel] = None,
    ):
        super().__init__(
            sim,
            spec,
            workers=workers,
            queue_capacity=queue_capacity,
            contention=contention
            or ContentionModel(cores=spec.cores, cs_overhead=0.002),
            cache=cache
            or CacheModel(
                capacity=spec.l2_cache_kb,
                base_miss_rate=0.02,
                max_miss_rate=0.35,
                knee=0.6,
            ),
            # Calibration note: worst-case degradation (all 80 workers
            # runnable, L2 saturated) is ~1.5x.  It must stay below the
            # ~1.7x at which a browse-mix arrival burst would pin the
            # app tier below the database's service rate and steal the
            # bottleneck from it, yet large enough that ordering-mix
            # overload shows the classic goodput droop.
            miss_stall_factor=1.0,
            queue_in_working_set=0.0,
            blocked_in_working_set=0.0,
        )

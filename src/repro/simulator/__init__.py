"""Discrete-event multi-tier website simulator.

This subpackage replaces the paper's physical Tomcat/MySQL testbed.  It
provides an event-heap engine (:mod:`~repro.simulator.engine`), generic
tier servers with worker pools, CPU contention and cache models
(:mod:`~repro.simulator.server`, :mod:`~repro.simulator.resources`),
calibrated app/database tiers (:mod:`~repro.simulator.appserver`,
:mod:`~repro.simulator.database`) and the request-flow composition
(:mod:`~repro.simulator.website`).
"""

from .appserver import PENTIUM4_SPEC, AppServer
from .chain import ChainRequest, ChainWebsite
from .database import DEFAULT_BUFFER_POOL_KB, PENTIUMD_SPEC, DatabaseServer
from .engine import Event, SimulationError, Simulator
from .network import LinkSample, NetworkLink
from .resources import CacheModel, ContentionModel, QueueStats, WorkerPool
from .server import HardwareSpec, Job, Session, TierSample, TierServer
from .website import (
    APP_TIER,
    DB_TIER,
    ClientSample,
    CompletedRequest,
    MultiTierWebsite,
    Request,
    WebsiteSample,
)

__all__ = [
    "APP_TIER",
    "AppServer",
    "CacheModel",
    "ChainRequest",
    "ChainWebsite",
    "ClientSample",
    "CompletedRequest",
    "ContentionModel",
    "DB_TIER",
    "DEFAULT_BUFFER_POOL_KB",
    "DatabaseServer",
    "Event",
    "HardwareSpec",
    "Job",
    "LinkSample",
    "MultiTierWebsite",
    "NetworkLink",
    "PENTIUM4_SPEC",
    "PENTIUMD_SPEC",
    "QueueStats",
    "Request",
    "Session",
    "SimulationError",
    "Simulator",
    "TierSample",
    "TierServer",
    "WebsiteSample",
    "WorkerPool",
]

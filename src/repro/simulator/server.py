"""Generic tier server model.

A :class:`TierServer` models one tier of the website (the Tomcat
application server or the MySQL database server in the paper's testbed)
as a bounded worker pool in front of a contended multi-core CPU:

* a request first acquires a **worker** (a Tomcat thread / MySQL
  connection); if none is free it waits in a FIFO backlog;
* holding the worker, the request executes one or more **CPU phases**;
  between phases it may be **blocked** on a downstream tier (the thread
  is held but not runnable — exactly how a synchronous servlet waits on
  JDBC);
* all runnable phases share the CPU by **exact processor sharing**:
  each progresses at a common rate set by core count, scheduling
  overhead (:class:`~repro.simulator.resources.ContentionModel`) and
  cache-miss stalls (:class:`~repro.simulator.resources.CacheModel`).

Processor sharing is simulated exactly in O(log n) per event with
virtual time: because every runnable phase progresses at the same rate
``r(state)``, a phase admitted at virtual progress ``V`` with demand
``d`` completes when ``V`` reaches ``V + d``.  The server advances
``V`` piecewise-linearly between state changes and keeps a heap of
phase completion marks; whenever concurrency, working set or background
load changes the rate, the next completion is simply rescheduled.  This
avoids the metastable artifacts of quasi-static approximations (a
transient arrival burst must drain at full speed once concurrency
falls, not persist at its admission-time slowdown).

Every physical quantity the telemetry layer needs — utilization,
runnable and blocked thread counts, queue length, work completed, cache
pressure — is accumulated as a time-weighted integral and drained by
:meth:`TierServer.sample`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .engine import Event, Simulator
from .resources import CacheModel, ContentionModel, WorkerPool

__all__ = ["HardwareSpec", "Job", "TierSample", "TierServer", "Session"]


@dataclass(frozen=True)
class HardwareSpec:
    """Static description of a tier's machine.

    ``speed_factor`` expresses per-core throughput relative to the
    reference machine on which job demands are calibrated (the paper's
    2.0 GHz Pentium 4 app server).  ``instructions_per_work`` converts
    one nominal CPU-second of useful work into retired instructions for
    the synthetic hardware counters.
    """

    name: str
    cores: int = 1
    frequency_ghz: float = 2.0
    speed_factor: float = 1.0
    l2_cache_kb: float = 512.0
    memory_mb: float = 512.0
    instructions_per_work: float = 1.6e9

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")


@dataclass
class Job:
    """One unit of tier work: a servlet execution or a database query.

    ``demand`` is nominal CPU seconds on the reference machine.
    ``footprint_kb`` is the hot working set the job keeps in the tier's
    cache (L2 for the app tier, buffer pool for the DB tier).
    """

    demand: float
    footprint_kb: float = 32.0
    kind: str = "generic"

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError("job demand must be non-negative")
        if self.footprint_kb < 0:
            raise ValueError("job footprint must be non-negative")


@dataclass
class TierSample:
    """Physical statistics for one sampling interval of one tier."""

    tier: str
    t_start: float
    t_end: float
    arrived: int = 0
    admitted: int = 0
    dropped: int = 0
    completed: int = 0
    work_done: float = 0.0  # nominal CPU-seconds of useful work completed
    background_work: float = 0.0  # CPU-seconds burned by monitoring daemons
    core_busy_time: float = 0.0  # integral of busy cores dt
    runnable_avg: float = 0.0
    blocked_avg: float = 0.0
    threads_avg: float = 0.0
    queue_avg: float = 0.0
    queue_wait_sum: float = 0.0
    service_time_sum: float = 0.0
    residence_time_sum: float = 0.0
    miss_rate_avg: float = 0.0
    cache_pressure_avg: float = 0.0
    working_set_kb: float = 0.0  # instantaneous at sample time
    cores: int = 1
    workers: int = 1

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def throughput(self) -> float:
        """Completed jobs per second."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of total core capacity that was busy (0..1)."""
        if self.duration <= 0:
            return 0.0
        return self.core_busy_time / (self.duration * self.cores)

    @property
    def mean_queue_wait(self) -> float:
        return self.queue_wait_sum / self.admitted if self.admitted else 0.0

    @property
    def mean_service_time(self) -> float:
        return self.service_time_sum / self.completed if self.completed else 0.0

    @property
    def mean_residence_time(self) -> float:
        return (
            self.residence_time_sum / self.completed if self.completed else 0.0
        )


@dataclass
class Session:
    """A request's stay on one tier: worker held from admit to finish."""

    job: Job
    on_admitted: Callable[["Session"], None]
    arrival_time: float = 0.0
    admit_time: float = 0.0
    runnable: bool = False
    service_time: float = 0.0
    _finished: bool = False


@dataclass
class _Phase:
    """A runnable CPU burst inside the processor-sharing core."""

    demand: float
    session: Optional[Session]  # None for background work
    footprint_kb: float
    on_done: Optional[Callable]
    start_wall: float


class TierServer:
    """One tier of the multi-tier website.  See module docstring."""

    def __init__(
        self,
        sim: Simulator,
        spec: HardwareSpec,
        *,
        workers: int,
        queue_capacity: Optional[int] = None,
        contention: Optional[ContentionModel] = None,
        cache: Optional[CacheModel] = None,
        miss_stall_factor: float = 2.0,
        queue_in_working_set: float = 1.0,
        blocked_in_working_set: float = 1.0,
    ):
        """Create a tier.

        Parameters
        ----------
        workers:
            Pool size (Tomcat maxThreads / MySQL max_connections).
        queue_capacity:
            Backlog bound; None means unbounded (Tomcat acceptCount is
            large in the paper's default configuration).
        miss_stall_factor:
            How strongly cache misses inflate service time; memory-bound
            tiers (the DB) use larger values.
        queue_in_working_set:
            Weight of *queued* jobs' footprints in the cache working
            set.  For a database buffer pool the data of soon-to-run
            queries churns the pool (weight 1); for a processor L2 only
            running threads matter (weight 0).
        blocked_in_working_set:
            Weight of *blocked* sessions' footprints.  A servlet thread
            waiting on JDBC is off-CPU, so its data ages out of the L2
            (weight 0); a query's pages stay pinned in the buffer pool
            for its whole stay (weight 1).
        """
        self.sim = sim
        self.spec = spec
        self.pool = WorkerPool(workers, queue_capacity)
        self.contention = contention or ContentionModel(cores=spec.cores)
        if self.contention.cores != spec.cores:
            raise ValueError("contention model core count must match spec")
        self.cache = cache or CacheModel(capacity=spec.l2_cache_kb)
        self.miss_stall_factor = miss_stall_factor
        self.queue_in_working_set = queue_in_working_set
        self.blocked_in_working_set = blocked_in_working_set

        # live thread-state counters
        self._runnable = 0  # foreground phases in the PS core
        self._bg_active = 0  # background phases in the PS core
        self._blocked = 0
        self._ws_runnable_kb = 0.0
        self._ws_blocked_kb = 0.0
        self._ws_queued_kb = 0.0

        # processor-sharing core
        self._virtual = 0.0  # common progress of all runnable phases
        self._rate = 0.0  # d(virtual)/dt under the current state
        self._phase_heap: List[Tuple[float, int, _Phase]] = []
        self._phase_seq = itertools.count()
        self._completion_event: Optional[Event] = None

        # time-weighted accumulators
        self._last_advance = sim.now
        self._int_core_busy = 0.0
        self._int_runnable = 0.0
        self._int_blocked = 0.0
        self._int_threads = 0.0
        self._int_queue = 0.0
        self._int_miss_rate = 0.0
        self._int_pressure = 0.0

        # counters
        self._completed = 0
        self._work_done = 0.0
        self._background_work = 0.0
        self._queue_wait_sum = 0.0
        self._service_time_sum = 0.0
        self._residence_time_sum = 0.0
        self._sample_start = sim.now

    # ------------------------------------------------------------------
    # live state inspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def runnable(self) -> int:
        """Threads currently executing a CPU phase (incl. background)."""
        return self._runnable + self._bg_active

    @property
    def blocked(self) -> int:
        """Threads held but waiting on a downstream tier."""
        return self._blocked

    @property
    def threads_in_use(self) -> int:
        return self.pool.in_use

    @property
    def queue_length(self) -> int:
        return self.pool.queue_length

    def working_set_kb(self) -> float:
        """Current cache working set offered by active and queued jobs."""
        return (
            self._ws_runnable_kb
            + self.blocked_in_working_set * self._ws_blocked_kb
            + self.queue_in_working_set * self._ws_queued_kb
        )

    def current_miss_rate(self) -> float:
        return self.cache.miss_rate(self.working_set_kb())

    def progress_rate(self) -> float:
        """Per-phase progress (nominal CPU-seconds per wall second)."""
        n = self.runnable
        if n == 0:
            return 0.0
        raw = self.spec.speed_factor * self.contention.per_request_rate(n)
        miss = self.cache.miss_rate(self.working_set_kb())
        return raw / (1.0 + miss * self.miss_stall_factor)

    # ------------------------------------------------------------------
    # accounting + processor-sharing core
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Integrate state up to now using the rate in force since then."""
        now = self.sim.now
        dt = now - self._last_advance
        if dt <= 0:
            return
        n = self.runnable
        busy_cores = min(n, self.spec.cores)
        self._int_core_busy += busy_cores * dt
        self._int_runnable += n * dt
        self._int_blocked += self._blocked * dt
        self._int_threads += self.pool.in_use * dt
        self._int_queue += self.pool.queue_length * dt
        ws = self.working_set_kb()
        self._int_miss_rate += self.cache.miss_rate(ws) * dt
        self._int_pressure += self.cache.pressure(ws) * dt
        if n > 0 and self._rate > 0:
            progress = self._rate * dt
            self._virtual += progress
            self._work_done += progress * self._runnable
            self._background_work += progress * self._bg_active
        self._last_advance = now

    def _resync(self) -> None:
        """Recompute the PS rate and reschedule the next completion."""
        self._rate = self.progress_rate()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._phase_heap:
            return
        if self._rate <= 0:
            raise RuntimeError("active phases with zero progress rate")
        head = self._phase_heap[0][0]
        delay = max(0.0, (head - self._virtual) / self._rate)
        self._completion_event = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        """Complete every phase whose virtual mark has been reached."""
        self._completion_event = None
        self._advance()
        finished: List[_Phase] = []
        while (
            self._phase_heap
            and self._phase_heap[0][0] <= self._virtual + 1e-9
        ):
            _, _, phase = heapq.heappop(self._phase_heap)
            finished.append(phase)
            if phase.session is not None:
                self._runnable -= 1
                self._blocked += 1
                self._ws_runnable_kb -= phase.footprint_kb
                self._ws_blocked_kb += phase.footprint_kb
                phase.session.runnable = False
                phase.session.service_time += self.sim.now - phase.start_wall
            else:
                self._bg_active -= 1
                self._ws_runnable_kb -= phase.footprint_kb
        self._resync()
        for phase in finished:
            if phase.on_done is not None:
                if phase.session is not None:
                    phase.on_done(phase.session)
                else:
                    phase.on_done()

    def _enter_phase(self, phase: _Phase) -> None:
        mark = self._virtual + phase.demand
        heapq.heappush(self._phase_heap, (mark, next(self._phase_seq), phase))

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def submit(
        self, job: Job, on_admitted: Callable[[Session], None]
    ) -> Optional[Session]:
        """Ask for a worker.

        ``on_admitted`` fires (possibly synchronously) once the session
        holds a worker; the caller then drives CPU phases with
        :meth:`run_phase` and ends with :meth:`finish`.  Returns None
        when the backlog is full and the job was dropped.
        """
        self._advance()
        session = Session(job=job, on_admitted=on_admitted)
        session.arrival_time = self.sim.now
        outcome = self.pool.try_acquire(self.sim.now, session)
        if outcome == "dropped":
            self._resync()
            return None
        if outcome == "queued":
            self._ws_queued_kb += job.footprint_kb
            self._resync()
            return session
        self._admit(session)
        self._resync()
        return session

    def _admit(self, session: Session) -> None:
        session.admit_time = self.sim.now
        self._queue_wait_sum += session.admit_time - session.arrival_time
        self._ws_blocked_kb += session.job.footprint_kb
        self._blocked += 1  # holds a worker, not yet running a phase
        session.on_admitted(session)

    def run_phase(
        self,
        session: Session,
        demand: float,
        on_done: Callable[[Session], None],
    ) -> float:
        """Execute ``demand`` nominal CPU-seconds; fire ``on_done`` after.

        Returns the phase duration *estimate* under the instantaneous
        rate; the actual duration depends on how concurrency evolves.
        """
        if session.runnable:
            raise RuntimeError("session already running a phase")
        if session._finished:
            raise RuntimeError("session already finished")
        self._advance()
        self._blocked -= 1
        self._runnable += 1
        self._ws_blocked_kb -= session.job.footprint_kb
        self._ws_runnable_kb += session.job.footprint_kb
        session.runnable = True
        self._enter_phase(
            _Phase(
                demand=demand,
                session=session,
                footprint_kb=session.job.footprint_kb,
                on_done=on_done,
                start_wall=self.sim.now,
            )
        )
        self._resync()
        return demand / self._rate if self._rate > 0 else 0.0

    def run_background(
        self,
        demand: float,
        *,
        footprint_kb: float = 0.0,
        on_done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Burn CPU outside the worker pool (monitoring daemons etc.).

        Background work competes with request phases for cores and
        pollutes the cache like any runnable thread, which is exactly
        how a metrics collector perturbs the measured system.  Returns
        the estimated duration of the burst.
        """
        if demand < 0:
            raise ValueError("background demand must be non-negative")
        self._advance()
        self._bg_active += 1
        self._ws_runnable_kb += footprint_kb
        self._enter_phase(
            _Phase(
                demand=demand,
                session=None,
                footprint_kb=footprint_kb,
                on_done=on_done,
                start_wall=self.sim.now,
            )
        )
        self._resync()
        return demand / self._rate if self._rate > 0 else 0.0

    def finish(self, session: Session) -> None:
        """Release the worker and hand it to the backlog head, if any."""
        if session.runnable:
            raise RuntimeError("cannot finish a session mid-phase")
        if session._finished:
            raise RuntimeError("session finished twice")
        self._advance()
        session._finished = True
        self._blocked -= 1
        self._ws_blocked_kb -= session.job.footprint_kb
        self._completed += 1
        self._service_time_sum += session.service_time
        self._residence_time_sum += self.sim.now - session.arrival_time
        granted = self.pool.release(self.sim.now)
        if granted is not None:
            next_session = granted
            assert isinstance(next_session, Session)
            self._ws_queued_kb -= next_session.job.footprint_kb
            self._admit(next_session)
        self._resync()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self) -> TierSample:
        """Drain the accounting window into a :class:`TierSample`."""
        self._advance()
        now = self.sim.now
        duration = now - self._sample_start
        pool_stats = self.pool.snapshot(now)
        sample = TierSample(
            tier=self.name,
            t_start=self._sample_start,
            t_end=now,
            arrived=pool_stats.arrived,
            admitted=pool_stats.admitted,
            dropped=pool_stats.dropped,
            completed=self._completed,
            work_done=self._work_done,
            background_work=self._background_work,
            core_busy_time=self._int_core_busy,
            runnable_avg=self._int_runnable / duration if duration else 0.0,
            blocked_avg=self._int_blocked / duration if duration else 0.0,
            threads_avg=self._int_threads / duration if duration else 0.0,
            queue_avg=self._int_queue / duration if duration else 0.0,
            queue_wait_sum=self._queue_wait_sum,
            service_time_sum=self._service_time_sum,
            residence_time_sum=self._residence_time_sum,
            miss_rate_avg=self._int_miss_rate / duration if duration else 0.0,
            cache_pressure_avg=(
                self._int_pressure / duration if duration else 0.0
            ),
            working_set_kb=self.working_set_kb(),
            cores=self.spec.cores,
            workers=self.pool.size,
        )
        self._sample_start = now
        self._completed = 0
        self._work_done = 0.0
        self._background_work = 0.0
        self._queue_wait_sum = 0.0
        self._service_time_sum = 0.0
        self._residence_time_sum = 0.0
        self._int_core_busy = 0.0
        self._int_runnable = 0.0
        self._int_blocked = 0.0
        self._int_threads = 0.0
        self._int_queue = 0.0
        self._int_miss_rate = 0.0
        self._int_pressure = 0.0
        return sample

"""K-tier service chains (generalization of the two-tier website).

The paper's framework — per-tier synopses combined by a coordinated
predictor with a K-entry Bottleneck Vector — is K-tier generic even
though its testbed has two tiers.  :class:`ChainWebsite` provides the
matching substrate: an arbitrary chain of :class:`TierServer` stages
(e.g. web cache → application server → database) where each admitted
request executes CPU phases on every tier it reaches, holding its
worker while nested calls proceed downstream.

The class exposes the same surface as
:class:`~repro.simulator.website.MultiTierWebsite` (``tiers``,
``submit``, ``sample``, ``in_flight``), so the telemetry sampler,
capacity meter, admission controllers and workload sources all work
unchanged on chains of any depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from .engine import Simulator
from .network import NetworkLink
from .server import Job, Session, TierServer
from .website import (
    BROWSE,
    ClientSample,
    CompletedRequest,
    ORDER,
    WebsiteSample,
)

__all__ = ["ChainRequest", "ChainWebsite"]


@dataclass(frozen=True)
class ChainRequest:
    """A request with per-tier CPU demands along a service chain.

    ``demands[i]`` is the nominal CPU seconds spent on tier i; the
    request descends only as deep as the last tier with positive
    remaining work (trailing zero demands prune the recursion, which is
    how a cache hit avoids touching the database).
    """

    name: str
    category: str
    demands: Tuple[float, ...]
    footprints_kb: Tuple[float, ...]
    request_bytes: int = 400
    response_bytes: int = 8000
    hop_bytes: int = 1500

    def __post_init__(self) -> None:
        if self.category not in (BROWSE, ORDER):
            raise ValueError(f"unknown request category {self.category!r}")
        if not self.demands:
            raise ValueError("a chain request needs at least one tier demand")
        if len(self.footprints_kb) != len(self.demands):
            raise ValueError("footprints must match demands in length")
        if any(d < 0 for d in self.demands):
            raise ValueError("demands must be non-negative")

    def depth(self) -> int:
        """Number of tiers this request actually visits."""
        last = 0
        for i, demand in enumerate(self.demands):
            if demand > 0:
                last = i
        return last + 1


class ChainWebsite:
    """A linear chain of tiers behind one client entry point."""

    #: fraction of a tier's CPU demand spent before the downstream call
    PHASE1_FRACTION = 0.6

    def __init__(
        self,
        sim: Simulator,
        tiers: Sequence[TierServer],
        links: Optional[Sequence[Tuple[NetworkLink, NetworkLink]]] = None,
    ):
        if not tiers:
            raise ValueError("a chain needs at least one tier")
        names = [tier.name for tier in tiers]
        if len(set(names)) != len(names):
            raise ValueError("tier names must be unique")
        self.sim = sim
        self._tiers = list(tiers)
        if links is None:
            links = [
                (NetworkLink(sim), NetworkLink(sim))
                for _ in range(len(tiers) - 1)
            ]
        if len(links) != len(tiers) - 1:
            raise ValueError("need one link pair per adjacent tier pair")
        self._links = list(links)
        self._client = ClientSample(t_start=sim.now, t_end=sim.now)
        self._in_flight = 0

    # ------------------------------------------------------------------
    @property
    def tiers(self) -> Dict[str, TierServer]:
        return {tier.name: tier for tier in self._tiers}

    @property
    def depth(self) -> int:
        return len(self._tiers)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    # ------------------------------------------------------------------
    def submit(
        self,
        request: ChainRequest,
        on_complete: Callable[[CompletedRequest], None],
    ) -> None:
        """Inject one client request; ``on_complete`` always fires once."""
        if len(request.demands) > self.depth:
            raise ValueError(
                f"request spans {len(request.demands)} tiers but the chain "
                f"has {self.depth}"
            )
        submit_time = self.sim.now
        self._client.submitted += 1
        self._in_flight += 1

        def respond(dropped: bool) -> None:
            self._in_flight -= 1
            outcome = CompletedRequest(
                request=request,  # type: ignore[arg-type]
                submit_time=submit_time,
                finish_time=self.sim.now,
                dropped=dropped,
            )
            if dropped:
                self._client.dropped += 1
            else:
                self._client.completed += 1
                if request.category == BROWSE:
                    self._client.browse_completed += 1
                else:
                    self._client.order_completed += 1
                rt = outcome.response_time
                self._client.response_time_sum += rt
                if rt > self._client.response_time_max:
                    self._client.response_time_max = rt
                self._client.request_bytes += request.request_bytes
                self._client.response_bytes += request.response_bytes
            on_complete(outcome)

        self._descend(request, 0, lambda ok: respond(not ok))

    # ------------------------------------------------------------------
    def _descend(
        self,
        request: ChainRequest,
        index: int,
        done: Callable[[bool], None],
    ) -> None:
        """Run the request's stay on tier ``index``; call ``done(ok)``."""
        tier = self._tiers[index]
        demand = request.demands[index]
        job = Job(
            demand=demand,
            footprint_kb=request.footprints_kb[index],
            kind=request.name,
        )
        goes_deeper = index + 1 < len(request.demands) and any(
            d > 0 for d in request.demands[index + 1 :]
        )

        def on_admitted(session: Session) -> None:
            if not goes_deeper:
                tier.run_phase(
                    session,
                    demand,
                    lambda s: (tier.finish(s), done(True)),
                )
                return
            phase1 = demand * self.PHASE1_FRACTION
            phase2 = demand - phase1
            up, down = self._links[index]

            def after_phase1(_: Session) -> None:
                up.transfer(request.hop_bytes, call_downstream)

            def call_downstream() -> None:
                self._descend(request, index + 1, downstream_done)

            def downstream_done(ok: bool) -> None:
                if not ok:
                    tier.finish(session)
                    done(False)
                    return
                down.transfer(request.hop_bytes, result_back)

            def result_back() -> None:
                tier.run_phase(
                    session,
                    phase2,
                    lambda s: (tier.finish(s), done(True)),
                )

            tier.run_phase(session, phase1, after_phase1)

        if tier.submit(job, on_admitted) is None:
            done(False)

    # ------------------------------------------------------------------
    def sample(self) -> WebsiteSample:
        """Drain the current sampling window across client, tiers, links."""
        now = self.sim.now
        self._client.t_end = now
        client = self._client
        self._client = ClientSample(t_start=now, t_end=now)
        links: Dict[str, object] = {}
        for i, (up, down) in enumerate(self._links):
            a, b = self._tiers[i].name, self._tiers[i + 1].name
            links[f"{a}->{b}"] = up.sample()
            links[f"{b}->{a}"] = down.sample()
        return WebsiteSample(
            client=client,
            tiers={tier.name: tier.sample() for tier in self._tiers},
            links=links,  # type: ignore[arg-type]
        )

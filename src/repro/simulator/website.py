"""Multi-tier website composition.

:class:`MultiTierWebsite` wires an application-server tier to a
database tier over a network link and drives each client request
through the same path the paper's Tomcat/MySQL testbed does:

1. the request acquires a Tomcat worker thread (or queues for one);
2. the servlet runs the first part of its CPU work;
3. the thread blocks while the query crosses the link, executes on a
   MySQL connection, and the result returns;
4. the servlet finishes its CPU work and the response leaves.

Client-visible statistics (throughput, response time, drops) are
accumulated per sampling window and drained together with per-tier
physical samples by :meth:`MultiTierWebsite.sample`, which is what the
telemetry layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .engine import Simulator
from .network import LinkSample, NetworkLink
from .server import Job, Session, TierServer, TierSample

__all__ = [
    "Request",
    "CompletedRequest",
    "ClientSample",
    "WebsiteSample",
    "MultiTierWebsite",
    "APP_TIER",
    "DB_TIER",
    "BROWSE",
    "ORDER",
]

APP_TIER = "app"
DB_TIER = "db"

BROWSE = "browse"
ORDER = "order"


@dataclass(frozen=True)
class Request:
    """A web interaction template (one of the 14 TPC-W types).

    Demands are nominal CPU seconds on the reference machine; footprints
    are the hot working sets the interaction touches on each tier.
    """

    name: str
    category: str  # BROWSE or ORDER
    app_demand: float
    db_demand: float
    app_footprint_kb: float = 32.0
    db_footprint_kb: float = 512.0
    request_bytes: int = 400
    response_bytes: int = 8000
    db_query_bytes: int = 300
    db_result_bytes: int = 2000

    def __post_init__(self) -> None:
        if self.category not in (BROWSE, ORDER):
            raise ValueError(f"unknown request category {self.category!r}")
        if self.app_demand < 0 or self.db_demand < 0:
            raise ValueError("demands must be non-negative")


@dataclass
class CompletedRequest:
    """Outcome of one request as the client observes it."""

    request: Request
    submit_time: float
    finish_time: float
    dropped: bool = False

    @property
    def response_time(self) -> float:
        return self.finish_time - self.submit_time


@dataclass
class ClientSample:
    """Client-visible aggregate statistics for one sampling window."""

    t_start: float
    t_end: float
    submitted: int = 0
    completed: int = 0
    dropped: int = 0
    browse_completed: int = 0
    order_completed: int = 0
    response_time_sum: float = 0.0
    response_time_max: float = 0.0
    request_bytes: int = 0
    response_bytes: int = 0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def offered_rate(self) -> float:
        return self.submitted / self.duration if self.duration > 0 else 0.0

    @property
    def mean_response_time(self) -> float:
        return (
            self.response_time_sum / self.completed if self.completed else 0.0
        )

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.submitted if self.submitted else 0.0


@dataclass
class WebsiteSample:
    """One sampling window of the whole site: client + tiers + links."""

    client: ClientSample
    tiers: Dict[str, TierSample]
    links: Dict[str, LinkSample] = field(default_factory=dict)

    @property
    def t_start(self) -> float:
        return self.client.t_start

    @property
    def t_end(self) -> float:
        return self.client.t_end


class MultiTierWebsite:
    """Two-tier (extensible) website: app server + database over a link."""

    #: fraction of a servlet's CPU demand spent before the DB call
    APP_PHASE1_FRACTION = 0.6

    def __init__(
        self,
        sim: Simulator,
        app: TierServer,
        db: TierServer,
        link_up: Optional[NetworkLink] = None,
        link_down: Optional[NetworkLink] = None,
    ):
        self.sim = sim
        self.app = app
        self.db = db
        self.link_up = link_up or NetworkLink(sim)  # app -> db (queries)
        self.link_down = link_down or NetworkLink(sim)  # db -> app (results)
        self._client = ClientSample(t_start=sim.now, t_end=sim.now)
        self._in_flight = 0

    # ------------------------------------------------------------------
    @property
    def tiers(self) -> Dict[str, TierServer]:
        return {APP_TIER: self.app, DB_TIER: self.db}

    @property
    def in_flight(self) -> int:
        """Requests admitted to the site and not yet responded."""
        return self._in_flight

    # ------------------------------------------------------------------
    def submit(
        self,
        request: Request,
        on_complete: Callable[[CompletedRequest], None],
    ) -> None:
        """Inject one client request; ``on_complete`` always fires once."""
        submit_time = self.sim.now
        self._client.submitted += 1
        self._in_flight += 1

        def respond(dropped: bool) -> None:
            self._in_flight -= 1
            outcome = CompletedRequest(
                request=request,
                submit_time=submit_time,
                finish_time=self.sim.now,
                dropped=dropped,
            )
            if dropped:
                self._client.dropped += 1
            else:
                self._client.completed += 1
                if request.category == BROWSE:
                    self._client.browse_completed += 1
                else:
                    self._client.order_completed += 1
                rt = outcome.response_time
                self._client.response_time_sum += rt
                if rt > self._client.response_time_max:
                    self._client.response_time_max = rt
                self._client.request_bytes += request.request_bytes
                self._client.response_bytes += request.response_bytes
            on_complete(outcome)

        app_job = Job(
            demand=request.app_demand,
            footprint_kb=request.app_footprint_kb,
            kind=request.name,
        )

        def on_app_admitted(app_session: Session) -> None:
            self._run_servlet(request, app_session, respond)

        session = self.app.submit(app_job, on_app_admitted)
        if session is None:
            respond(dropped=True)

    # ------------------------------------------------------------------
    def _run_servlet(
        self,
        request: Request,
        app_session: Session,
        respond: Callable[[bool], None],
    ) -> None:
        """Drive one admitted request through its app/db phases."""
        if request.db_demand <= 0:
            # pure-app interaction: one CPU phase, then respond
            def done(_: Session) -> None:
                self.app.finish(app_session)
                respond(False)

            self.app.run_phase(app_session, request.app_demand, done)
            return

        phase1 = request.app_demand * self.APP_PHASE1_FRACTION
        phase2 = request.app_demand - phase1

        def after_phase1(_: Session) -> None:
            self.link_up.transfer(request.db_query_bytes, send_query)

        def send_query() -> None:
            db_job = Job(
                demand=request.db_demand,
                footprint_kb=request.db_footprint_kb,
                kind=request.name,
            )
            db_session = self.db.submit(db_job, run_query)
            if db_session is None:
                # database refused the connection: error response
                self.app.finish(app_session)
                respond(True)

        def run_query(db_session: Session) -> None:
            def query_done(_: Session) -> None:
                self.db.finish(db_session)
                self.link_down.transfer(request.db_result_bytes, result_back)

            self.db.run_phase(db_session, request.db_demand, query_done)

        def result_back() -> None:
            self.app.run_phase(app_session, phase2, after_phase2)

        def after_phase2(_: Session) -> None:
            self.app.finish(app_session)
            respond(False)

        self.app.run_phase(app_session, phase1, after_phase1)

    # ------------------------------------------------------------------
    def sample(self) -> WebsiteSample:
        """Drain the current sampling window across client, tiers, links."""
        now = self.sim.now
        self._client.t_end = now
        client = self._client
        self._client = ClientSample(t_start=now, t_end=now)
        return WebsiteSample(
            client=client,
            tiers={name: tier.sample() for name, tier in self.tiers.items()},
            links={
                "app->db": self.link_up.sample(),
                "db->app": self.link_down.sample(),
            },
        )

"""Database tier (the paper's MySQL 5.0 on a Pentium D).

The back-end machine is the faster box — a dual-core 2.8 GHz Pentium D
with 1 GB RAM — so it only saturates when the traffic mix is dominated
by heavy read queries (best-sellers, full-text search), i.e. under the
browsing mix.

The crucial modelling choice is the **buffer pool**: its working set
includes queries *waiting* on the connection pool as well as running
ones, because their pages churn the pool as soon as they dispatch.
Offered load past saturation therefore keeps inflating the miss rate —
a monotone overload signal that the hardware counters see, while
OS-level utilization has long since clipped at 100% and the run queue
is pinned at the connection-pool size.  This asymmetry is the
paper's Section V.B observation (OS metrics fail on the browsing mix)
made mechanical.
"""

from __future__ import annotations

from typing import Optional

from .engine import Simulator
from .resources import CacheModel, ContentionModel
from .server import HardwareSpec, TierServer

__all__ = ["DatabaseServer", "PENTIUMD_SPEC", "DEFAULT_BUFFER_POOL_KB"]

#: The paper's back-end machine: Pentium D 2.8 GHz (2 cores), 1 GB RAM.
PENTIUMD_SPEC = HardwareSpec(
    name="db",
    cores=2,
    frequency_ghz=2.8,
    speed_factor=1.4,
    l2_cache_kb=1024.0,
    memory_mb=1024.0,
    instructions_per_work=1.6e9,
)

#: InnoDB-style buffer pool: 128 MB of the 1 GB RAM.
DEFAULT_BUFFER_POOL_KB = 128 * 1024.0


class DatabaseServer(TierServer):
    """MySQL-like query tier.

    ``workers`` mirrors ``max_connections``: queries beyond it queue
    inside the server, invisible to OS run-queue statistics.  Service
    time is strongly inflated by buffer-pool misses
    (``miss_stall_factor=3``) because query execution is memory-bound,
    which produces the sharp throughput droop under browsing overload.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        spec: HardwareSpec = PENTIUMD_SPEC,
        connections: int = 24,
        queue_capacity: Optional[int] = None,
        contention: Optional[ContentionModel] = None,
        buffer_pool: Optional[CacheModel] = None,
    ):
        super().__init__(
            sim,
            spec,
            workers=connections,
            queue_capacity=queue_capacity,
            contention=contention
            or ContentionModel(cores=spec.cores, cs_overhead=0.003),
            cache=buffer_pool
            or CacheModel(
                capacity=DEFAULT_BUFFER_POOL_KB,
                base_miss_rate=0.03,
                max_miss_rate=0.50,
                knee=0.5,
            ),
            # Calibration note: buffer misses hit the OS page cache, not
            # disk, so the per-query slowdown under churn is modest —
            # deep overload costs ~35% of goodput rather than halving
            # it.  Overload therefore shows up primarily as queue and
            # working-set growth (which the hardware counters see as a
            # rising miss rate) and only mildly in throughput-shaped OS
            # counters — the paper's observability gap.
            miss_stall_factor=1.2,
            queue_in_working_set=1.0,
            blocked_in_working_set=1.0,
        )

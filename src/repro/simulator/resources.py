"""Resource models shared by the tier servers.

These classes capture the *physical* behaviour the paper's testbed
exhibits and that the learning pipeline depends on:

* a bounded **worker pool** (Tomcat worker threads, MySQL connections)
  with a FIFO admission queue in front of it;
* a **CPU contention model** that inflates service times as concurrency
  grows (context-switch overhead plus cache pollution), producing the
  throughput *droop* past saturation described in Section I of the
  paper; and
* a **cache model** (processor L2 / database buffer pool) whose miss
  rate responds to concurrency and offered working set — the raw signal
  the hardware-counter metrics expose and OS-level metrics do not.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

__all__ = [
    "ContentionModel",
    "CacheModel",
    "WorkerPool",
    "QueueStats",
]


@dataclass
class ContentionModel:
    """Concurrency-dependent slowdown of a multi-core CPU.

    With ``n`` requests in service on ``cores`` cores, each request
    progresses at ``rate(n)`` of nominal single-core speed:

    ``rate(n) = min(1, cores / n) * efficiency(n)``

    where ``efficiency(n) = 1 / (1 + cs_overhead * max(0, n - cores))``
    models time lost to context switching and scheduler overhead.  Cache
    pollution is handled separately by :class:`CacheModel` because it
    must also surface in the synthetic hardware counters.

    Attributes
    ----------
    cores:
        Number of physical cores (the paper's app server is a 1-core
        Pentium 4, the DB server a 2-core Pentium D).
    cs_overhead:
        Fractional efficiency loss per runnable thread beyond the core
        count.  Positive values make aggregate goodput *decrease* past
        saturation instead of flattening.
    """

    cores: int = 1
    cs_overhead: float = 0.004

    def efficiency(self, n_active: int) -> float:
        """Fraction of CPU time doing useful work with ``n_active`` threads."""
        if n_active <= 0:
            return 1.0
        excess = max(0, n_active - self.cores)
        return 1.0 / (1.0 + self.cs_overhead * excess)

    def per_request_rate(self, n_active: int) -> float:
        """Progress rate of one request relative to an idle single core."""
        if n_active <= 0:
            return 1.0
        share = min(1.0, self.cores / n_active)
        return share * self.efficiency(n_active)

    def aggregate_rate(self, n_active: int) -> float:
        """Total useful work per second across all cores."""
        if n_active <= 0:
            return 0.0
        return min(n_active, self.cores) * self.efficiency(n_active)


@dataclass
class CacheModel:
    """A set-associative-cache / buffer-pool pressure model.

    The model does not simulate individual lines; it tracks a *pressure*
    ratio — the offered working set divided by the capacity — and maps
    it to a miss rate with a saturating curve:

    ``miss_rate = base + (max_rate - base) * p / (p + knee)``

    where ``p = max(0, working_set / capacity - 1)``.  While the working
    set fits, misses stay near ``base`` (compulsory misses); once it
    exceeds capacity, the miss rate climbs toward ``max_rate``.  This is
    the mechanism behind both the app tier's L2 thrashing under
    ordering-mix overload and the DB tier's buffer-pool churn under
    browsing-mix overload.
    """

    capacity: float = 512.0  # KB for an L2 cache, MB for a buffer pool
    base_miss_rate: float = 0.02
    max_miss_rate: float = 0.45
    knee: float = 0.5

    def pressure(self, working_set: float) -> float:
        """Excess of working set over capacity, as a ratio (>= 0)."""
        if self.capacity <= 0:
            raise ValueError("cache capacity must be positive")
        return max(0.0, working_set / self.capacity - 1.0)

    def miss_rate(self, working_set: float) -> float:
        """Miss rate for a given offered working set."""
        p = self.pressure(working_set)
        span = self.max_miss_rate - self.base_miss_rate
        return self.base_miss_rate + span * p / (p + self.knee)


@dataclass
class QueueStats:
    """Aggregate queue statistics accumulated between snapshots."""

    arrived: int = 0
    admitted: int = 0
    dropped: int = 0
    completed: int = 0
    busy_work: float = 0.0  # useful work completed (nominal CPU-seconds)
    busy_time: float = 0.0  # wall time with >= 1 request in service
    weighted_active: float = 0.0  # integral of n_active dt
    weighted_queue: float = 0.0  # integral of queue length dt
    total_queue_wait: float = 0.0
    total_service_time: float = 0.0

    def reset(self) -> None:
        self.arrived = 0
        self.admitted = 0
        self.dropped = 0
        self.completed = 0
        self.busy_work = 0.0
        self.busy_time = 0.0
        self.weighted_active = 0.0
        self.weighted_queue = 0.0
        self.total_queue_wait = 0.0
        self.total_service_time = 0.0


class WorkerPool:
    """Bounded pool of workers with a FIFO backlog.

    ``acquire`` either grants a worker immediately or enqueues the
    caller; ``release`` hands the freed worker to the head of the
    backlog.  The pool tracks time-weighted occupancy so tier servers
    can report utilization and queue lengths per sampling interval.
    """

    def __init__(self, size: int, queue_capacity: Optional[int] = None):
        if size <= 0:
            raise ValueError("worker pool size must be positive")
        if queue_capacity is not None and queue_capacity < 0:
            raise ValueError("queue capacity must be non-negative")
        self.size = size
        self.queue_capacity = queue_capacity
        self.in_use = 0
        self._backlog: Deque[object] = deque()
        self._last_update = 0.0
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._backlog)

    @property
    def available(self) -> int:
        return self.size - self.in_use

    def _advance(self, now: float) -> None:
        """Accumulate time-weighted occupancy up to ``now``."""
        dt = now - self._last_update
        if dt > 0:
            self.stats.weighted_active += self.in_use * dt
            self.stats.weighted_queue += len(self._backlog) * dt
            if self.in_use > 0:
                self.stats.busy_time += dt
            self._last_update = now

    # ------------------------------------------------------------------
    def try_acquire(self, now: float, token: object) -> str:
        """Request a worker at time ``now``.

        Returns ``"granted"`` when a worker was free, ``"queued"`` when
        the caller was placed in the backlog, ``"dropped"`` when the
        backlog is full.
        """
        self._advance(now)
        self.stats.arrived += 1
        if self.in_use < self.size:
            self.in_use += 1
            self.stats.admitted += 1
            return "granted"
        if (
            self.queue_capacity is not None
            and len(self._backlog) >= self.queue_capacity
        ):
            self.stats.dropped += 1
            return "dropped"
        self._backlog.append(token)
        return "queued"

    def release(self, now: float) -> Optional[object]:
        """Free one worker; return the backlog head now granted, if any."""
        if self.in_use <= 0:
            raise RuntimeError("release without matching acquire")
        self._advance(now)
        if self._backlog:
            token = self._backlog.popleft()
            self.stats.admitted += 1
            # the worker passes directly to the queued request
            return token
        self.in_use -= 1
        return None

    def snapshot(self, now: float) -> QueueStats:
        """Return accumulated stats up to ``now`` and reset the window."""
        self._advance(now)
        snap = QueueStats(**vars(self.stats))
        self.stats.reset()
        return snap

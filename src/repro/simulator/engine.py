"""Discrete-event simulation engine.

The engine is a classic event-heap simulator: callbacks are scheduled at
absolute simulated times and executed in timestamp order.  Ties are broken
by a monotonically increasing sequence number so that scheduling order is
deterministic and events never compare their (arbitrary) payloads.

The engine is deliberately minimal — servers, workload generators and
telemetry samplers are all built as plain callbacks on top of it — but it
supports the two features a server simulation actually needs:

* **cancellation** — a scheduled event can be cancelled in O(1) (lazy
  deletion), which tier models use to reschedule completions when their
  service rate changes; and
* **recurring timers** — used by telemetry samplers and open-loop
  workload sources.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid use of the simulation engine."""


@dataclass(order=True)
class _HeapEntry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A handle to a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and may be
    cancelled.  A cancelled event stays in the heap but is skipped when
    popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "action", "cancelled")

    def __init__(self, time: float, action: Callable[[], None]):
        self.time = time
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the engine skips it when its time comes."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {state})"


class Simulator:
    """Event-heap discrete-event simulator.

    The simulator owns the virtual clock.  Time has no unit of its own;
    by convention every model in this package interprets it as seconds.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> sim.run(until=5.0)
    >>> fired
    [2.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[_HeapEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._events_executed = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_executed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Returns an :class:`Event` handle that may be cancelled.  Negative
        delays are rejected: the past is immutable.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}"
            )
        event = Event(time, action)
        heapq.heappush(self._heap, _HeapEntry(time, next(self._seq), event))
        return event

    def every(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        start_delay: Optional[float] = None,
    ) -> Event:
        """Schedule ``action`` to run every ``interval`` seconds.

        The returned handle cancels the *next* occurrence (and therefore
        the whole series).  ``start_delay`` defaults to one interval.
        """
        if interval <= 0:
            raise SimulationError("recurring interval must be positive")

        handle_box: List[Event] = []

        def tick() -> None:
            action()
            # the action may have cancelled the series via the proxy; at
            # that point handle_box[0] is this already-fired event, so
            # only the proxy flag can stop the recurrence
            if proxy.cancelled:
                return
            handle_box[0] = self.schedule(interval, tick)
            proxy.time = handle_box[0].time

        first = self.schedule(
            interval if start_delay is None else start_delay, tick
        )
        handle_box.append(first)

        class _SeriesHandle(Event):
            __slots__ = ()

            def cancel(self) -> None:  # noqa: D102 - same contract
                self.cancelled = True
                handle_box[0].cancel()

        proxy = _SeriesHandle(first.time, action)
        return proxy

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self._now = entry.time
            self._events_executed += 1
            entry.event.action()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap is empty or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at the end even if the last event fired earlier, so
        samplers and callers see a consistent end-of-run time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._heap:
                entry = self._heap[0]
                if entry.event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = entry.time
                self._events_executed += 1
                entry.event.action()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

"""Inter-tier network link model.

The paper's tiers are connected by a dedicated fast-Ethernet segment
that is never the bottleneck; the model therefore charges a fixed
propagation latency plus a per-byte serialization cost and tracks the
packet and byte counters the OS-level telemetry reports (``rxpck/s``,
``txbyt/s`` and friends in sysstat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .engine import Simulator

__all__ = ["NetworkLink", "LinkSample"]


@dataclass
class LinkSample:
    """Traffic counters for one sampling interval of one link."""

    t_start: float
    t_end: float
    packets: int = 0
    bytes: int = 0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def packet_rate(self) -> float:
        return self.packets / self.duration if self.duration > 0 else 0.0

    @property
    def byte_rate(self) -> float:
        return self.bytes / self.duration if self.duration > 0 else 0.0


class NetworkLink:
    """Fixed-latency link with bandwidth-based serialization delay."""

    def __init__(
        self,
        sim: Simulator,
        *,
        latency_s: float = 0.0002,
        bandwidth_bytes_per_s: float = 12.5e6,  # 100 Mb/s fast Ethernet
    ):
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.latency_s = latency_s
        self.bandwidth = bandwidth_bytes_per_s
        self._packets = 0
        self._bytes = 0
        self._sample_start = sim.now

    def transfer(
        self, size_bytes: int, on_delivered: Callable[[], None]
    ) -> float:
        """Deliver ``size_bytes`` after latency + serialization delay."""
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        self._packets += 1 + size_bytes // 1460  # MTU-sized segments
        self._bytes += size_bytes
        delay = self.latency_s + size_bytes / self.bandwidth
        self.sim.schedule(delay, on_delivered)
        return delay

    def sample(self) -> LinkSample:
        """Drain traffic counters for the elapsed interval."""
        now = self.sim.now
        sample = LinkSample(
            t_start=self._sample_start,
            t_end=now,
            packets=self._packets,
            bytes=self._bytes,
        )
        self._sample_start = now
        self._packets = 0
        self._bytes = 0
        return sample

"""Versioned meter indirection for atomic hot-swap.

A :class:`MeterHandle` is the one mutable cell between a serving layer
and its trained :class:`~repro.core.capacity.CapacityMeter`.  Swapping
a retrained meter in is a single reference assignment on the handle —
readers that resolve the meter through the handle see either the old
meter or the new one, never a half-installed mix — and every swap bumps
a monotonically increasing ``version`` that checkpoints, snapshots and
``/healthz`` report.

:class:`StagedSwap` is the unit a service stages when a swap is
requested mid-window: the serialized meter payload plus the tick at
which it becomes effective (always a window boundary, so the install
never splits a decision window).

This module deliberately imports nothing from the rest of the package:
``control`` and ``core`` both use it, and it must stay cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


def next_window_boundary(tick: int, window: int) -> int:
    """First tick ``>= tick`` that closes a decision window.

    A service that stages a swap *at* a boundary installs immediately;
    mid-window stages wait for the window in flight to decide first.
    """
    if window <= 0:
        return tick
    remainder = tick % window
    if remainder == 0:
        return tick
    return tick + (window - remainder)


@dataclass(frozen=True)
class StagedSwap:
    """A pending hot-swap: install ``payload`` once ``effective_tick`` passes."""

    version: int
    effective_tick: int
    payload: Dict[str, Any]

    def to_manifest(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "effective_tick": self.effective_tick,
            "payload": self.payload,
        }

    @classmethod
    def from_manifest(cls, raw: Dict[str, Any]) -> "StagedSwap":
        return cls(
            version=int(raw["version"]),
            effective_tick=int(raw["effective_tick"]),
            payload=dict(raw["payload"]),
        )


@dataclass
class MeterHandle:
    """The versioned cell a serving layer resolves its meter through."""

    meter: Any
    version: int = 1
    pending: Optional[StagedSwap] = field(default=None, repr=False)

    def resolve(self) -> Any:
        return self.meter

    def stage(self, swap: StagedSwap) -> None:
        """Stage a swap; a later-versioned stage supersedes an earlier one.

        Staging a version the handle has already installed is a no-op,
        so supervisors may blindly re-stage their whole swap log after
        a crash recovery without risking a re-install (which would
        clobber any online adaptation since the original install).
        """
        if swap.version <= self.version:
            return
        if self.pending is None or swap.version >= self.pending.version:
            self.pending = swap

    def due(self, tick: int) -> Optional[StagedSwap]:
        """The staged swap, if ``tick`` has reached its boundary."""
        if self.pending is not None and tick >= self.pending.effective_tick:
            return self.pending
        return None

    def install(self, meter: Any, version: int) -> None:
        """The atomic step: one reference assignment plus the version bump."""
        self.meter = meter
        self.version = version
        if self.pending is not None and self.pending.version <= version:
            self.pending = None

    def next_version(self) -> int:
        staged = self.pending.version if self.pending is not None else self.version
        return max(self.version, staged) + 1

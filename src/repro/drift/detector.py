"""Online drift detection over the live decision stream.

The detector rides the decision path: every published
:class:`~repro.core.monitor.MonitorDecision` is folded into a per-site
sliding horizon, and each fold re-evaluates four deterministic trigger
signals:

- **agreement** — label-vs-prediction agreement, available whenever the
  window carried truth feedback (the simulator labels every window; a
  production deployment would feed back SLA violations),
- **confidence** — the trend of ``MonitorDecision.confidence`` across
  the horizon (recent half vs. older half),
- **abstain** — the fraction of synopsis votes that had to be
  substituted,
- **impute** — the fraction of windows that needed marginal imputation.

Trigger thresholds are jittered per site from a seeded substream, so a
fleet never stampedes into retraining on the same window while staying
bit-reproducible run to run.  A fired trigger latches until the service
confirms a hot-swap (``notify_swap``), which clears the horizon and
starts a cooldown so the fresh meter is judged on its own windows.

Everything here is deterministic and checkpointable: ``state_dict`` /
``load_state`` round-trip the horizon buffers, latches and cooldowns so
a resumed campaign triggers on exactly the same window as an
uninterrupted one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

import numpy as np

from ..obs import OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.monitor import MonitorDecision

DRIFT_STATE_FORMAT = "repro.drift-state/1"

TRIGGER_REASONS = ("agreement", "confidence", "abstain", "impute")


def _stable_hash(text: str) -> int:
    """Deterministic across processes, unlike built-in str hashing."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % 1_000_003
    return value


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs for the detector; defaults suit window=10 campaigns.

    ``seed`` derives the per-site threshold jitter: each site's
    thresholds are shifted by up to ``±jitter/2`` on an independent
    deterministic substream keyed by the site name.
    """

    horizon: int = 24
    min_windows: int = 12
    min_truth: int = 6
    agreement_floor: float = 0.6
    confidence_drop: float = 0.25
    abstain_ceiling: float = 0.5
    impute_ceiling: float = 0.6
    cooldown: int = 24
    seed: int = 0
    jitter: float = 0.02

    def __post_init__(self) -> None:
        if self.horizon < 2:
            raise ValueError("horizon must be >= 2")
        if self.min_windows < 2:
            raise ValueError("min_windows must be >= 2")


@dataclass(frozen=True)
class DriftVerdict:
    """One site's current drift assessment (recomputed every window)."""

    site: str
    drifted: bool
    reason: Optional[str]
    windows: int
    agreement: Optional[float]
    confidence_trend: float
    mean_confidence: float
    abstain_rate: float
    impute_rate: float
    triggered_at: Optional[int]
    cooldown: int


class _SiteTracker:
    """Sliding-horizon state for one site."""

    __slots__ = (
        "site",
        "config",
        "_floors",
        "_conf",
        "_abstain",
        "_impute",
        "_agree",
        "windows",
        "cooldown",
        "drifted",
        "reason",
        "triggered_at",
        "verdict",
    )

    def __init__(self, site: str, config: DriftConfig) -> None:
        self.site = site
        self.config = config
        # seeded deterministic per-site thresholds: shift each base
        # threshold by up to ±jitter/2 on an independent substream
        seq = np.random.SeedSequence(
            config.seed, spawn_key=(_stable_hash(site),)
        )
        shifts = np.random.default_rng(seq).uniform(-0.5, 0.5, size=4)
        self._floors = (
            config.agreement_floor + float(shifts[0]) * config.jitter,
            config.confidence_drop + float(shifts[1]) * config.jitter,
            config.abstain_ceiling + float(shifts[2]) * config.jitter,
            config.impute_ceiling + float(shifts[3]) * config.jitter,
        )
        horizon = config.horizon
        self._conf: Deque[float] = deque(maxlen=horizon)
        self._abstain: Deque[float] = deque(maxlen=horizon)
        self._impute: Deque[float] = deque(maxlen=horizon)
        self._agree: Deque[Optional[float]] = deque(maxlen=horizon)
        self.windows = 0
        self.cooldown = 0
        self.drifted = False
        self.reason: Optional[str] = None
        self.triggered_at: Optional[int] = None
        self.verdict: Optional[DriftVerdict] = None

    def observe(self, decision: "MonitorDecision") -> DriftVerdict:
        prediction = decision.prediction
        total = len(prediction.synopsis_votes) or len(prediction.abstained)
        abstain = len(prediction.abstained) / total if total else 1.0
        self._conf.append(float(decision.confidence))
        self._abstain.append(abstain)
        self._impute.append(1.0 if prediction.imputed_attributes > 0 else 0.0)
        # held windows re-emit a stale prediction; judging it against
        # the current window's truth would punish holds, not drift
        self._agree.append(
            None if decision.held else float(prediction.state == decision.truth)
        )
        self.windows += 1
        if self.cooldown > 0:
            self.cooldown -= 1
        verdict = self._evaluate(decision.index)
        self.verdict = verdict
        return verdict

    def _evaluate(self, window_index: int) -> DriftVerdict:
        confs = list(self._conf)
        half = len(confs) // 2
        trend = _mean(confs[half:]) - _mean(confs[:half]) if half else 0.0
        abstain_rate = _mean(list(self._abstain))
        impute_rate = _mean(list(self._impute))
        truthful = [a for a in self._agree if a is not None]
        agreement = (
            _mean(truthful) if len(truthful) >= self.config.min_truth else None
        )
        if (
            not self.drifted
            and self.cooldown == 0
            and len(confs) >= self.config.min_windows
        ):
            agreement_floor, drop, abstain_ceiling, impute_ceiling = self._floors
            reason: Optional[str] = None
            if agreement is not None and agreement < agreement_floor:
                reason = "agreement"
            elif trend < -drop:
                reason = "confidence"
            elif abstain_rate > abstain_ceiling:
                reason = "abstain"
            elif impute_rate > impute_ceiling:
                reason = "impute"
            if reason is not None:
                self.drifted = True
                self.reason = reason
                self.triggered_at = window_index
                if OBS.enabled:
                    OBS.inc(
                        "repro_drift_triggers_total",
                        help="Drift triggers fired, by site and signal.",
                        site=self.site,
                        reason=reason,
                    )
        return DriftVerdict(
            site=self.site,
            drifted=self.drifted,
            reason=self.reason,
            windows=len(confs),
            agreement=agreement,
            confidence_trend=trend,
            mean_confidence=_mean(confs),
            abstain_rate=abstain_rate,
            impute_rate=impute_rate,
            triggered_at=self.triggered_at,
            cooldown=self.cooldown,
        )

    def clear(self) -> None:
        """Forget the horizon and start the post-swap cooldown."""
        self._conf.clear()
        self._abstain.clear()
        self._impute.clear()
        self._agree.clear()
        self.cooldown = self.config.cooldown
        self.drifted = False
        self.reason = None
        self.verdict = None

    def state_dict(self) -> Dict[str, Any]:
        return {
            "conf": list(self._conf),
            "abstain": list(self._abstain),
            "impute": list(self._impute),
            "agree": list(self._agree),
            "windows": self.windows,
            "cooldown": self.cooldown,
            "drifted": self.drifted,
            "reason": self.reason,
            "triggered_at": self.triggered_at,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._conf.clear()
        self._conf.extend(float(v) for v in state["conf"])
        self._abstain.clear()
        self._abstain.extend(float(v) for v in state["abstain"])
        self._impute.clear()
        self._impute.extend(float(v) for v in state["impute"])
        self._agree.clear()
        self._agree.extend(
            None if v is None else float(v) for v in state["agree"]
        )
        self.windows = int(state["windows"])
        self.cooldown = int(state["cooldown"])
        self.drifted = bool(state["drifted"])
        raw_reason = state.get("reason")
        self.reason = str(raw_reason) if raw_reason is not None else None
        raw_at = state.get("triggered_at")
        self.triggered_at = int(raw_at) if raw_at is not None else None
        self.verdict = None


class DriftDetector:
    """Per-site drift trackers behind one decision-path entry point."""

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self.config = config if config is not None else DriftConfig()
        self._sites: Dict[str, _SiteTracker] = {}

    def _tracker(self, site: str) -> _SiteTracker:
        tracker = self._sites.get(site)
        if tracker is None:
            tracker = _SiteTracker(site, self.config)
            self._sites[site] = tracker
        return tracker

    def observe(self, site: str, decision: "MonitorDecision") -> DriftVerdict:
        """Fold one real (non-synthesized) decision; returns the verdict."""
        if OBS.enabled:
            OBS.inc(
                "repro_drift_windows_total",
                help="Decision windows folded into the drift detector.",
            )
        return self._tracker(site).observe(decision)

    def verdict(self, site: str) -> Optional[DriftVerdict]:
        tracker = self._sites.get(site)
        return tracker.verdict if tracker is not None else None

    def verdicts(self) -> Dict[str, DriftVerdict]:
        return {
            name: tracker.verdict
            for name, tracker in sorted(self._sites.items())
            if tracker.verdict is not None
        }

    def drifted_sites(self) -> Tuple[str, ...]:
        return tuple(
            name
            for name, tracker in sorted(self._sites.items())
            if tracker.drifted
        )

    @property
    def triggered(self) -> bool:
        return any(tracker.drifted for tracker in self._sites.values())

    def notify_swap(self) -> None:
        """A retrained meter was installed: reset horizons, start cooldowns."""
        for tracker in self._sites.values():
            tracker.clear()

    def state_dict(self) -> Dict[str, Any]:
        return {
            "format": DRIFT_STATE_FORMAT,
            "sites": {
                name: tracker.state_dict()
                for name, tracker in sorted(self._sites.items())
            },
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        fmt = state.get("format")
        if fmt != DRIFT_STATE_FORMAT:
            raise ValueError(f"unsupported drift state format: {fmt!r}")
        self._sites.clear()
        for name, raw in state["sites"].items():
            self._tracker(name).load_state(raw)

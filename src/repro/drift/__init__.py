"""Drift detection and zero-downtime retraining.

The paper's meter is trained once; this package keeps it honest while
serving.  Three pieces:

- :mod:`repro.drift.detector` — an online :class:`DriftDetector` that
  rides the decision path, tracking per-site sliding-horizon trends over
  ``MonitorDecision.confidence``, abstain/impute rates, and
  label-vs-prediction agreement, with seeded deterministic per-site
  trigger thresholds.
- :mod:`repro.drift.retrain` — background retraining jobs that rebuild
  the synopsis/coordinator set through the existing experiment pipeline
  and artifact cache on a dedicated :class:`~repro.parallel.WorkerPool`
  worker, so warm retrains reuse cached runs and never block the tick
  loop.
- :mod:`repro.drift.handle` — the versioned :class:`MeterHandle`
  indirection plus :class:`StagedSwap`, the unit both services use to
  install a retrained meter at a window boundary with one reference
  swap.
"""

from .detector import DriftConfig, DriftDetector, DriftVerdict
from .handle import MeterHandle, StagedSwap, next_window_boundary
from .retrain import (
    BackgroundRetrainer,
    DriftRetrainController,
    RetrainResult,
    RetrainSpec,
    retrain_meter,
    retrain_meter_job,
)

__all__ = [
    "BackgroundRetrainer",
    "DriftConfig",
    "DriftDetector",
    "DriftRetrainController",
    "DriftVerdict",
    "MeterHandle",
    "RetrainResult",
    "RetrainSpec",
    "StagedSwap",
    "next_window_boundary",
    "retrain_meter",
    "retrain_meter_job",
]

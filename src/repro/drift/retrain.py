"""Background retraining through the experiment pipeline + artifact cache.

A retrain is just "build the meter again at the current traffic scale":
the job constructs an :class:`~repro.experiments.pipeline.ExperimentPipeline`
(optionally over an :class:`~repro.parallel.cache.ArtifactCache`) and
asks it for a trained meter.  Warm retrains — same config, populated
cache — load every training run and synopsis from the cache and report
``builds == {}``-equivalent counters, which the ``drift-retrain`` CI job
asserts.

:class:`BackgroundRetrainer` runs the job on a dedicated single-worker
:class:`~repro.parallel.WorkerPool` so the serving tick loop never
blocks: the service calls :meth:`BackgroundRetrainer.poll` between
ticks (non-blocking, via ``WorkerPool.poll``) and hot-swaps the payload
when the build lands.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..parallel.pool import WorkerPool
from .handle import StagedSwap


@dataclass(frozen=True)
class RetrainSpec:
    """Everything a retrain job needs; picklable and JSON-friendly."""

    level: str
    scale: float = 1.0
    window: int = 30
    seed: int = 11
    learner: str = "tan"
    history_bits: int = 3
    delta: float = 5.0
    scheme: str = "OPTIMISTIC"
    cache_dir: Optional[str] = None


@dataclass(frozen=True)
class RetrainResult:
    """A finished retrain: the meter payload plus build accounting."""

    spec: RetrainSpec
    payload: Dict[str, Any]
    builds: Dict[str, int]
    duration_s: float

    @property
    def warm(self) -> bool:
        """Did the artifact cache satisfy every run and synopsis build?"""
        return sum(self.builds.values()) == 0


def retrain_meter_job(spec: RetrainSpec) -> Dict[str, Any]:
    """The worker-side job body: build a meter, return its payload.

    Module-level so the pool can ship it under any start method; imports
    stay local so constructing a retrainer never drags the experiment
    stack into the serving process.
    """
    from ..core.coordinator import Scheme
    from ..experiments.pipeline import ExperimentPipeline, PipelineConfig
    from ..parallel.cache import ArtifactCache

    cache = ArtifactCache(spec.cache_dir) if spec.cache_dir else None
    pipeline = ExperimentPipeline(
        PipelineConfig(scale=spec.scale, window=spec.window, seed=spec.seed),
        cache=cache,
    )
    meter = pipeline.meter(
        spec.level,
        learner=spec.learner,
        history_bits=spec.history_bits,
        delta=spec.delta,
        scheme=Scheme[spec.scheme],
    )
    return {
        "payload": meter.to_payload(),
        "builds": dict(pipeline.builds),
    }


def retrain_meter(spec: RetrainSpec) -> RetrainResult:
    """Synchronous retrain, for ``--workers 0`` runs and tests."""
    start = time.monotonic()
    raw = retrain_meter_job(spec)
    return RetrainResult(
        spec=spec,
        payload=raw["payload"],
        builds={str(k): int(v) for k, v in raw["builds"].items()},
        duration_s=time.monotonic() - start,
    )


class BackgroundRetrainer:
    """One in-flight retrain on a dedicated pool worker.

    The tick loop drives it with non-blocking :meth:`poll` calls; a
    crash in the build surfaces as the pool's ``WorkerError`` /
    ``WorkerCrash`` on collection, never silently.
    """

    def __init__(self, *, pool: Optional[WorkerPool] = None) -> None:
        self._pool = pool
        self._owns_pool = pool is None
        self._spec: Optional[RetrainSpec] = None
        self._started_at = 0.0

    @property
    def pending(self) -> bool:
        """Is a retrain currently in flight?"""
        return self._spec is not None

    def start(self, spec: RetrainSpec) -> None:
        if self._spec is not None:
            raise RuntimeError("a retrain is already in flight")
        if self._pool is None:
            self._pool = WorkerPool(1)
        self._spec = spec
        self._started_at = time.monotonic()
        self._pool.submit(0, retrain_meter_job, spec)

    def poll(self) -> Optional[RetrainResult]:
        """Non-blocking: the finished result, or ``None`` if still building."""
        if self._spec is None or self._pool is None:
            return None
        if not self._pool.poll(0):
            return None
        return self._collect()

    def wait(self, timeout: Optional[float] = None) -> RetrainResult:
        """Block until the in-flight retrain lands."""
        if self._spec is None or self._pool is None:
            raise RuntimeError("no retrain in flight")
        return self._collect(timeout)

    def _collect(self, timeout: Optional[float] = None) -> RetrainResult:
        assert self._pool is not None and self._spec is not None
        spec = self._spec
        try:
            raw = self._pool.result(0, timeout=timeout)
        finally:
            self._spec = None
        return RetrainResult(
            spec=spec,
            payload=raw["payload"],
            builds={str(k): int(v) for k, v in raw["builds"].items()},
            duration_s=time.monotonic() - self._started_at,
        )

    def close(self) -> None:
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None


class DriftRetrainController:
    """Closes the loop: drift verdict → retrain → atomic hot-swap.

    Works over any service exposing ``drift`` (a
    :class:`~repro.drift.detector.DriftDetector`), ``ticks`` and
    ``swap_meter`` — both :class:`~repro.control.service.CapacityService`
    and :class:`~repro.control.shard.ShardedCapacityService` do.  Drive
    it with :meth:`step` at pipe-idle points (between ``push`` /
    ``replay`` / ``advance`` calls).

    Two modes:

    * **inline** (default) — the retrain runs synchronously inside
      :meth:`step`.  The trigger window, retrain and swap ticks are
      then pure functions of the decision stream, which is what makes
      the ``repro drift`` campaign byte-diffable across runs and
      worker counts.
    * **background** — the retrain runs on a dedicated pool worker via
      :class:`BackgroundRetrainer`; :meth:`step` polls non-blockingly
      and stages the swap on the tick the build happens to land.  The
      tick loop never blocks, at the price of a timing-dependent (but
      still window-aligned and atomic) swap tick.

    ``events`` records ``(kind, tick, detail)`` tuples —
    ``drift``/``retrain``/``swap`` — for campaign commentary.
    """

    def __init__(
        self,
        service: Any,
        spec: RetrainSpec,
        *,
        background: bool = False,
        retrainer: Optional[BackgroundRetrainer] = None,
    ) -> None:
        if getattr(service, "drift", None) is None:
            raise ValueError(
                "DriftRetrainController needs a service with drift "
                "detection enabled (call enable_drift() first)"
            )
        self.service = service
        self.spec = spec
        self.background = background
        self._retrainer = retrainer
        if background and self._retrainer is None:
            self._retrainer = BackgroundRetrainer()
        self.events: List[Tuple[str, int, str]] = []
        self.retrains: List[RetrainResult] = []
        self.swaps: List[StagedSwap] = []
        self._armed_logged = False

    @property
    def pending(self) -> bool:
        """Is a background retrain currently in flight?"""
        return self._retrainer is not None and self._retrainer.pending

    def _log_trigger(self) -> None:
        if self._armed_logged:
            return
        self._armed_logged = True
        drift = self.service.drift
        for site in drift.drifted_sites():
            verdict = drift.verdict(site)
            self.events.append(
                ("drift", self.service.ticks, f"{site} {verdict.reason}")
            )

    def _land(self, result: RetrainResult) -> StagedSwap:
        self.retrains.append(result)
        self.events.append(
            (
                "retrain",
                self.service.ticks,
                "warm" if result.warm else "cold",
            )
        )
        swap = self.service.swap_meter(result.payload)
        self.swaps.append(swap)
        self.events.append(
            (
                "swap",
                self.service.ticks,
                f"v{swap.version} effective {swap.effective_tick}",
            )
        )
        self._armed_logged = False
        return swap

    def step(self) -> Optional[StagedSwap]:
        """Advance the loop one notch; the staged swap when one lands."""
        drift = self.service.drift
        if drift is None:
            return None
        if self.pending:
            assert self._retrainer is not None
            result = self._retrainer.poll()
            if result is None:
                return None
            return self._land(result)
        if not drift.triggered:
            return None
        self._log_trigger()
        if self.background:
            assert self._retrainer is not None
            self._retrainer.start(self.spec)
            return None
        return self._land(retrain_meter(self.spec))

    def drain(self, timeout: Optional[float] = None) -> Optional[StagedSwap]:
        """Block until an in-flight background retrain lands (if any)."""
        if not self.pending:
            return None
        assert self._retrainer is not None
        return self._land(self._retrainer.wait(timeout))

    def close(self) -> None:
        if self._retrainer is not None:
            self._retrainer.close()

"""Command-line interface.

Six subcommands cover the operational loop a downstream user needs:

* ``repro simulate`` — run a workload on the simulated testbed and save
  the measurement run (the expensive step, separable from the rest);
* ``repro train`` — train a :class:`~repro.core.capacity.CapacityMeter`
  from saved (or freshly simulated) training runs and persist it;
* ``repro predict`` — replay a saved run through a saved meter window
  by window, printing the online decisions;
* ``repro evaluate`` — score a saved meter against a saved run
  (overload balanced accuracy + bottleneck accuracy);
* ``repro monitor`` — run a live simulation with a streaming
  :class:`~repro.core.monitor.OnlineCapacityMonitor` attached, printing
  each window's decision as it is made (bounded memory, no saved run);
* ``repro report`` — regenerate any of the paper's tables and figures.

Every command accepts ``--scale`` to shrink simulated durations; 1.0 is
paper scale (3000 s training ramps, 30 s windows).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from .analysis.metrics import summarize_run
from .core.capacity import CapacityMeter
from .core.labeler import SlaOracle
from .core.synopsis import SynopsisConfig
from .experiments.pipeline import (
    ExperimentPipeline,
    PipelineConfig,
    TRAINING_WORKLOADS,
)
from .experiments.testbed import (
    TestbedConfig,
    run_schedule,
    steady_test_schedule,
    stress_schedule,
    training_schedule,
)
from .telemetry.perfctr import PERFCTR_PROFILE, SYSSTAT_PROFILE
from .telemetry.persistence import load_run, save_run
from .telemetry.sampler import MeasurementRun
from .workload.tpcw import STANDARD_MIXES, make_unknown_mix

__all__ = ["main"]

_COLLECTORS = {
    "none": None,
    "perfctr": PERFCTR_PROFILE,
    "sysstat": SYSSTAT_PROFILE,
}


def _window_for(scale: float) -> int:
    return 30 if scale >= 0.8 else 10


def _resolve_mix(name: str):
    if name in STANDARD_MIXES:
        return STANDARD_MIXES[name]
    if name == "unknown":
        return make_unknown_mix()
    raise SystemExit(
        f"unknown mix {name!r}; choose from "
        f"{sorted(STANDARD_MIXES) + ['unknown']}"
    )


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def cmd_simulate(args: argparse.Namespace) -> int:
    mix = _resolve_mix(args.mix)
    config = TestbedConfig()
    if args.profile == "training":
        schedule = training_schedule(mix, config, scale=args.scale)
    elif args.profile == "test":
        schedule = steady_test_schedule(mix, config, scale=args.scale)
    else:
        schedule = stress_schedule(mix, config, scale=args.scale)
    output = run_schedule(
        schedule,
        mix,
        workload_name=f"{args.profile}-{args.mix}",
        seed=args.seed,
        config=config,
        collector=_COLLECTORS[args.collector],
    )
    save_run(output.run, args.out)
    summary = summarize_run(output.run)
    for row in summary.rows():
        print(row)
    print(f"saved {len(output.run)} samples to {args.out}")
    return 0


def _training_runs(args: argparse.Namespace) -> Dict[str, MeasurementRun]:
    runs: Dict[str, MeasurementRun] = {}
    for spec in args.run or []:
        workload, _, path = spec.partition("=")
        if not path:
            raise SystemExit(
                f"--run expects workload=path, got {spec!r}"
            )
        runs[workload] = load_run(path)
    if not runs:
        print(
            f"# no --run given: simulating the standard training "
            f"workloads at scale {args.scale}"
        )
        pipeline = ExperimentPipeline(
            PipelineConfig(scale=args.scale, window=_window_for(args.scale))
        )
        runs = {w: pipeline.training_run(w) for w in TRAINING_WORKLOADS}
    return runs


def cmd_train(args: argparse.Namespace) -> int:
    runs = _training_runs(args)
    window = args.window or _window_for(args.scale)
    meter = CapacityMeter(
        level=args.level,
        window=window,
        labeler=SlaOracle(sla_response_time=args.sla),
        synopsis_config=SynopsisConfig(learner=args.learner),
        history_bits=args.history_bits,
        delta=args.delta,
    )
    meter.train(runs)
    for (workload, tier), synopsis in sorted(meter.synopses.items()):
        print(
            f"synopsis {workload}/{tier}: attributes {synopsis.attributes} "
            f"(cv {synopsis.cv_score:.3f})"
        )
    meter.save(args.out)
    print(f"saved meter to {args.out}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    meter = CapacityMeter.load(args.meter, labeler=SlaOracle())
    run = load_run(args.run)
    instances = meter.instances_for(run)
    if not instances:
        raise SystemExit("run is shorter than one decision window")
    print(f"{'window':>6} {'state':>9} {'bottleneck':>10} {'truth':>6}")
    agree = 0
    for index, instance in enumerate(instances):
        prediction = meter.predict_window(instance.metrics)
        meter.observe(instance.label)
        agree += prediction.state == instance.label
        print(
            f"{index:6d} "
            f"{'OVERLOAD' if prediction.overloaded else 'ok':>9} "
            f"{prediction.bottleneck or '-':>10} "
            f"{'OVERLOAD' if instance.label else 'ok':>6}"
        )
    print(f"# agreement {agree}/{len(instances)}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    meter = CapacityMeter.load(args.meter, labeler=SlaOracle())
    run = load_run(args.run)
    scores = meter.evaluate_run(run)
    print(f"overload balanced accuracy: {scores['overload_ba']:.3f}")
    print(f"bottleneck accuracy:        {scores['bottleneck_accuracy']:.3f}")
    print(
        f"confusion: tp={scores['tp']:.0f} tn={scores['tn']:.0f} "
        f"fp={scores['fp']:.0f} fn={scores['fn']:.0f}"
    )
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    from .core.monitor import MonitorDecision, OnlineCapacityMonitor
    from .simulator import (
        AppServer,
        DatabaseServer,
        MultiTierWebsite,
        Simulator,
    )
    from .workload.generator import ScheduleDriver
    from .workload.rbe import RemoteBrowserEmulator

    # validate the cheap arguments before the expensive training step
    mix = _resolve_mix(args.mix)
    if args.retain is not None and args.retain < 0:
        raise SystemExit("--retain must be non-negative")

    if args.meter:
        meter = CapacityMeter.load(args.meter, labeler=SlaOracle())
    else:
        print(
            f"# no --meter given: training a fresh {args.level} meter "
            f"at scale {args.scale}"
        )
        pipeline = ExperimentPipeline(
            PipelineConfig(scale=args.scale, window=_window_for(args.scale))
        )
        meter = pipeline.meter(args.level)
    config = TestbedConfig()
    if args.profile == "training":
        schedule = training_schedule(mix, config, scale=args.scale)
    elif args.profile == "test":
        schedule = steady_test_schedule(mix, config, scale=args.scale)
    else:
        schedule = stress_schedule(mix, config, scale=args.scale)

    sim = Simulator()
    app = AppServer(sim, workers=config.app_workers)
    db = DatabaseServer(sim, connections=config.db_connections)
    website = MultiTierWebsite(sim, app, db)
    rbe = RemoteBrowserEmulator(
        sim,
        website,
        mix,
        think_time_mean=config.think_time_mean,
        continuity=config.continuity,
        seed=args.seed,
    )
    ScheduleDriver(sim, rbe, schedule)

    print(f"{'window':>6} {'state':>9} {'bottleneck':>10} {'truth':>6} {'conf':>5}")

    def show(decision: MonitorDecision) -> None:
        prediction = decision.prediction
        print(
            f"{decision.index:6d} "
            f"{'OVERLOAD' if prediction.overloaded else 'ok':>9} "
            f"{prediction.bottleneck or '-':>10} "
            f"{'OVERLOAD' if decision.truth else 'ok':>6} "
            f"{'yes' if prediction.confident else 'no':>5}"
        )

    monitor = OnlineCapacityMonitor(
        meter,
        adapt=args.adapt,
        retain_decisions=args.retain,
        on_decision=show,
    )
    sampler = monitor.attach(
        sim,
        website,
        workload=f"{args.profile}-{args.mix}",
        interval=config.sampling_interval,
        hpc_noise=config.hpc_noise,
        os_noise=config.os_noise,
        seed=args.seed,
    )
    sim.run(until=schedule.duration)
    sampler.stop()
    print()
    for row in monitor.summary_rows():
        print(row)
    return 0


_ARTIFACTS = (
    "fig3",
    "table1a",
    "table1b",
    "fig4",
    "timing",
    "overhead",
    "history",
    "scheme",
    "delta",
    "fallback",
    "hybrid",
)


def cmd_report(args: argparse.Namespace) -> int:
    from .experiments import (
        run_delta_ablation,
        run_fallback_ablation,
        run_fig3,
        run_fig4,
        run_history_ablation,
        run_hybrid_comparison,
        run_overhead,
        run_scheme_ablation,
        run_table1,
        run_timing,
    )

    pipeline = ExperimentPipeline(
        PipelineConfig(scale=args.scale, window=_window_for(args.scale))
    )
    producers = {
        "fig3": lambda: run_fig3(pipeline).rows(every=60),
        "table1a": lambda: run_table1(pipeline, "browsing").rows(),
        "table1b": lambda: run_table1(pipeline, "ordering").rows(),
        "fig4": lambda: run_fig4(pipeline).rows(),
        "timing": lambda: run_timing(pipeline).rows(),
        "overhead": lambda: run_overhead(pipeline, executions=3).rows(),
        "history": lambda: run_history_ablation(pipeline).rows(),
        "scheme": lambda: run_scheme_ablation(pipeline).rows(),
        "delta": lambda: run_delta_ablation(pipeline).rows(),
        "fallback": lambda: run_fallback_ablation(pipeline).rows(),
        "hybrid": lambda: run_hybrid_comparison(pipeline).rows(),
    }
    for row in producers[args.artifact]():
        print(row)
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="run a workload and save the measurement run"
    )
    simulate.add_argument(
        "--mix",
        default="ordering",
        help="browsing | shopping | ordering | unknown",
    )
    simulate.add_argument(
        "--profile",
        choices=("training", "test", "stress"),
        default="test",
        help="schedule shape (ramp+spike, staircase, or near-saturation)",
    )
    simulate.add_argument("--scale", type=float, default=0.3)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--collector", choices=sorted(_COLLECTORS), default="none"
    )
    simulate.add_argument("--out", required=True, help="output .json[.gz]")
    simulate.set_defaults(func=cmd_simulate)

    train = sub.add_parser("train", help="train and save a capacity meter")
    train.add_argument(
        "--run",
        action="append",
        metavar="WORKLOAD=PATH",
        help="saved training run (repeatable); omit to simulate fresh ones",
    )
    train.add_argument("--scale", type=float, default=0.3)
    train.add_argument("--level", choices=("hpc", "os", "hybrid"), default="hpc")
    train.add_argument("--learner", default="tan")
    train.add_argument("--window", type=int, default=None)
    train.add_argument("--sla", type=float, default=0.5)
    train.add_argument("--history-bits", type=int, default=3)
    train.add_argument("--delta", type=float, default=5.0)
    train.add_argument("--out", required=True)
    train.set_defaults(func=cmd_train)

    predict = sub.add_parser(
        "predict", help="replay a saved run through a saved meter"
    )
    predict.add_argument("--meter", required=True)
    predict.add_argument("--run", required=True)
    predict.set_defaults(func=cmd_predict)

    evaluate = sub.add_parser(
        "evaluate", help="score a saved meter on a saved run"
    )
    evaluate.add_argument("--meter", required=True)
    evaluate.add_argument("--run", required=True)
    evaluate.set_defaults(func=cmd_evaluate)

    monitor = sub.add_parser(
        "monitor",
        help="stream a live simulation through an online capacity monitor",
    )
    monitor.add_argument(
        "--mix",
        default="ordering",
        help="browsing | shopping | ordering | unknown",
    )
    monitor.add_argument(
        "--profile",
        choices=("training", "test", "stress"),
        default="test",
        help="schedule shape (ramp+spike, staircase, or near-saturation)",
    )
    monitor.add_argument("--scale", type=float, default=0.3)
    monitor.add_argument("--seed", type=int, default=1)
    monitor.add_argument(
        "--meter", default=None, help="saved meter; omit to train fresh"
    )
    monitor.add_argument(
        "--level", choices=("hpc", "os", "hybrid"), default="hpc",
        help="metric level when training a fresh meter",
    )
    monitor.add_argument(
        "--adapt",
        action="store_true",
        help="keep updating the coordinated tables from live ground truth",
    )
    monitor.add_argument(
        "--retain",
        type=int,
        default=None,
        help="bound the kept decision tail (default: keep all)",
    )
    monitor.set_defaults(func=cmd_monitor)

    report = sub.add_parser(
        "report", help="regenerate one of the paper's tables/figures"
    )
    report.add_argument("--artifact", choices=_ARTIFACTS, required=True)
    report.add_argument("--scale", type=float, default=0.3)
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())

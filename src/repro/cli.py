"""Command-line interface.

Ten subcommands cover the operational loop a downstream user needs:

* ``repro simulate`` — run a workload on the simulated testbed and save
  the measurement run (the expensive step, separable from the rest);
* ``repro train`` — train a :class:`~repro.core.capacity.CapacityMeter`
  from saved (or freshly simulated) training runs and persist it;
* ``repro predict`` — replay a saved run through a saved meter window
  by window, printing the online decisions;
* ``repro evaluate`` — score a saved meter against a saved run
  (overload balanced accuracy + bottleneck accuracy);
* ``repro monitor`` — run a live simulation with a streaming
  :class:`~repro.core.monitor.OnlineCapacityMonitor` attached, printing
  each window's decision as it is made (bounded memory, no saved run);
  ``--checkpoint``/``--resume`` snapshot and restore the full monitor
  state so a crashed monitor resumes without retraining;
* ``repro faults`` — run a deterministic fault-injection campaign
  (counter dropout, value spikes, stalled collectors, lost/duplicated
  records) and report the decision-accuracy degradation vs the clean
  replay, with an optional ``--min-ba`` CI gate;
* ``repro serve`` — run N independent websites behind per-site online
  monitors and AIMD admission gates
  (:class:`~repro.control.service.CapacityService`): one simulator,
  shared batched synopsis inference, per-site checkpoint/resume via
  ``--checkpoint``/``--resume``;
* ``repro report`` — regenerate any of the paper's tables and figures;
* ``repro table1`` — both Table I sub-tables through the parallel
  engine and the persistent artifact cache (``--jobs``, ``--cache-dir``);
* ``repro cache`` — inspect or clear that artifact cache;
* ``repro obs`` — render a recorded metrics event log as Prometheus
  text (``dump``) or self-measure the instrumentation layer's cost on
  the decision path (``overhead``).

``monitor``, ``faults``, ``serve``, ``report`` and ``table1`` accept
``--metrics-out PATH`` to record internal metrics for the invocation
(:mod:`repro.obs`); a ``.jsonl`` suffix selects the event-log shape,
anything else the text exposition.  Without the flag the
instrumentation layer stays disabled and outputs are byte-identical
to earlier releases.

Every command accepts ``--scale`` to shrink simulated durations; 1.0 is
paper scale (3000 s training ramps, 30 s windows).  ``--jobs N`` fans
independent artifacts out over N worker processes (default: all CPUs);
parallel output is bit-identical to ``--jobs 1``.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from typing import Callable, Dict, Iterator, Optional, Sequence

from .analysis.metrics import summarize_run
from .core.capacity import CapacityMeter
from .obs import OBS
from .core.labeler import SlaOracle
from .core.synopsis import SynopsisConfig
from .experiments.pipeline import (
    ExperimentPipeline,
    PipelineConfig,
    TRAINING_WORKLOADS,
)
from .experiments.testbed import (
    TestbedConfig,
    run_schedule,
    steady_test_schedule,
    stress_schedule,
    training_schedule,
)
from .telemetry.perfctr import PERFCTR_PROFILE, SYSSTAT_PROFILE
from .telemetry.persistence import load_run, save_run
from .telemetry.sampler import MeasurementRun
from .workload.tpcw import STANDARD_MIXES, make_unknown_mix

__all__ = ["main"]

_COLLECTORS = {
    "none": None,
    "perfctr": PERFCTR_PROFILE,
    "sysstat": SYSSTAT_PROFILE,
}


def _window_for(scale: float) -> int:
    return 30 if scale >= 0.8 else 10


def _make_cache(args: argparse.Namespace, *, default_on: bool):
    """ArtifactCache from ``--cache-dir`` / ``--no-cache``, or None.

    Commands built on the artifact cache (``table1``) default it on;
    the older commands only cache when ``--cache-dir`` is given, so
    their behaviour is unchanged for existing scripts.
    """
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None and not default_on:
        return None
    from .parallel import ArtifactCache

    return ArtifactCache(cache_dir)


def _print_build_summary(pipeline, report, jobs: int) -> None:
    """Machine-greppable build/cache counters (CI warm gate)."""
    runs = pipeline.builds["run"]
    synopses = pipeline.builds["synopsis"]
    if report is not None and jobs > 1:
        # worker-side builds are invisible to the parent's counter
        runs += report.runs_built
        synopses += report.synopses_built
    print(f"# jobs: {jobs}")
    print(f"# builds: runs={runs} synopses={synopses}")
    if pipeline.cache is not None:
        for kind, info in pipeline.cache.counters().items():
            print(
                f"# cache {kind}: hits={info['hits']} "
                f"misses={info['misses']} stores={info['stores']}"
            )


def _resolve_mix(name: str):
    if name in STANDARD_MIXES:
        return STANDARD_MIXES[name]
    if name == "unknown":
        return make_unknown_mix()
    raise SystemExit(
        f"unknown mix {name!r}; choose from "
        f"{sorted(STANDARD_MIXES) + ['unknown']}"
    )


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def cmd_simulate(args: argparse.Namespace) -> int:
    mix = _resolve_mix(args.mix)
    config = TestbedConfig()
    if args.profile == "training":
        schedule = training_schedule(mix, config, scale=args.scale)
    elif args.profile == "test":
        schedule = steady_test_schedule(mix, config, scale=args.scale)
    else:
        schedule = stress_schedule(mix, config, scale=args.scale)
    output = run_schedule(
        schedule,
        mix,
        workload_name=f"{args.profile}-{args.mix}",
        seed=args.seed,
        config=config,
        collector=_COLLECTORS[args.collector],
    )
    save_run(output.run, args.out)
    summary = summarize_run(output.run)
    for row in summary.rows():
        print(row)
    print(f"saved {len(output.run)} samples to {args.out}")
    return 0


def _training_runs(args: argparse.Namespace) -> Dict[str, MeasurementRun]:
    runs: Dict[str, MeasurementRun] = {}
    for spec in args.run or []:
        workload, _, path = spec.partition("=")
        if not path:
            raise SystemExit(
                f"--run expects workload=path, got {spec!r}"
            )
        runs[workload] = load_run(path)
    if not runs:
        print(
            f"# no --run given: simulating the standard training "
            f"workloads at scale {args.scale}"
        )
        pipeline = ExperimentPipeline(
            PipelineConfig(scale=args.scale, window=_window_for(args.scale))
        )
        runs = {w: pipeline.training_run(w) for w in TRAINING_WORKLOADS}
    return runs


def cmd_train(args: argparse.Namespace) -> int:
    from .parallel import resolve_jobs

    jobs = resolve_jobs(args.jobs)
    runs = _training_runs(args)
    window = args.window or _window_for(args.scale)
    meter = CapacityMeter(
        level=args.level,
        window=window,
        labeler=SlaOracle(sla_response_time=args.sla),
        synopsis_config=SynopsisConfig(learner=args.learner),
        history_bits=args.history_bits,
        delta=args.delta,
    )
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as executor:
            meter.train(runs, executor=executor)
    else:
        meter.train(runs)
    for (workload, tier), synopsis in sorted(meter.synopses.items()):
        print(
            f"synopsis {workload}/{tier}: attributes {synopsis.attributes} "
            f"(cv {synopsis.cv_score:.3f})"
        )
    meter.save(args.out)
    print(f"saved meter to {args.out}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    meter = CapacityMeter.load(args.meter, labeler=SlaOracle())
    run = load_run(args.run)
    instances = meter.instances_for(run)
    if not instances:
        raise SystemExit("run is shorter than one decision window")
    print(f"{'window':>6} {'state':>9} {'bottleneck':>10} {'truth':>6}")
    agree = 0
    for index, instance in enumerate(instances):
        prediction = meter.predict_window(instance.metrics)
        meter.observe(instance.label)
        agree += prediction.state == instance.label
        print(
            f"{index:6d} "
            f"{'OVERLOAD' if prediction.overloaded else 'ok':>9} "
            f"{prediction.bottleneck or '-':>10} "
            f"{'OVERLOAD' if instance.label else 'ok':>6}"
        )
    print(f"# agreement {agree}/{len(instances)}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    meter = CapacityMeter.load(args.meter, labeler=SlaOracle())
    run = load_run(args.run)
    scores = meter.evaluate_run(run)
    print(f"overload balanced accuracy: {scores['overload_ba']:.3f}")
    print(f"bottleneck accuracy:        {scores['bottleneck_accuracy']:.3f}")
    print(
        f"confusion: tp={scores['tp']:.0f} tn={scores['tn']:.0f} "
        f"fp={scores['fp']:.0f} fn={scores['fn']:.0f}"
    )
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    from .core.monitor import MonitorDecision, OnlineCapacityMonitor
    from .simulator import (
        AppServer,
        DatabaseServer,
        MultiTierWebsite,
        Simulator,
    )
    from .workload.generator import ScheduleDriver
    from .workload.rbe import RemoteBrowserEmulator

    # validate the cheap arguments before the expensive training step
    mix = _resolve_mix(args.mix)
    if args.retain is not None and args.retain < 0:
        raise SystemExit("--retain must be non-negative")
    if args.checkpoint_every < 1:
        raise SystemExit("--checkpoint-every must be at least 1 window")
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")

    if args.resume:
        meter = None  # the checkpoint embeds the trained meter
    elif args.meter:
        meter = CapacityMeter.load(args.meter, labeler=SlaOracle())
    else:
        print(
            f"# no --meter given: training a fresh {args.level} meter "
            f"at scale {args.scale}"
        )
        pipeline = ExperimentPipeline(
            PipelineConfig(scale=args.scale, window=_window_for(args.scale))
        )
        meter = pipeline.meter(args.level)
    config = TestbedConfig()
    if args.profile == "training":
        schedule = training_schedule(mix, config, scale=args.scale)
    elif args.profile == "test":
        schedule = steady_test_schedule(mix, config, scale=args.scale)
    else:
        schedule = stress_schedule(mix, config, scale=args.scale)

    sim = Simulator()
    app = AppServer(sim, workers=config.app_workers)
    db = DatabaseServer(sim, connections=config.db_connections)
    website = MultiTierWebsite(sim, app, db)
    rbe = RemoteBrowserEmulator(
        sim,
        website,
        mix,
        think_time_mean=config.think_time_mean,
        continuity=config.continuity,
        seed=args.seed,
    )
    ScheduleDriver(sim, rbe, schedule)

    print(f"{'window':>6} {'state':>9} {'bottleneck':>10} {'truth':>6} {'conf':>5}")

    def show(decision: MonitorDecision) -> None:
        prediction = decision.prediction
        print(
            f"{decision.index:6d} "
            f"{'OVERLOAD' if prediction.overloaded else 'ok':>9} "
            f"{prediction.bottleneck or '-':>10} "
            f"{'OVERLOAD' if decision.truth else 'ok':>6} "
            f"{'yes' if prediction.confident else 'no':>5}"
        )

    if args.resume:
        from .faults import load_checkpoint

        monitor = load_checkpoint(
            args.checkpoint,
            labeler=SlaOracle(),
            retain_decisions=args.retain,
            on_decision=show,
        )
        print(
            f"# resumed from {args.checkpoint}: "
            f"{monitor.counters.windows} windows / "
            f"{monitor.counters.ticks} ticks already folded, "
            f"no retraining"
        )
    else:
        monitor = OnlineCapacityMonitor(
            meter,
            adapt=args.adapt,
            retain_decisions=args.retain,
            on_decision=show,
        )
    if args.checkpoint:
        from .faults import save_checkpoint

        windows_since = [0]
        inner = monitor.on_decision

        def checkpointing(decision: MonitorDecision) -> None:
            if inner is not None:
                inner(decision)
            windows_since[0] += 1
            if windows_since[0] >= args.checkpoint_every:
                windows_since[0] = 0
                save_checkpoint(monitor, args.checkpoint)

        monitor.on_decision = checkpointing
    sampler = monitor.attach(
        sim,
        website,
        workload=f"{args.profile}-{args.mix}",
        interval=config.sampling_interval,
        hpc_noise=config.hpc_noise,
        os_noise=config.os_noise,
        seed=args.seed,
    )
    sim.run(until=schedule.duration)
    sampler.stop()
    if args.checkpoint:
        from .faults import save_checkpoint

        # final snapshot captures the trailing partial window too
        save_checkpoint(monitor, args.checkpoint)
        print(f"# checkpoint saved to {args.checkpoint}")
    print()
    for row in monitor.summary_rows():
        print(row)
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from .faults import FaultPlan, FaultSpec, run_campaign
    from .telemetry.sampler import HPC_LEVEL

    if args.plan:
        plan = FaultPlan.load(args.plan)
    else:
        specs = []
        if args.dropout > 0:
            specs.append(
                FaultSpec(
                    kind="dropout",
                    probability=args.dropout,
                    level=HPC_LEVEL if args.level == "hybrid" else args.level,
                )
            )
        if args.corrupt > 0:
            specs.append(
                FaultSpec(
                    kind="corrupt",
                    probability=args.corrupt,
                    magnitude=args.magnitude,
                    level=HPC_LEVEL if args.level == "hybrid" else args.level,
                )
            )
        if args.stall:
            specs.append(
                FaultSpec(
                    kind="stall",
                    tier=args.stall,
                    start=args.stall_at,
                    end=args.stall_at + 1,
                )
            )
        if args.drop_records > 0:
            specs.append(
                FaultSpec(kind="drop_record", probability=args.drop_records)
            )
        if args.duplicate_records > 0:
            specs.append(
                FaultSpec(
                    kind="duplicate_record",
                    probability=args.duplicate_records,
                )
            )
        if not specs:
            raise SystemExit(
                "empty fault plan: give --plan or at least one of "
                "--dropout/--corrupt/--stall/--drop-records/"
                "--duplicate-records"
            )
        plan = FaultPlan(seed=args.fault_seed, faults=tuple(specs))

    pipeline = None
    if args.meter:
        meter = CapacityMeter.load(args.meter, labeler=SlaOracle())
        labeler = SlaOracle()
    else:
        print(
            f"# no --meter given: training a fresh {args.level} meter "
            f"at scale {args.scale}"
        )
        pipeline = ExperimentPipeline(
            PipelineConfig(scale=args.scale, window=_window_for(args.scale))
        )
        meter = pipeline.meter(args.level)
        labeler = pipeline.labeler
    if args.run:
        records = load_run(args.run).records
    else:
        if pipeline is None:
            pipeline = ExperimentPipeline(
                PipelineConfig(
                    scale=args.scale, window=_window_for(args.scale)
                )
            )
        records = pipeline.test_run(args.mix).records

    result = run_campaign(
        meter,
        records,
        plan,
        labeler=labeler,
        use_watchdog=not args.no_watchdog,
        stall_ticks=args.stall_ticks,
    )
    for row in result.rows():
        print(row)
    import hashlib

    digest = hashlib.sha256(result.signature.encode("utf-8")).hexdigest()
    print(f"# decision signature: {digest[:16]}")
    if args.min_ba is not None and result.fault_scores["overload_ba"] < args.min_ba:
        print(
            f"# FAIL: degraded overload BA "
            f"{result.fault_scores['overload_ba']:.3f} "
            f"below floor {args.min_ba:.3f}"
        )
        return 1
    return 0


def cmd_drift(args: argparse.Namespace) -> int:
    """``repro drift``: seeded drift → retrain → hot-swap campaign.

    Serves an *actual-scale* trace through a meter trained at
    ``--stale-scale`` (the gap starves the tables, so agreement and
    confidence sag), lets the drift detector trigger, retrains inline
    at the actual scale through the experiment pipeline + artifact
    cache, and hot-swaps the result at a window boundary.  Inline
    retraining makes every tick in the output a pure function of the
    seeds, so two runs byte-diff equal — the ``drift-retrain`` CI job
    replays the campaign twice and diffs.
    """
    import hashlib

    from .control.service import CapacityService, SiteSpec
    from .control.shard import ShardedCapacityService
    from .drift import DriftConfig, DriftRetrainController, RetrainSpec

    if args.sites < 1:
        raise SystemExit("--sites must be at least 1")
    if args.workers < 0:
        raise SystemExit("--workers must be 0 (single process) or more")
    if args.repeat < 1:
        raise SystemExit("--repeat must be at least 1")

    cache = _make_cache(args, default_on=True)
    window = _window_for(args.scale)
    # the stale meter: trained at --stale-scale but with the serving
    # window, so the hot-swap's level/tiers/window contract holds
    stale = ExperimentPipeline(
        PipelineConfig(scale=args.stale_scale, window=window), cache=cache
    )
    print(
        f"# stale meter: {args.level} at scale {args.stale_scale} "
        f"(serving scale {args.scale}, window {window})"
    )
    meter = stale.meter(args.level)
    labeler = stale.labeler
    actual = ExperimentPipeline(
        PipelineConfig(scale=args.scale, window=window), cache=cache
    )
    records = list(actual.test_run(args.mix).records) * args.repeat
    specs = [
        SiteSpec(name=f"site{i}", seed=args.seed + i)
        for i in range(args.sites)
    ]
    spec = RetrainSpec(
        level=args.level,
        scale=args.scale,
        window=window,
        learner=meter.synopsis_config.learner,
        cache_dir=str(cache.root) if cache is not None else None,
    )
    config = DriftConfig(
        horizon=args.horizon,
        min_windows=args.min_windows,
        min_truth=max(2, args.min_windows // 2),
        agreement_floor=args.agreement_floor,
        cooldown=args.cooldown,
        seed=args.seed,
    )
    decisions: Dict[str, list] = {s.name: [] for s in specs}

    def on_decision(name, decision) -> None:
        decisions[name].append(decision)

    if args.workers > 0:
        service = ShardedCapacityService(
            meter,
            specs,
            workers=args.workers,
            labeler=labeler,
            on_decision=on_decision,
        )
    else:
        service = CapacityService(
            meter, specs, labeler=labeler, on_decision=on_decision
        )
    service.enable_snapshots()
    service.enable_drift(config)
    controller = DriftRetrainController(service, spec)
    printed = 0
    try:
        # step the controller at every window boundary — a pipe-idle
        # point for the sharded service, and the exact cadence the
        # single-process path triggers at, so the campaign output is
        # identical for any --workers
        for start in range(0, len(records), window):
            chunk = records[start : start + window]
            if args.workers > 0:
                service.replay(chunk)
            else:
                for record in chunk:
                    service.push(record)
            controller.step()
            while printed < len(controller.events):
                kind, tick, detail = controller.events[printed]
                print(f"# {kind} @{tick}: {detail}")
                printed += 1
    finally:
        if args.workers > 0:
            service.close()
        controller.close()
    lines = []
    dropped = False
    for name in sorted(decisions):
        seen = [d.index for d in decisions[name]]
        contiguous = seen == list(range(len(seen)))
        dropped = dropped or not contiguous
        lines.append(
            f"# windows {name}: {len(seen)} "
            f"contiguous={'yes' if contiguous else 'NO'}"
        )
        for decision in decisions[name]:
            lines.append(
                f"{name} {decision.index} "
                f"{int(decision.prediction.state)} "
                f"{int(decision.truth) if decision.truth is not None else '-'} "
                f"{decision.confidence:.4f}"
            )
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    for line in lines:
        if line.startswith("# windows"):
            print(line)
    print(f"# meter version: {service.meter_version}")
    print(f"# decision signature: {digest[:16]}")
    status = 0
    if dropped:
        print("# FAIL: a site dropped a decision window across the swap")
        status = 1
    if args.expect_swap and not controller.swaps:
        print("# FAIL: campaign completed without a drift-triggered swap")
        status = 1
    return status


@contextlib.contextmanager
def _graceful_signals() -> Iterator[Callable[[], Optional[int]]]:
    """Convert SIGINT/SIGTERM into a flag the serve loops poll.

    The handler only *records* the signal, so the in-flight time slice
    completes and the pipes stay in protocol — the loop then breaks at
    the next slice boundary and writes a final checkpoint.  A second
    signal raises ``KeyboardInterrupt`` immediately (the operator
    insists).  Yields a callable returning the received signal number,
    or ``None``.
    """
    state: Dict[str, Optional[int]] = {"signum": None}

    def handler(signum: int, frame: object) -> None:
        if state["signum"] is not None:
            raise KeyboardInterrupt
        state["signum"] = signum

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, handler)
    try:
        yield lambda: state["signum"]
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _drift_controller(args: argparse.Namespace, service):
    """Background drift→retrain→hot-swap controller for the serve loops.

    Retrains at the *serving* scale (the whole point: the meter on duty
    was trained on yesterday's traffic) on a dedicated pool worker, so
    the tick loop and the HTTP decision path never block on a rebuild.
    """
    from .drift import DriftConfig, DriftRetrainController, RetrainSpec

    service.enable_drift(
        DriftConfig(
            agreement_floor=getattr(args, "agreement_floor", 0.7),
            seed=args.seed,
        )
    )
    cache = _make_cache(args, default_on=False)
    spec = RetrainSpec(
        level=args.level,
        scale=args.scale,
        window=service.window,
        cache_dir=str(cache.root) if cache is not None else None,
    )
    return DriftRetrainController(service, spec, background=True)


def _print_drift_events(controller, printed: int) -> int:
    """Print controller events past ``printed``; new high-water mark."""
    while printed < len(controller.events):
        kind, tick, detail = controller.events[printed]
        print(f"# {kind} @{tick}: {detail}", flush=True)
        printed += 1
    return printed


def _serve_shard_factory(service, mix_name: str, profile: str, scale: float):
    """Build one shard's simulator inside its worker process.

    Runs via :meth:`~repro.control.shard.ShardedCapacityService.attach_factory`
    with the shard's own :class:`~repro.control.service.CapacityService`:
    every site gets the same website/traffic stack ``repro serve``
    builds single-process, seeded from its own spec, so a site's
    telemetry stream does not depend on which shard hosts it.
    """
    from .simulator import (
        AppServer,
        DatabaseServer,
        MultiTierWebsite,
        Simulator,
    )
    from .workload.generator import ScheduleDriver
    from .workload.rbe import RemoteBrowserEmulator

    mix = _resolve_mix(mix_name)
    config = TestbedConfig()
    if profile == "training":
        schedule = training_schedule(mix, config, scale=scale)
    elif profile == "test":
        schedule = steady_test_schedule(mix, config, scale=scale)
    else:
        schedule = stress_schedule(mix, config, scale=scale)
    sim = Simulator()
    websites = {}
    for site in service.sites:
        spec = site.spec
        app = AppServer(sim, workers=config.app_workers)
        db = DatabaseServer(sim, connections=config.db_connections)
        website = MultiTierWebsite(sim, app, db)
        websites[spec.name] = website
        rbe = RemoteBrowserEmulator(
            sim,
            service.front_end(sim, spec.name, website),
            mix,
            think_time_mean=config.think_time_mean,
            continuity=config.continuity,
            seed=spec.seed,
        )
        ScheduleDriver(sim, rbe, schedule)
    service.attach(
        sim,
        websites,
        interval=config.sampling_interval,
        hpc_noise=config.hpc_noise,
        os_noise=config.os_noise,
    )
    return sim, schedule.duration


def _cmd_serve_sharded(args: argparse.Namespace, meter, labeler, specs) -> int:
    """The ``repro serve --workers N`` loop: sharded fleet, one stream.

    Each worker owns its shard's simulator and advances it in time
    slices; the parent merges the per-shard decision streams on
    ``(tick, shard order)`` and drives periodic checkpoints, which use
    the resharded ``"sharded"`` layout — saveable at N workers,
    resumable at any other count (or none).
    """
    from .control.shard import ShardedCapacityService
    from .faults.process import ProcessFaultPlan

    plan = None
    if args.process_faults:
        plan = ProcessFaultPlan.parse(args.process_faults)
    supervise = dict(
        recover=not args.no_recover,
        max_respawns=args.max_respawns,
        supervise_ticks=args.supervise_ticks,
        recv_timeout=args.recv_timeout,
        process_faults=plan,
    )
    if args.resume:
        service = ShardedCapacityService.resume(
            args.checkpoint,
            specs,
            workers=args.workers,
            labeler=labeler,
            use_fleet=not args.no_fleet,
            allow_subset=args.allow_subset,
            **supervise,
        )
        print(
            f"# resumed {len(specs)} sites across "
            f"{service.pool.size} workers from {args.checkpoint}: "
            f"{service.ticks} ticks already folded, no retraining"
        )
    else:
        service = ShardedCapacityService(
            meter,
            specs,
            workers=args.workers,
            labeler=labeler,
            use_fleet=not args.no_fleet,
            **supervise,
        )
    controller = None
    drift_printed = 0
    if args.retrain_on_drift:
        controller = _drift_controller(args, service)
    with service, _graceful_signals() as interrupted:
        duration = service.attach_factory(
            _serve_shard_factory, args.mix, args.profile, args.scale
        )
        config = TestbedConfig()
        # one slice per checkpoint period (one window's worth of ticks
        # per site between checks when checkpointing, else 50 ticks)
        slice_seconds = config.sampling_interval * 50
        print(f"{'site':>6} {'window':>6} {'state':>9} {'truth':>6} {'p':>5}")
        now = 0.0
        windows_since = 0
        while now < duration and interrupted() is None:
            now = min(now + slice_seconds, duration)
            if controller is not None:
                # slice boundaries are the sharded fabric's pipe-idle
                # instants — the only safe place to stage a swap
                controller.step()
                drift_printed = _print_drift_events(
                    controller, drift_printed
                )
            for name, decision, gate_p in service.advance(now):
                prediction = decision.prediction
                print(
                    f"{name:>6} "
                    f"{decision.index:6d} "
                    f"{'OVERLOAD' if prediction.overloaded else 'ok':>9} "
                    f"{'OVERLOAD' if decision.truth else 'ok':>6} "
                    f"{gate_p:5.2f}"
                )
                windows_since += 1
            if (
                args.checkpoint
                and windows_since >= args.checkpoint_every * args.sites
            ):
                windows_since = 0
                service.save(args.checkpoint)
        if interrupted() is None:
            service.detach()
        else:
            print(
                f"# interrupted (signal {interrupted()}): shutting down "
                f"gracefully"
            )
        if controller is not None:
            controller.step()
            drift_printed = _print_drift_events(controller, drift_printed)
            controller.close()
            if controller.swaps:
                print(f"# meter version: {service.meter_version}")
        if args.checkpoint:
            # final snapshot captures the trailing partial windows too
            service.save(args.checkpoint)
            print(f"# checkpoint saved to {args.checkpoint}")
        stats = service.supervisor_stats()
        if plan is not None or sum(stats["respawns"]) or stats["lost"]:
            print(
                f"# supervisor: respawns={sum(stats['respawns'])} "
                f"lost={len(stats['lost'])} "
                f"faults_fired={stats['faults_fired']} "
                f"held_synthesized={stats['held_synthesized']}"
            )
            for worker in stats["lost"]:
                print(
                    f"# shard {worker} degraded "
                    f"({stats['lost_reasons'][worker]}): held decisions "
                    f"with decaying confidence"
                )
        print()
        for row in service.summary_rows():
            print(row)
    # close() folded the worker registries into the parent's (counters/
    # histograms summed, gauges last-write), so a --metrics-out dump
    # after this point is as complete as the single-process one
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .control.service import CapacityService, SiteSpec
    from .core.monitor import MonitorDecision
    from .simulator import (
        AppServer,
        DatabaseServer,
        MultiTierWebsite,
        Simulator,
    )
    from .workload.generator import ScheduleDriver
    from .workload.rbe import RemoteBrowserEmulator

    mix = _resolve_mix(args.mix)
    if args.sites < 1:
        raise SystemExit("--sites must be at least 1")
    if args.workers < 0:
        raise SystemExit("--workers must be 0 (single process) or more")
    if args.checkpoint_every < 1:
        raise SystemExit("--checkpoint-every must be at least 1 window")
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")
    if args.process_faults and args.workers == 0:
        raise SystemExit(
            "--process-faults needs --workers: process chaos targets "
            "the sharded fabric's worker processes"
        )
    if args.max_respawns < 0:
        raise SystemExit("--max-respawns must be non-negative")
    if args.supervise_ticks < 0:
        raise SystemExit("--supervise-ticks must be non-negative")

    labeler = SlaOracle()
    if args.resume:
        meter = None  # every site's checkpoint embeds its trained meter
    elif args.meter:
        meter = CapacityMeter.load(args.meter, labeler=labeler)
    else:
        print(
            f"# no --meter given: training a fresh {args.level} meter "
            f"at scale {args.scale}"
        )
        pipeline = ExperimentPipeline(
            PipelineConfig(scale=args.scale, window=_window_for(args.scale))
        )
        meter = pipeline.meter(args.level)
        labeler = pipeline.labeler
    config = TestbedConfig()
    if args.profile == "training":
        schedule = training_schedule(mix, config, scale=args.scale)
    elif args.profile == "test":
        schedule = steady_test_schedule(mix, config, scale=args.scale)
    else:
        schedule = stress_schedule(mix, config, scale=args.scale)

    specs = [
        SiteSpec(
            name=f"site{i}",
            seed=args.seed + i,
            confidence_floor=args.confidence_floor,
        )
        for i in range(args.sites)
    ]

    if args.workers > 0:
        return _cmd_serve_sharded(args, meter, labeler, specs)

    print(f"{'site':>6} {'window':>6} {'state':>9} {'truth':>6} {'p':>5}")

    def show(name: str, decision: MonitorDecision) -> None:
        prediction = decision.prediction
        gate = service.site(name).gate
        print(
            f"{name:>6} "
            f"{decision.index:6d} "
            f"{'OVERLOAD' if prediction.overloaded else 'ok':>9} "
            f"{'OVERLOAD' if decision.truth else 'ok':>6} "
            f"{gate.admission_probability:5.2f}"
        )

    if args.resume:
        service = CapacityService.resume(
            args.checkpoint,
            specs,
            labeler=labeler,
            use_fleet=not args.no_fleet,
            allow_subset=args.allow_subset,
            on_decision=show,
        )
        print(
            f"# resumed {len(service.sites)} sites from "
            f"{args.checkpoint}: {service.ticks} ticks already folded, "
            f"no retraining"
        )
    else:
        service = CapacityService(
            meter,
            specs,
            labeler=labeler,
            use_fleet=not args.no_fleet,
            on_decision=show,
        )
    if args.checkpoint:
        windows_since = [0]
        inner = service.on_decision

        def checkpointing(name: str, decision: MonitorDecision) -> None:
            if inner is not None:
                inner(name, decision)
            windows_since[0] += 1
            if windows_since[0] >= args.checkpoint_every * args.sites:
                windows_since[0] = 0
                service.save(args.checkpoint)

        service.on_decision = checkpointing

    sim = Simulator()
    websites = {}
    for spec in specs:
        app = AppServer(sim, workers=config.app_workers)
        db = DatabaseServer(sim, connections=config.db_connections)
        website = MultiTierWebsite(sim, app, db)
        websites[spec.name] = website
        rbe = RemoteBrowserEmulator(
            sim,
            service.front_end(sim, spec.name, website),
            mix,
            think_time_mean=config.think_time_mean,
            continuity=config.continuity,
            seed=spec.seed,
        )
        ScheduleDriver(sim, rbe, schedule)
    service.attach(
        sim,
        websites,
        interval=config.sampling_interval,
        hpc_noise=config.hpc_noise,
        os_noise=config.os_noise,
    )
    controller = None
    drift_printed = 0
    if args.retrain_on_drift:
        controller = _drift_controller(args, service)
    with _graceful_signals() as interrupted:
        # advance in slices so an operator SIGINT/SIGTERM lands between
        # slices and still gets a final checkpoint (event-driven sim:
        # sliced run == one run to the same instant)
        slice_seconds = config.sampling_interval * 50
        now = 0.0
        while now < schedule.duration and interrupted() is None:
            now = min(now + slice_seconds, schedule.duration)
            sim.run(until=now)
            if controller is not None:
                controller.step()
                drift_printed = _print_drift_events(
                    controller, drift_printed
                )
        service.stop()
        if controller is not None:
            controller.step()
            drift_printed = _print_drift_events(controller, drift_printed)
            controller.close()
            if controller.swaps:
                print(f"# meter version: {service.handle.version}")
        if interrupted() is not None:
            print(
                f"# interrupted (signal {interrupted()}): shutting down "
                f"gracefully"
            )
        if args.checkpoint:
            # final snapshot captures the trailing partial windows too
            service.save(args.checkpoint)
            print(f"# checkpoint saved to {args.checkpoint}")
    print()
    for row in service.summary_rows():
        print(row)
    return 0


def _serve_http_backend(args, meter, labeler, specs):
    """Build the ticking capacity service behind ``repro serve-http``.

    Returns ``(service, tick, cleanup)``: ``tick`` is a callable the
    background thread drives (returns False when the simulated
    schedule is exhausted), ``cleanup`` tears the backend down.  Both
    single-process and sharded services publish snapshots; the server
    thread only ever reads ``service.snapshot``.
    """
    from .control.service import CapacityService
    from .control.shard import ShardedCapacityService
    from .faults.process import ProcessFaultPlan
    from .simulator import (
        AppServer,
        DatabaseServer,
        MultiTierWebsite,
        Simulator,
    )
    from .workload.generator import ScheduleDriver
    from .workload.rbe import RemoteBrowserEmulator

    config = TestbedConfig()
    slice_seconds = config.sampling_interval * 50
    if args.workers > 0:
        plan = None
        if args.process_faults:
            plan = ProcessFaultPlan.parse(args.process_faults)
        service = ShardedCapacityService(
            meter,
            specs,
            workers=args.workers,
            labeler=labeler,
            use_fleet=not args.no_fleet,
            recover=not args.no_recover,
            max_respawns=args.max_respawns,
            recv_timeout=args.recv_timeout,
            process_faults=plan,
        )
        service.enable_snapshots()
        controller = None
        if getattr(args, "retrain_on_drift", False):
            controller = _drift_controller(args, service)
        duration = service.attach_factory(
            _serve_shard_factory, args.mix, args.profile, args.scale
        )
        state = {"now": 0.0, "printed": 0}

        def tick() -> bool:
            if state["now"] >= duration:
                return False
            if controller is not None:
                # slice boundaries are the fabric's pipe-idle instants
                controller.step()
                state["printed"] = _print_drift_events(
                    controller, state["printed"]
                )
            state["now"] = min(state["now"] + slice_seconds, duration)
            service.advance(state["now"])
            return True

        def cleanup() -> None:
            try:
                if controller is not None:
                    controller.step()
                    state["printed"] = _print_drift_events(
                        controller, state["printed"]
                    )
                    controller.close()
                service.detach()
            finally:
                service.close()

        return service, tick, cleanup

    mix = _resolve_mix(args.mix)
    if args.profile == "training":
        schedule = training_schedule(mix, config, scale=args.scale)
    elif args.profile == "test":
        schedule = steady_test_schedule(mix, config, scale=args.scale)
    else:
        schedule = stress_schedule(mix, config, scale=args.scale)
    service = CapacityService(
        meter,
        specs,
        labeler=labeler,
        use_fleet=not args.no_fleet,
    )
    service.enable_snapshots()
    sim = Simulator()
    websites = {}
    for spec in specs:
        app = AppServer(sim, workers=config.app_workers)
        db = DatabaseServer(sim, connections=config.db_connections)
        website = MultiTierWebsite(sim, app, db)
        websites[spec.name] = website
        rbe = RemoteBrowserEmulator(
            sim,
            service.front_end(sim, spec.name, website),
            mix,
            think_time_mean=config.think_time_mean,
            continuity=config.continuity,
            seed=spec.seed,
        )
        ScheduleDriver(sim, rbe, schedule)
    service.attach(
        sim,
        websites,
        interval=config.sampling_interval,
        hpc_noise=config.hpc_noise,
        os_noise=config.os_noise,
    )
    controller = None
    if getattr(args, "retrain_on_drift", False):
        controller = _drift_controller(args, service)
    state = {"now": 0.0, "printed": 0}

    def tick() -> bool:
        if state["now"] >= schedule.duration:
            return False
        state["now"] = min(state["now"] + slice_seconds, schedule.duration)
        sim.run(until=state["now"])
        if controller is not None:
            controller.step()
            state["printed"] = _print_drift_events(
                controller, state["printed"]
            )
        return True

    def cleanup() -> None:
        if controller is not None:
            controller.close()
        service.stop()

    return service, tick, cleanup


def cmd_serve_http(args: argparse.Namespace) -> int:
    """``repro serve-http``: the capacity meter behind HTTP.

    The event loop (main thread) answers ``/admit``/``/decide``/
    ``/healthz``/``/metrics`` from the service's published snapshots;
    the service itself ticks on a daemon thread (or in sharded worker
    processes), so admit latency never waits on window compute.  After
    the simulated schedule is exhausted the server keeps answering
    from the final snapshot until SIGTERM or ``--duration`` elapses.
    """
    import asyncio
    import threading
    import time as _time

    from .control.service import SiteSpec
    from .frontend.gateway import AdmitGateway
    from .frontend.server import HttpCapacityServer

    if args.sites < 1:
        raise SystemExit("--sites must be at least 1")
    if args.workers < 0:
        raise SystemExit("--workers must be 0 (single process) or more")

    labeler = SlaOracle()
    if args.meter:
        meter = CapacityMeter.load(args.meter, labeler=labeler)
    else:
        print(
            f"# no --meter given: training a fresh {args.level} meter "
            f"at scale {args.scale}",
            flush=True,
        )
        pipeline = ExperimentPipeline(
            PipelineConfig(scale=args.scale, window=_window_for(args.scale))
        )
        meter = pipeline.meter(args.level)
        labeler = pipeline.labeler
    specs = [
        SiteSpec(
            name=f"site{i}",
            seed=args.seed + i,
            confidence_floor=args.confidence_floor,
        )
        for i in range(args.sites)
    ]
    if not OBS.enabled:
        # /metrics must expose something even without --metrics-out
        OBS.enable()
    # shorter GIL switch interval: the tick thread's numpy-free spans
    # yield sooner, trimming the admit path's scheduling tail
    sys.setswitchinterval(args.switch_interval)

    service, tick, cleanup = _serve_http_backend(args, meter, labeler, specs)
    gateway = AdmitGateway(
        specs,
        lambda: service.snapshot,
        order_protect=args.order_protect,
    )
    server = HttpCapacityServer(
        gateway,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        concurrency=args.concurrency,
        deadline=args.deadline,
        drain_grace=args.drain_grace,
    )
    stop = threading.Event()

    def tick_loop() -> None:
        try:
            while not stop.is_set():
                if not tick():
                    break
        except Exception as exc:  # noqa: BLE001 - surfaced on stdout
            print(f"# tick loop failed: {exc!r}", flush=True)

    thread = threading.Thread(
        target=tick_loop, name="capacity-ticks", daemon=True
    )

    async def amain(interrupted: Callable[[], Optional[int]]) -> None:
        await server.start()
        print(
            f"# serving {len(specs)} sites on "
            f"http://{server.host}:{server.port} "
            f"(workers={args.workers}, deadline={args.deadline}s)",
            flush=True,
        )
        thread.start()
        started = _time.monotonic()
        while interrupted() is None:
            if (
                args.duration is not None
                and _time.monotonic() - started >= args.duration
            ):
                break
            await asyncio.sleep(0.05)
        signum = interrupted()
        if signum is not None:
            print(
                f"# interrupted (signal {signum}): draining in-flight "
                f"requests",
                flush=True,
            )
        await server.drain()

    status = 0
    with _graceful_signals() as interrupted:
        try:
            asyncio.run(amain(interrupted))
        except KeyboardInterrupt:
            print("# second signal: shutting down immediately", flush=True)
            status = 1
        finally:
            stop.set()
            thread.join(timeout=30.0)
            try:
                cleanup()
            except Exception as exc:  # noqa: BLE001 - already stopping
                print(f"# backend cleanup failed: {exc!r}", flush=True)
    print(f"# http: {server.stats.summary()}")
    print()
    for row in service.summary_rows():
        print(row)
    return status


def cmd_loadgen(args: argparse.Namespace) -> int:
    """``repro loadgen``: seeded open-loop driver for ``serve-http``."""
    import json as _json
    from urllib.parse import urlparse

    from .frontend.loadgen import run_load

    parsed = urlparse(args.url)
    if parsed.scheme != "http" or parsed.hostname is None:
        raise SystemExit(f"--url must be http://host:port, got {args.url!r}")
    sites = [f"site{i}" for i in range(args.sites)]
    report = run_load(
        host=parsed.hostname,
        port=parsed.port or 80,
        rps=args.rps,
        duration=args.duration,
        mix_name=args.mix,
        sites=sites,
        seed=args.seed,
        arrivals=args.arrivals,
        timeout=args.timeout,
        connections=args.connections,
    )
    out = args.out
    if out:
        from pathlib import Path

        path = Path(out)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(report, indent=2) + "\n")
        print(f"# report written to {path}")
    latency = report["admit_latency_ms"]
    print(
        f"# loadgen: {report['requests']} requests in "
        f"{report['wall_s']:.2f}s (target {args.rps:g} rps, achieved "
        f"{report['achieved_rps']:.1f})"
    )
    print(
        f"# admitted={report['admitted']} rejected={report['rejected']} "
        f"errors={report['errors']} timeouts={report['timeouts']} "
        f"5xx={report['status_5xx']}"
    )
    print(
        f"# admit latency ms: p50={latency['p50']:.3f} "
        f"p99={latency['p99']:.3f} p999={latency['p999']:.3f} "
        f"max={latency['max']:.3f}"
    )
    print(f"# schedule sha256: {report['schedule_sha256'][:16]}")
    failures = (
        report["errors"] + report["timeouts"] + report["status_5xx"]
    )
    if args.check and failures:
        print(f"# FAIL: {failures} failed requests with --check")
        return 1
    return 0


_ARTIFACTS = (
    "fig3",
    "table1a",
    "table1b",
    "fig4",
    "timing",
    "overhead",
    "history",
    "scheme",
    "delta",
    "fallback",
    "hybrid",
)


#: which artifacts each report needs warmed (kwargs for ``warm``);
#: None means the experiment drives its own simulations, so there is
#: nothing to fan out
_WARM_SPECS = {
    "fig3": dict(
        test_workloads=(), include_stress=True, levels=(), learners=()
    ),
    "table1a": dict(test_workloads=("browsing",)),
    "table1b": dict(test_workloads=("ordering",)),
    "fig4": dict(learners=("tan",)),
    "timing": dict(test_workloads=(), levels=(), learners=()),
    "overhead": None,
    "history": dict(levels=("hpc",), learners=("tan",)),
    "scheme": dict(levels=("hpc",), learners=("tan",)),
    "delta": dict(levels=("hpc",), learners=("tan",)),
    "fallback": dict(levels=("hpc",), learners=("tan",)),
    "hybrid": dict(levels=("os", "hpc", "hybrid"), learners=("tan",)),
}


def cmd_report(args: argparse.Namespace) -> int:
    from .experiments import (
        run_delta_ablation,
        run_fallback_ablation,
        run_fig3,
        run_fig4,
        run_history_ablation,
        run_hybrid_comparison,
        run_overhead,
        run_scheme_ablation,
        run_table1,
        run_timing,
    )
    from .parallel import resolve_jobs

    jobs = resolve_jobs(args.jobs)
    pipeline = ExperimentPipeline(
        PipelineConfig(scale=args.scale, window=_window_for(args.scale)),
        cache=_make_cache(args, default_on=False),
    )
    spec = _WARM_SPECS[args.artifact]
    if jobs > 1 and spec is not None:
        pipeline.warm(jobs=jobs, **spec)
    producers = {
        "fig3": lambda: run_fig3(pipeline).rows(every=60),
        "table1a": lambda: run_table1(pipeline, "browsing").rows(),
        "table1b": lambda: run_table1(pipeline, "ordering").rows(),
        "fig4": lambda: run_fig4(pipeline).rows(),
        "timing": lambda: run_timing(pipeline).rows(),
        "overhead": lambda: run_overhead(pipeline, executions=3).rows(),
        "history": lambda: run_history_ablation(pipeline).rows(),
        "scheme": lambda: run_scheme_ablation(pipeline).rows(),
        "delta": lambda: run_delta_ablation(pipeline).rows(),
        "fallback": lambda: run_fallback_ablation(pipeline).rows(),
        "hybrid": lambda: run_hybrid_comparison(pipeline).rows(),
    }
    for row in producers[args.artifact]():
        print(row)
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from .experiments.table1 import run_table1
    from .parallel import resolve_jobs

    learners = tuple(
        name for name in (args.learners or "").split(",") if name
    )
    inputs = (
        ("browsing", "ordering") if args.input == "both" else (args.input,)
    )
    jobs = resolve_jobs(args.jobs)
    pipeline = ExperimentPipeline(
        PipelineConfig(scale=args.scale, window=_window_for(args.scale)),
        cache=_make_cache(args, default_on=True),
    )
    warm_kwargs = {"test_workloads": inputs}
    if learners:
        warm_kwargs["learners"] = learners
    report = pipeline.warm(jobs=jobs, **warm_kwargs)
    for workload in inputs:
        for row in run_table1(pipeline, workload, learners=learners).rows():
            print(row)
        print()
    _print_build_summary(pipeline, report, jobs)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    if args.action == "dump":
        from .obs import exposition, registry_from_jsonl

        if not args.source:
            raise SystemExit("obs dump requires --from FILE.jsonl")
        registry = registry_from_jsonl(args.source)
        text = exposition(registry)
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(text, encoding="utf-8")
            print(f"# wrote {len(registry)} metric series to {args.out}")
        else:
            print(text, end="")
        return 0

    # overhead: self-measure the instrumentation layer's decision-path
    # cost, mirroring the paper's own collection-agent experiment
    from .obs.overhead import measure_decision_overhead

    pipeline = ExperimentPipeline(
        PipelineConfig(scale=args.scale, window=_window_for(args.scale))
    )
    print(
        f"# training a fresh {args.level} meter at scale {args.scale} "
        f"and replaying the {args.mix} test run"
    )
    meter = pipeline.meter(args.level)
    records = pipeline.test_run(args.mix).records
    result = measure_decision_overhead(
        meter, records, repeats=args.repeats, passes=args.passes
    )
    for row in result.rows():
        print(row)
    if not result.identical_decisions:
        print("# FAIL: instrumentation changed the decision sequence")
        return 1
    if (
        args.max_overhead is not None
        and result.overhead_percent > args.max_overhead
    ):
        print(
            f"# FAIL: overhead {result.overhead_percent:+.2f}% above "
            f"ceiling {args.max_overhead:.2f}%"
        )
        return 1
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .parallel import ArtifactCache

    cache = ArtifactCache(args.cache_dir)
    if args.action == "stats":
        for row in cache.stats_rows():
            print(row)
    else:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
    return 0


def _add_metrics_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="record internal metrics for this invocation and write "
        "them here (.jsonl: event log, otherwise Prometheus text)",
    )


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="run a workload and save the measurement run"
    )
    simulate.add_argument(
        "--mix",
        default="ordering",
        help="browsing | shopping | ordering | unknown",
    )
    simulate.add_argument(
        "--profile",
        choices=("training", "test", "stress"),
        default="test",
        help="schedule shape (ramp+spike, staircase, or near-saturation)",
    )
    simulate.add_argument("--scale", type=float, default=0.3)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--collector", choices=sorted(_COLLECTORS), default="none"
    )
    simulate.add_argument("--out", required=True, help="output .json[.gz]")
    simulate.set_defaults(func=cmd_simulate)

    train = sub.add_parser("train", help="train and save a capacity meter")
    train.add_argument(
        "--run",
        action="append",
        metavar="WORKLOAD=PATH",
        help="saved training run (repeatable); omit to simulate fresh ones",
    )
    train.add_argument("--scale", type=float, default=0.3)
    train.add_argument("--level", choices=("hpc", "os", "hybrid"), default="hpc")
    train.add_argument("--learner", default="tan")
    train.add_argument("--window", type=int, default=None)
    train.add_argument("--sla", type=float, default=0.5)
    train.add_argument("--history-bits", type=int, default=3)
    train.add_argument("--delta", type=float, default=5.0)
    train.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for cross-validation folds "
        "(default: all CPUs; bit-identical to --jobs 1)",
    )
    train.add_argument("--out", required=True)
    train.set_defaults(func=cmd_train)

    predict = sub.add_parser(
        "predict", help="replay a saved run through a saved meter"
    )
    predict.add_argument("--meter", required=True)
    predict.add_argument("--run", required=True)
    predict.set_defaults(func=cmd_predict)

    evaluate = sub.add_parser(
        "evaluate", help="score a saved meter on a saved run"
    )
    evaluate.add_argument("--meter", required=True)
    evaluate.add_argument("--run", required=True)
    evaluate.set_defaults(func=cmd_evaluate)

    monitor = sub.add_parser(
        "monitor",
        help="stream a live simulation through an online capacity monitor",
    )
    monitor.add_argument(
        "--mix",
        default="ordering",
        help="browsing | shopping | ordering | unknown",
    )
    monitor.add_argument(
        "--profile",
        choices=("training", "test", "stress"),
        default="test",
        help="schedule shape (ramp+spike, staircase, or near-saturation)",
    )
    monitor.add_argument("--scale", type=float, default=0.3)
    monitor.add_argument("--seed", type=int, default=1)
    monitor.add_argument(
        "--meter", default=None, help="saved meter; omit to train fresh"
    )
    monitor.add_argument(
        "--level", choices=("hpc", "os", "hybrid"), default="hpc",
        help="metric level when training a fresh meter",
    )
    monitor.add_argument(
        "--adapt",
        action="store_true",
        help="keep updating the coordinated tables from live ground truth",
    )
    monitor.add_argument(
        "--retain",
        type=int,
        default=None,
        help="bound the kept decision tail (default: keep all)",
    )
    monitor.add_argument(
        "--checkpoint",
        default=None,
        help="periodically snapshot monitor + meter state to this file",
    )
    monitor.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        help="windows between checkpoints (default 10)",
    )
    monitor.add_argument(
        "--resume",
        action="store_true",
        help="restore monitor + trained meter from --checkpoint "
        "(no retraining) before streaming",
    )
    _add_metrics_out(monitor)
    monitor.set_defaults(func=cmd_monitor)

    faults = sub.add_parser(
        "faults",
        help="run a deterministic fault-injection campaign and report "
        "decision-accuracy degradation vs the clean replay",
    )
    faults.add_argument(
        "--mix",
        choices=("ordering", "browsing", "interleaved", "unknown"),
        default="ordering",
        help="test workload to replay (ignored with --run)",
    )
    faults.add_argument("--scale", type=float, default=0.3)
    faults.add_argument(
        "--level", choices=("hpc", "os", "hybrid"), default="hpc",
        help="metric level when training a fresh meter",
    )
    faults.add_argument(
        "--meter", default=None, help="saved meter; omit to train fresh"
    )
    faults.add_argument(
        "--run", default=None, help="saved run to replay; omit to simulate"
    )
    faults.add_argument(
        "--plan", default=None, help="JSON fault plan (overrides the flags)"
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the synthesized plan's RNG streams",
    )
    faults.add_argument(
        "--dropout", type=float, default=0.0,
        help="per-tick per-attribute counter dropout probability",
    )
    faults.add_argument(
        "--corrupt", type=float, default=0.0,
        help="per-tick per-attribute value-spike probability",
    )
    faults.add_argument(
        "--magnitude", type=float, default=10.0,
        help="multiplicative spike of corrupted values",
    )
    faults.add_argument(
        "--stall", default=None, metavar="TIER",
        help="stall this tier's collector (watchdog must re-arm it)",
    )
    faults.add_argument(
        "--stall-at", type=int, default=30,
        help="tick at which the --stall fault fires",
    )
    faults.add_argument(
        "--drop-records", type=float, default=0.0,
        help="per-tick whole-record loss probability",
    )
    faults.add_argument(
        "--duplicate-records", type=float, default=0.0,
        help="per-tick record duplication probability",
    )
    faults.add_argument(
        "--no-watchdog", action="store_true",
        help="disable the stalled-collector watchdog",
    )
    faults.add_argument(
        "--stall-ticks", type=int, default=3,
        help="silent ticks before the watchdog flags a tier",
    )
    faults.add_argument(
        "--min-ba", type=float, default=None,
        help="exit non-zero when the degraded overload BA drops below "
        "this floor (CI gate)",
    )
    _add_metrics_out(faults)
    faults.set_defaults(func=cmd_faults)

    drift = sub.add_parser(
        "drift",
        help="seeded drift → inline retrain → atomic hot-swap campaign "
        "(byte-diffable across runs and worker counts)",
    )
    drift.add_argument(
        "--sites", type=int, default=2,
        help="independently monitored sites (default 2)",
    )
    drift.add_argument("--scale", type=float, default=0.3)
    drift.add_argument(
        "--stale-scale", type=float, default=0.1,
        help="the serving meter is trained at this scale; the gap to "
        "--scale is what the detector catches (default 0.1)",
    )
    drift.add_argument(
        "--mix", default="ordering",
        help="browsing | shopping | ordering | unknown",
    )
    drift.add_argument(
        "--level", choices=("hpc", "os", "hybrid"), default="hpc",
    )
    drift.add_argument(
        "--seed", type=int, default=1,
        help="base seed for sites and drift thresholds",
    )
    drift.add_argument(
        "--workers", type=int, default=0,
        help="shard the fleet (0 = single process); the campaign "
        "output is identical for any worker count",
    )
    drift.add_argument(
        "--repeat", type=int, default=2,
        help="tile the test trace this many times so the horizon "
        "fills (default 2)",
    )
    drift.add_argument(
        "--horizon", type=int, default=12,
        help="sliding drift horizon in windows (default 12)",
    )
    drift.add_argument(
        "--min-windows", type=int, default=8,
        help="windows before a verdict can trigger (default 8)",
    )
    drift.add_argument(
        "--agreement-floor", type=float, default=0.7,
        help="label-vs-prediction agreement below this triggers "
        "(default 0.7: the stale-scale meter bottoms out near 2/3 "
        "agreement on the serving trace, safely below the floor)",
    )
    drift.add_argument(
        "--cooldown", type=int, default=24,
        help="windows after a swap before the next trigger (default 24)",
    )
    drift.add_argument(
        "--expect-swap", action="store_true",
        help="exit 1 unless the campaign triggered at least one "
        "retrain + hot-swap (the CI gate)",
    )
    drift.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory (default: REPRO_CACHE_DIR or "
        "~/.cache/repro); a warm cache makes the retrain build-free",
    )
    drift.add_argument(
        "--no-cache", action="store_true",
        help="bypass the artifact cache entirely",
    )
    _add_metrics_out(drift)
    drift.set_defaults(func=cmd_drift)

    serve = sub.add_parser(
        "serve",
        help="run N capacity-monitored websites behind AIMD admission "
        "gates (one simulator, batched synopsis inference)",
    )
    serve.add_argument(
        "--sites", type=int, default=2,
        help="number of independently monitored websites (default 2)",
    )
    serve.add_argument(
        "--mix",
        default="ordering",
        help="browsing | shopping | ordering | unknown",
    )
    serve.add_argument(
        "--profile",
        choices=("training", "test", "stress"),
        default="stress",
        help="schedule shape driven at every site (default: stress, so "
        "the gates have an overload to regulate)",
    )
    serve.add_argument("--scale", type=float, default=0.3)
    serve.add_argument(
        "--seed", type=int, default=1,
        help="base seed; site i uses seed+i for traffic and sampling",
    )
    serve.add_argument(
        "--meter", default=None, help="saved meter; omit to train fresh"
    )
    serve.add_argument(
        "--level", choices=("hpc", "os", "hybrid"), default="hpc",
        help="metric level when training a fresh meter",
    )
    serve.add_argument(
        "--confidence-floor", type=float, default=0.75,
        help="decisions below this telemetry confidence hold the "
        "admission probability steady (default 0.75)",
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="periodically snapshot every site's monitor + gate state "
        "into this directory",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        help="windows per site between checkpoints (default 10)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="restore all sites from --checkpoint (no retraining) "
        "before streaming",
    )
    serve.add_argument(
        "--allow-subset",
        action="store_true",
        help="with --resume, permit dropping checkpointed sites from "
        "the fleet instead of erroring on orphaned state",
    )
    serve.add_argument(
        "--no-fleet",
        action="store_true",
        help="disable the vectorized structure-of-arrays fleet backend "
        "(per-site loops; bit-identical decisions)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard the fleet across this many worker processes "
        "(0 = single process; merged decisions are bit-identical "
        "for any worker count)",
    )
    serve.add_argument(
        "--process-faults",
        default=None,
        metavar="PLAN",
        help="seeded process chaos for the sharded fabric: comma-"
        "separated kind@tick:wINDEX[:delay] tokens, kinds kill|hang|"
        "slow (e.g. 'kill@120:w1,slow@50:w2:0.25'); hang needs "
        "--recv-timeout",
    )
    serve.add_argument(
        "--recv-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervision deadline for worker replies; a worker "
        "silent past it is treated as hung and recovered "
        "(default: none — crashes are still detected eagerly)",
    )
    serve.add_argument(
        "--supervise-ticks",
        type=int,
        default=256,
        metavar="N",
        help="ticks between incremental recovery checkpoints in "
        "replay-style serving (0 disables them; default 256)",
    )
    serve.add_argument(
        "--no-recover",
        action="store_true",
        help="disable crash recovery: a dead shard's sites degrade to "
        "held decisions with decaying confidence instead",
    )
    serve.add_argument(
        "--max-respawns",
        type=int,
        default=3,
        metavar="N",
        help="respawn budget per worker before its shard is abandoned "
        "to degraded serving (default 3)",
    )
    serve.add_argument(
        "--retrain-on-drift",
        action="store_true",
        help="watch the decision stream with the online drift detector "
        "and, on a trigger, retrain at the serving scale on a "
        "background worker and hot-swap the meter at a window boundary",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact cache for --retrain-on-drift rebuilds (a warm "
        "cache makes retraining near-instant)",
    )
    serve.add_argument(
        "--agreement-floor",
        type=float,
        default=0.7,
        help="label-vs-prediction agreement below which the drift "
        "detector triggers a retrain (default 0.7)",
    )
    _add_metrics_out(serve)
    serve.set_defaults(func=cmd_serve)

    serve_http = sub.add_parser(
        "serve-http",
        help="expose the capacity service's admission path over HTTP "
        "(POST /admit, POST /decide, GET /healthz, GET /metrics)",
    )
    serve_http.add_argument(
        "--sites", type=int, default=2,
        help="number of independently monitored websites (default 2)",
    )
    serve_http.add_argument(
        "--mix",
        default="ordering",
        help="browsing | shopping | ordering | unknown",
    )
    serve_http.add_argument(
        "--profile",
        choices=("training", "test", "stress"),
        default="stress",
        help="schedule shape driven at every site (default: stress)",
    )
    serve_http.add_argument("--scale", type=float, default=0.3)
    serve_http.add_argument(
        "--seed", type=int, default=1,
        help="base seed; site i uses seed+i for traffic and sampling",
    )
    serve_http.add_argument(
        "--meter", default=None, help="saved meter; omit to train fresh"
    )
    serve_http.add_argument(
        "--level", choices=("hpc", "os", "hybrid"), default="hpc",
        help="metric level when training a fresh meter",
    )
    serve_http.add_argument(
        "--confidence-floor", type=float, default=0.75,
        help="decisions below this telemetry confidence hold the "
        "admission probability steady (default 0.75)",
    )
    serve_http.add_argument(
        "--no-fleet", action="store_true",
        help="disable the vectorized structure-of-arrays fleet backend",
    )
    serve_http.add_argument(
        "--workers", type=int, default=0,
        help="shard the ticking service across worker processes "
        "(0 = tick on a thread in this process)",
    )
    serve_http.add_argument(
        "--no-recover", action="store_true",
        help="disable crash recovery: a dead shard's sites degrade to "
        "held decisions and /healthz reports degraded",
    )
    serve_http.add_argument(
        "--max-respawns", type=int, default=3, metavar="N",
        help="respawn budget per worker before its shard is abandoned",
    )
    serve_http.add_argument(
        "--recv-timeout", type=float, default=None, metavar="SECONDS",
        help="supervision deadline for worker replies",
    )
    serve_http.add_argument(
        "--process-faults", default=None, metavar="PLAN",
        help="seeded process chaos for the sharded backend (see serve)",
    )
    serve_http.add_argument(
        "--host", default="127.0.0.1", help="bind address (default lo)"
    )
    serve_http.add_argument(
        "--port", type=int, default=8127,
        help="bind port; 0 picks a free one (default 8127)",
    )
    serve_http.add_argument(
        "--queue-limit", type=int, default=256,
        help="admit requests allowed to wait for a slot before the "
        "server sheds with 503 queue_full (default 256)",
    )
    serve_http.add_argument(
        "--concurrency", type=int, default=32,
        help="admit requests served concurrently (default 32)",
    )
    serve_http.add_argument(
        "--deadline", type=float, default=0.5,
        help="per-request deadline in seconds; overruns answer 504 "
        "and count in repro.obs (default 0.5)",
    )
    serve_http.add_argument(
        "--drain-grace", type=float, default=5.0,
        help="seconds to let in-flight requests finish on SIGTERM",
    )
    serve_http.add_argument(
        "--duration", type=float, default=None,
        help="exit after this many wall seconds (default: run until "
        "SIGINT/SIGTERM)",
    )
    serve_http.add_argument(
        "--order-protect", type=float, default=0.0,
        help="admission-probability boost for Order-class requests "
        "(0 = class-blind, bit-identical to GatedFrontEnd)",
    )
    serve_http.add_argument(
        "--switch-interval", type=float, default=0.002,
        help="sys.setswitchinterval for the tick thread's GIL slices "
        "(default 0.002s; python default 0.005 adds admit tail)",
    )
    serve_http.add_argument(
        "--retrain-on-drift",
        action="store_true",
        help="drift-triggered background retrain + atomic meter "
        "hot-swap while the HTTP decision path keeps serving",
    )
    serve_http.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact cache for --retrain-on-drift rebuilds",
    )
    serve_http.add_argument(
        "--agreement-floor",
        type=float,
        default=0.7,
        help="label-vs-prediction agreement below which the drift "
        "detector triggers a retrain (default 0.7)",
    )
    _add_metrics_out(serve_http)
    serve_http.set_defaults(func=cmd_serve_http)

    loadgen = sub.add_parser(
        "loadgen",
        help="seeded open-loop HTTP load driver for serve-http "
        "(Poisson/constant arrivals, TPC-W mix, tail-latency report)",
    )
    loadgen.add_argument(
        "--url", default="http://127.0.0.1:8127",
        help="serve-http endpoint (default http://127.0.0.1:8127)",
    )
    loadgen.add_argument(
        "--rps", type=float, default=100.0,
        help="target offered request rate (default 100)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=10.0,
        help="seconds of scheduled arrivals (default 10)",
    )
    loadgen.add_argument(
        "--mix", default="tpcw",
        help="tpcw | browsing | shopping | ordering (tpcw = the "
        "benchmark's canonical shopping mix)",
    )
    loadgen.add_argument(
        "--sites", type=int, default=2,
        help="spray requests across site0..site{N-1} (default 2; must "
        "match the server's --sites)",
    )
    loadgen.add_argument(
        "--seed", type=int, default=0,
        help="schedule seed; same seed, byte-identical schedule",
    )
    loadgen.add_argument(
        "--arrivals", choices=("poisson", "constant"), default="poisson",
        help="open-loop arrival process (default poisson)",
    )
    loadgen.add_argument(
        "--timeout", type=float, default=2.0,
        help="per-request client timeout in seconds (default 2)",
    )
    loadgen.add_argument(
        "--connections", type=int, default=16,
        help="keep-alive client connections (default 16)",
    )
    loadgen.add_argument(
        "--out", default="BENCH_http.json",
        help="JSON report path (default BENCH_http.json; empty string "
        "skips the file)",
    )
    loadgen.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any request errored, timed out or got "
        "a 5xx (CI gate)",
    )
    loadgen.set_defaults(func=cmd_loadgen)

    report = sub.add_parser(
        "report", help="regenerate one of the paper's tables/figures"
    )
    report.add_argument("--artifact", choices=_ARTIFACTS, required=True)
    report.add_argument("--scale", type=float, default=0.3)
    report.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent artifacts "
        "(default: all CPUs; bit-identical to --jobs 1)",
    )
    report.add_argument(
        "--cache-dir",
        default=None,
        help="persistent artifact cache directory (default: no cache)",
    )
    report.add_argument(
        "--no-cache", action="store_true", help="disable the artifact cache"
    )
    _add_metrics_out(report)
    report.set_defaults(func=cmd_report)

    table1 = sub.add_parser(
        "table1",
        help="both Table I sub-tables via the parallel engine + cache",
    )
    table1.add_argument(
        "--input",
        choices=("both", "browsing", "ordering"),
        default="both",
        help="which testing mix(es) to tabulate",
    )
    table1.add_argument("--scale", type=float, default=0.3)
    table1.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for runs/synopses "
        "(default: all CPUs; bit-identical to --jobs 1)",
    )
    table1.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    table1.add_argument(
        "--no-cache", action="store_true", help="disable the artifact cache"
    )
    table1.add_argument(
        "--learners",
        default="",
        help="comma-separated learner subset (default: all registered)",
    )
    _add_metrics_out(table1)
    table1.set_defaults(func=cmd_table1)

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent artifact cache"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache.set_defaults(func=cmd_cache)

    obs = sub.add_parser(
        "obs",
        help="inspect recorded metrics or self-measure instrumentation "
        "overhead",
    )
    obs.add_argument(
        "action",
        choices=("dump", "overhead"),
        help="dump: render a --metrics-out .jsonl event log as "
        "Prometheus text; overhead: measure the instrumentation "
        "layer's decision-path cost",
    )
    obs.add_argument(
        "--from",
        dest="source",
        default=None,
        metavar="FILE.jsonl",
        help="event log to render (dump)",
    )
    obs.add_argument(
        "--out", default=None, help="write exposition here instead of stdout"
    )
    obs.add_argument("--scale", type=float, default=0.2)
    obs.add_argument(
        "--mix",
        choices=("ordering", "browsing", "interleaved", "unknown"),
        default="ordering",
        help="test workload replayed by the overhead measurement",
    )
    obs.add_argument(
        "--level", choices=("hpc", "os", "hybrid"), default="hpc",
        help="metric level of the freshly trained meter (overhead)",
    )
    obs.add_argument(
        "--repeats", type=int, default=5,
        help="timing repetitions; best-of-N is reported (overhead)",
    )
    obs.add_argument(
        "--passes", type=int, default=3,
        help="back-to-back record-stream passes per timed replay; more "
        "passes shrink timer noise (overhead)",
    )
    obs.add_argument(
        "--max-overhead", type=float, default=None,
        help="exit non-zero when overhead exceeds this percentage "
        "(CI gate)",
    )
    obs.set_defaults(func=cmd_obs)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        if str(metrics_out).endswith(".jsonl"):
            # stream span events live; the final snapshot appends to them
            OBS.enable(events=metrics_out)
        else:
            OBS.enable()
    try:
        status = args.func(args)
    finally:
        if metrics_out:
            OBS.dump(metrics_out)
            OBS.reset()
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())

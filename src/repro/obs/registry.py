"""Dependency-free metrics registry: counters, gauges, histograms.

The observability layer's storage is deliberately tiny and allocation
conscious: a metric is one small object holding plain Python floats, a
registry is one dict keyed by ``(name, sorted label items)``, and the
hot-path operations (``Counter.inc``, ``Histogram.observe``) touch no
containers beyond a fixed-size bucket list.  Nothing here imports any
other ``repro`` module, so instrumented code anywhere in the tree can
depend on it without cycles.

Semantics follow the Prometheus data model:

* :class:`Counter` — monotonically non-decreasing float;
* :class:`Gauge` — arbitrary settable float;
* :class:`Histogram` — observations bucketed by *fixed* upper bounds
  chosen at creation (plus an implicit ``+Inf`` overflow bucket), with
  a running sum and count.  Bucket counts are stored per-bucket and
  cumulated only at exposition time.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_BUCKETS",
    "TAIL_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
]

#: default histogram upper bounds (seconds) — spans from microseconds
#: (a guarded counter bump) to tens of seconds (a full warm build)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: bounds (seconds) for request-latency histograms where p99/p99.9 must
#: resolve: dense from 100µs to 100ms (an admit query answered from a
#: published snapshot lives here), then sparse up to the deadline range
TAIL_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.002,
    0.003,
    0.005,
    0.0075,
    0.01,
    0.015,
    0.02,
    0.03,
    0.05,
    0.075,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

LabelItems = Tuple[Tuple[str, str], ...]


def label_key(labels: Mapping[str, object]) -> LabelItems:
    """Canonical hashable form of a label set."""
    if len(labels) == 1:
        # the common instrumented shape — no sort needed
        ((k, v),) = labels.items()
        return ((k, str(v)),)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """Arbitrary settable value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with running sum and count.

    ``bounds`` are the inclusive upper bucket boundaries, strictly
    increasing; observations above the last bound land in the implicit
    ``+Inf`` bucket.  ``counts`` holds *per-bucket* tallies (length
    ``len(bounds) + 1``); :meth:`cumulative` produces the
    Prometheus-style running totals.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        bounds_t = tuple(float(b) for b in bounds)
        if any(b >= a for b, a in zip(bounds_t, bounds_t[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds_t
        self.counts: List[int] = [0] * (len(bounds_t) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        # bisect_left: first bound >= value, i.e. the smallest bucket
        # whose "le" boundary admits the observation; len(bounds) (all
        # bounds smaller) is exactly the +Inf slot of ``counts``
        self.counts[bisect_left(self.bounds, value)] += 1

    def cumulative(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (incl. ``+Inf``)."""
        out: List[int] = []
        total = 0
        for tally in self.counts:
            total += tally
            out.append(total)
        return out


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Insertion-ordered store of named, labelled metrics.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call for a ``(name, labels)`` pair creates the child, later calls
    return the same object, so instrumented call sites never need to
    hold references.  A name is bound to one metric kind (and, for
    histograms, one bucket layout) for the registry's lifetime.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}
        #: name -> (kind, help text); fixes a name's kind on first use
        self._meta: Dict[str, Tuple[str, str]] = {}

    # ------------------------------------------------------------------
    def _check_kind(self, name: str, kind: str, help: str) -> None:
        meta = self._meta.get(name)
        if meta is None:
            self._meta[name] = (kind, help)
        elif meta[0] != kind:
            raise ValueError(
                f"metric {name!r} is a {meta[0]}, not a {kind}"
            )
        elif help and not meta[1]:
            self._meta[name] = (kind, help)

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        # hot path: an existing child is one dict probe plus a kind check
        key = (name, label_key(labels) if labels else ())
        metric = self._metrics.get(key)
        if metric is None:
            self._check_kind(name, "counter", help)
            metric = self._metrics[key] = Counter(name, key[1])
        elif metric.__class__ is not Counter:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a counter"
            )
        return metric

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        key = (name, label_key(labels) if labels else ())
        metric = self._metrics.get(key)
        if metric is None:
            self._check_kind(name, "gauge", help)
            metric = self._metrics[key] = Gauge(name, key[1])
        elif metric.__class__ is not Gauge:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a gauge"
            )
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, label_key(labels) if labels else ())
        metric = self._metrics.get(key)
        if metric is None:
            self._check_kind(name, "histogram", help)
            metric = self._metrics[key] = Histogram(
                name, key[1], buckets if buckets is not None else DEFAULT_BUCKETS
            )
            return metric
        if metric.__class__ is not Histogram:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a histogram"
            )
        if buckets is not None and tuple(float(b) for b in buckets) != metric.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with bounds "
                f"{metric.bounds}"
            )
        return metric

    # ------------------------------------------------------------------
    def help_for(self, name: str) -> str:
        meta = self._meta.get(name)
        return meta[1] if meta is not None else ""

    def kind_of(self, name: str) -> Optional[str]:
        meta = self._meta.get(name)
        return meta[0] if meta is not None else None

    def names(self) -> List[str]:
        """Metric family names in first-use order."""
        return list(self._meta)

    def children(self, name: str) -> List[Metric]:
        """All labelled children of one family, in creation order."""
        return [m for (n, _), m in self._metrics.items() if n == name]

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(
        self, name: str, **labels: object
    ) -> Optional[Metric]:
        """Existing child, or None — never creates."""
        return self._metrics.get((name, label_key(labels)))

    def value(self, name: str, **labels: object) -> float:
        """Scalar value of an existing counter/gauge (0.0 if absent)."""
        metric = self._metrics.get((name, label_key(labels)))
        if metric is None or isinstance(metric, Histogram):
            return 0.0
        return metric.value

    def clear(self) -> None:
        self._metrics.clear()
        self._meta.clear()

"""Metric sinks: Prometheus-style text exposition and a JSONL log.

Two complementary output shapes:

* :func:`exposition` renders a registry in the Prometheus text format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  cumulative ``_bucket`` rows for histograms) — the scrape-friendly
  snapshot ``--metrics-out metrics.prom`` writes;
* :func:`write_snapshot` appends one JSON line per metric sample to a
  JSONL stream — the event-log shape.  Span events are appended live
  (see :class:`~repro.obs.spans.Span`); the snapshot lines carry the
  final registry state.  :func:`registry_from_jsonl` rebuilds a
  registry from such a file (ignoring transient ``span`` event lines,
  whose durations are already folded into the span histogram), so
  ``repro obs dump`` round-trips a JSONL log back into exposition text.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, List, Union

from .registry import Counter, Gauge, Histogram, Metric, MetricsRegistry

__all__ = [
    "exposition",
    "merge_snapshot",
    "registry_from_jsonl",
    "snapshot_lines",
    "write_exposition",
    "write_snapshot",
]


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _merged_labels(metric: Metric, extra: Dict[str, str]) -> Dict[str, str]:
    labels = {k: v for k, v in metric.labels}
    labels.update(extra)
    return labels


def exposition(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text-format exposition."""
    out: List[str] = []
    for name in registry.names():
        kind = registry.kind_of(name)
        help_text = registry.help_for(name)
        if help_text:
            out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {kind}")
        for metric in registry.children(name):
            if isinstance(metric, (Counter, Gauge)):
                out.append(
                    f"{name}{_format_labels(_merged_labels(metric, {}))} "
                    f"{_format_value(metric.value)}"
                )
                continue
            assert isinstance(metric, Histogram)
            cumulative = metric.cumulative()
            for bound, total in zip(metric.bounds, cumulative):
                labels = _merged_labels(metric, {"le": _format_value(bound)})
                out.append(
                    f"{name}_bucket{_format_labels(labels)} {total}"
                )
            labels = _merged_labels(metric, {"le": "+Inf"})
            out.append(f"{name}_bucket{_format_labels(labels)} {cumulative[-1]}")
            base = _format_labels(_merged_labels(metric, {}))
            out.append(f"{name}_sum{base} {_format_value(metric.sum)}")
            out.append(f"{name}_count{base} {metric.count}")
    return "\n".join(out) + ("\n" if out else "")


def write_exposition(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write the text exposition to ``path`` and return it."""
    target = Path(path)
    target.write_text(exposition(registry), encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def snapshot_lines(registry: MetricsRegistry) -> List[str]:
    """One JSON line per metric sample, capturing full registry state."""
    lines: List[str] = []
    for name in registry.names():
        lines.append(
            json.dumps(
                {
                    "event": "meta",
                    "name": name,
                    "kind": registry.kind_of(name),
                    "help": registry.help_for(name),
                },
                sort_keys=True,
            )
        )
    for metric in registry:
        labels = {k: v for k, v in metric.labels}
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                json.dumps(
                    {
                        "event": "sample",
                        "name": metric.name,
                        "labels": labels,
                        "value": metric.value,
                    },
                    sort_keys=True,
                )
            )
            continue
        assert isinstance(metric, Histogram)
        lines.append(
            json.dumps(
                {
                    "event": "histogram",
                    "name": metric.name,
                    "labels": labels,
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                },
                sort_keys=True,
            )
        )
    return lines


def write_snapshot(registry: MetricsRegistry, stream: IO[str]) -> int:
    """Append the snapshot lines to an open JSONL stream."""
    lines = snapshot_lines(registry)
    for line in lines:
        stream.write(line + "\n")
    stream.flush()
    return len(lines)


def merge_snapshot(
    registry: MetricsRegistry, lines: List[str]
) -> int:
    """Merge one :func:`snapshot_lines` snapshot *into* ``registry``.

    The cross-process aggregation rule — e.g. folding every shard
    worker's registry into the parent before ``--metrics-out`` flushes:

    * **counters** are summed (each process observed disjoint events);
    * **histograms** are summed bucket-wise (same reasoning; bucket
      layouts must match, anything else is a programming error and
      raises);
    * **gauges** are last-write-wins (a gauge is a statement of current
      state, and the merge order — worker order — is deterministic).

    Returns the number of metric samples merged.  Metric families new
    to ``registry`` are created with the snapshot's kind and help text.
    """
    merged = 0
    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        event = json.loads(raw)
        kind = event.get("event")
        if kind == "meta":
            registry._check_kind(
                str(event["name"]),
                str(event["kind"]),
                str(event.get("help", "")),
            )
        elif kind == "sample":
            name = str(event["name"])
            labels = {
                str(k): str(v) for k, v in event.get("labels", {}).items()
            }
            value = float(event["value"])
            if registry.kind_of(name) == "gauge":
                registry.gauge(name, **labels).set(value)
            else:
                registry.counter(name, **labels).value += value
            merged += 1
        elif kind == "histogram":
            name = str(event["name"])
            labels = {
                str(k): str(v) for k, v in event.get("labels", {}).items()
            }
            child = registry.histogram(
                name,
                buckets=[float(b) for b in event["bounds"]],
                **labels,
            )
            counts = [int(c) for c in event["counts"]]
            if len(counts) != len(child.counts):
                raise ValueError(
                    f"histogram {name!r} snapshot has {len(counts)} "
                    f"buckets, registry has {len(child.counts)}"
                )
            child.counts = [a + b for a, b in zip(child.counts, counts)]
            child.sum += float(event["sum"])
            child.count += int(event["count"])
            merged += 1
        # "span" and unknown events: activity log, skipped
    return merged


def registry_from_jsonl(path: Union[str, Path]) -> MetricsRegistry:
    """Rebuild a registry from a JSONL metric log.

    ``span`` event lines are an activity log, not state — their
    durations were folded into the span histogram before the snapshot
    was written — so they are skipped.  When a file holds several
    snapshots, later samples simply overwrite earlier ones, i.e. the
    *last* snapshot wins.
    """
    registry = MetricsRegistry()
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            event = json.loads(raw)
            kind = event.get("event")
            if kind == "meta":
                registry._check_kind(
                    str(event["name"]),
                    str(event["kind"]),
                    str(event.get("help", "")),
                )
            elif kind == "sample":
                name = str(event["name"])
                labels = {
                    str(k): str(v) for k, v in event.get("labels", {}).items()
                }
                if registry.kind_of(name) == "gauge":
                    registry.gauge(name, **labels).set(float(event["value"]))
                else:
                    child = registry.counter(name, **labels)
                    child.value = float(event["value"])
            elif kind == "histogram":
                name = str(event["name"])
                labels = {
                    str(k): str(v) for k, v in event.get("labels", {}).items()
                }
                child = registry.histogram(
                    name,
                    buckets=[float(b) for b in event["bounds"]],
                    **labels,
                )
                child.counts = [int(c) for c in event["counts"]]
                child.sum = float(event["sum"])
                child.count = int(event["count"])
            # "span" and unknown events: activity log, skipped
    return registry

"""Lightweight timing spans.

A span measures one timed section and folds its duration into the
shared ``repro_span_seconds`` histogram (labelled by span name), plus
an optional JSONL event when an event sink is attached.  The disabled
path allocates nothing: :data:`NOOP_SPAN` is a module-level singleton
whose ``__enter__``/``__exit__`` do nothing, and
:meth:`~repro.obs.Observability.span` hands it out whenever the layer
is off.
"""

from __future__ import annotations

import json
import time
from types import TracebackType
from typing import IO, Optional, Type

from .registry import MetricsRegistry

__all__ = ["SPAN_METRIC", "NoopSpan", "NOOP_SPAN", "Span"]

#: histogram family every span duration lands in
SPAN_METRIC = "repro_span_seconds"


class NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


NOOP_SPAN = NoopSpan()


class Span:
    """One timed section; records on exit."""

    __slots__ = ("registry", "name", "events", "started")

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        events: Optional[IO[str]] = None,
    ):
        self.registry = registry
        self.name = name
        self.events = events
        self.started = 0.0

    def __enter__(self) -> "Span":
        self.started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        seconds = time.perf_counter() - self.started
        record_span(self.registry, self.name, seconds, self.events)


def record_span(
    registry: MetricsRegistry,
    name: str,
    seconds: float,
    events: Optional[IO[str]] = None,
) -> None:
    """Fold one measured duration into the span histogram (+ event log)."""
    registry.histogram(
        SPAN_METRIC,
        help="duration of instrumented sections, by span name",
        span=name,
    ).observe(seconds)
    if events is not None:
        events.write(
            json.dumps(
                {"event": "span", "name": name, "seconds": seconds},
                sort_keys=True,
            )
            + "\n"
        )

"""Observability overhead self-measurement (mirrors paper Section V.D).

The paper quantifies its *collection agents'* cost by running the same
workload with and without them; this module applies the identical
method to the reproduction's own instrumentation layer.  A fixed-seed
interval-record stream is replayed through the online decision path
(:class:`~repro.core.monitor.OnlineCapacityMonitor.push` per record)
twice — once with :data:`~repro.obs.OBS` disabled, once enabled — on a
fresh meter clone each time, and the wall-clock delta is the layer's
measured overhead.  The two replays must (and are verified to) produce
identical decision sequences, because instrumentation is observation
only.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from . import OBS, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.capacity import CapacityMeter
    from ..telemetry.sampler import IntervalRecord

__all__ = ["OverheadSelfReport", "measure_decision_overhead"]


@dataclass(frozen=True)
class OverheadSelfReport:
    """Measured cost of the instrumentation layer on the decision path."""

    #: best-of-N wall seconds with instrumentation off / on
    off_seconds: float
    on_seconds: float
    records: int
    windows: int
    repeats: int
    #: the two replays' decision signatures matched (they must)
    identical_decisions: bool
    #: sample counts collected during the enabled replay
    metrics_collected: int

    @property
    def overhead_percent(self) -> float:
        """Enabled-path slowdown relative to the disabled path."""
        if self.off_seconds <= 0:
            return 0.0
        return 100.0 * (self.on_seconds - self.off_seconds) / self.off_seconds

    def rows(self) -> List[str]:
        return [
            f"Observability overhead (decision path, {self.records} records "
            f"/ {self.windows} windows, best of {self.repeats}):",
            f"instrumentation off: {self.off_seconds * 1e3:10.2f} ms",
            f"instrumentation on:  {self.on_seconds * 1e3:10.2f} ms "
            f"({self.metrics_collected} metric series)",
            f"overhead:            {self.overhead_percent:+10.2f} %",
            f"decisions identical: {'yes' if self.identical_decisions else 'NO'}",
        ]


def _replay(
    meter: "CapacityMeter",
    records: Sequence["IntervalRecord"],
    passes: int = 1,
) -> Any:
    """One timed replay on a fresh meter clone; returns (seconds, monitor).

    ``passes`` repeats the record stream back to back through the same
    monitor, stretching the timed region so timer jitter and scheduler
    noise shrink relative to the measured work.
    """
    from ..core.capacity import CapacityMeter
    from ..core.monitor import OnlineCapacityMonitor

    clone = CapacityMeter.from_payload(meter.to_payload(), labeler=meter.labeler)
    monitor = OnlineCapacityMonitor(clone, retain_decisions=None)
    push = monitor.push
    start = time.perf_counter()
    for _ in range(passes):
        for record in records:
            push(record)
    return time.perf_counter() - start, monitor


def measure_decision_overhead(
    meter: "CapacityMeter",
    records: Sequence["IntervalRecord"],
    *,
    repeats: int = 3,
    passes: int = 3,
    registry: Optional[MetricsRegistry] = None,
) -> OverheadSelfReport:
    """Replay ``records`` with instrumentation off and on; report the delta.

    The prior global OBS state is saved and restored, so the caller's
    configuration (including a CLI ``--metrics-out`` session) survives
    the measurement.  ``registry`` receives the enabled replays' samples
    (a private registry by default, keeping the caller's metrics clean).
    """
    from ..faults.campaign import decision_signature

    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if passes < 1:
        raise ValueError("passes must be at least 1")
    records = list(records)

    saved_enabled = OBS.enabled
    saved_registry = OBS.registry
    scratch = registry if registry is not None else MetricsRegistry()

    off_best = float("inf")
    on_best = float("inf")
    off_signature = on_signature = ""
    windows = 0
    gc_was_enabled = gc.isenabled()
    try:
        # one untimed warm-up per mode settles allocator and code caches
        OBS.enabled = False
        _replay(meter, records)
        OBS.enabled = True
        OBS.registry = scratch
        _replay(meter, records)
        # interleaved best-of-N pairs with the collector paused, so a
        # GC pause or frequency excursion cannot land on one mode only
        gc.disable()
        for _ in range(repeats):
            OBS.enabled = False
            seconds, monitor = _replay(meter, records, passes)
            off_best = min(off_best, seconds)
            off_signature = decision_signature(list(monitor.decisions))
            windows = monitor.counters.windows

            OBS.enabled = True
            OBS.registry = scratch
            seconds, monitor = _replay(meter, records, passes)
            on_best = min(on_best, seconds)
            on_signature = decision_signature(list(monitor.decisions))
    finally:
        if gc_was_enabled:
            gc.enable()
        OBS.enabled = saved_enabled
        OBS.registry = saved_registry

    return OverheadSelfReport(
        off_seconds=off_best,
        on_seconds=on_best,
        records=len(records) * passes,
        windows=windows,
        repeats=repeats,
        identical_decisions=off_signature == on_signature,
        metrics_collected=len(scratch),
    )

"""``repro.obs`` — self-observability for the measurement pipeline.

The paper's premise is *online measurement with negligible overhead*
(Section V.D reports <2% collection cost); this package holds the
reproduction to the same standard by making its own pipeline
measurable.  It provides a dependency-free metrics registry
(:mod:`~repro.obs.registry`), timing spans (:mod:`~repro.obs.spans`),
two sinks (:mod:`~repro.obs.sinks`: JSONL event log and
Prometheus-style text exposition) and an overhead self-measurement
mode (:mod:`~repro.obs.overhead`) that reruns a fixed-seed campaign
with instrumentation on vs. off, mirroring the paper's own overhead
experiment.

Design contract — **disabled means invisible**:

* the layer is **off by default**; every instrumented call site is
  guarded by a single attribute check (``if OBS.enabled:``) and the
  disabled path performs no allocation, no dict lookup, no call into
  this package;
* enabling it changes *no* behaviour: metrics are pure observations,
  so every bit-identical guarantee in the repository (streaming vs
  batch, parallel vs serial, faulted replay determinism) holds with
  the layer on or off;
* hot paths never hold metric references — the registry's
  get-or-create accessors are cheap enough to call per event, and the
  measured enabled-path overhead on the decision loop is reported by
  ``repro obs overhead`` (acceptance floor: under 5%).

Usage::

    from repro.obs import OBS

    OBS.enable()
    ... run a monitor / campaign / table ...
    print(OBS.exposition())          # Prometheus text
    OBS.disable()

The singleton :data:`OBS` is what instrumented modules import; tests
and the CLI may also build private :class:`Observability` instances.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import IO, Optional, Sequence, Union

from .registry import (
    DEFAULT_BUCKETS,
    TAIL_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from .sinks import (
    exposition,
    merge_snapshot,
    registry_from_jsonl,
    snapshot_lines,
    write_exposition,
    write_snapshot,
)
from .spans import NOOP_SPAN, SPAN_METRIC, NoopSpan, Span, record_span

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NoopSpan",
    "OBS",
    "Observability",
    "SPAN_METRIC",
    "Span",
    "TAIL_LATENCY_BUCKETS",
    "exposition",
    "merge_snapshot",
    "registry_from_jsonl",
    "snapshot_lines",
    "write_exposition",
    "write_snapshot",
]


class Observability:
    """Enable/disable switch plus convenience recording API.

    ``enabled`` is a plain attribute so the guard at every instrumented
    call site is a single load-and-branch; all recording methods assume
    the caller already checked it (calling them while disabled still
    works — it records into the registry — which keeps tests simple).
    """

    __slots__ = (
        "enabled",
        "registry",
        "events",
        "_owns_events",
        "_span_cache",
        "_span_registry",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.events: Optional[IO[str]] = None
        self._owns_events = False
        # per-registry cache of span-name -> histogram child, so the
        # per-window observe_span is a dict probe, not a get-or-create
        self._span_cache: dict = {}
        self._span_registry: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        events: Union[IO[str], str, Path, None] = None,
    ) -> MetricsRegistry:
        """Turn collection on, optionally attaching a JSONL event sink.

        ``events`` may be an open text stream or a path (opened for
        append; closed again by :meth:`disable`/:meth:`reset` only when
        opened here).
        """
        if registry is not None:
            self.registry = registry
        if events is not None:
            self._close_events()
            if isinstance(events, (str, Path)):
                self.events = open(events, "a", encoding="utf-8")
                self._owns_events = True
            else:
                self.events = events
                self._owns_events = False
        self.enabled = True
        return self.registry

    def disable(self) -> None:
        """Stop collecting; the registry keeps its state for dumping."""
        self.enabled = False
        self._close_events()

    def reset(self) -> None:
        """Disable and drop all collected state (test isolation)."""
        self.disable()
        self.registry = MetricsRegistry()

    def _close_events(self) -> None:
        if self.events is not None and self._owns_events:
            self.events.close()
        self.events = None
        self._owns_events = False

    # ------------------------------------------------------------------
    # recording (call sites guard with ``if OBS.enabled:``)
    # ------------------------------------------------------------------
    def inc(
        self, name: str, amount: float = 1.0, help: str = "", **labels: object
    ) -> None:
        self.registry.counter(name, help=help, **labels).inc(amount)

    def set(
        self, name: str, value: float, help: str = "", **labels: object
    ) -> None:
        self.registry.gauge(name, help=help, **labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> None:
        self.registry.histogram(
            name, help=help, buckets=buckets, **labels
        ).observe(value)

    def span(self, name: str) -> Union[Span, NoopSpan]:
        """Context manager timing one section (no-op when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self.registry, name, self.events)

    def observe_span(self, name: str, seconds: float) -> None:
        """Record an externally timed duration as a span."""
        if self.events is not None:
            # slow path: the JSONL sink needs the event line too
            record_span(self.registry, name, seconds, self.events)
            return
        if self._span_registry is not self.registry:
            self._span_cache = {}
            self._span_registry = self.registry
        histogram = self._span_cache.get(name)
        if histogram is None:
            histogram = self._span_cache[name] = self.registry.histogram(
                SPAN_METRIC,
                help="duration of instrumented sections, by span name",
                span=name,
            )
        histogram.observe(seconds)

    @staticmethod
    def clock() -> float:
        """The span clock (``time.perf_counter``)."""
        return time.perf_counter()

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def exposition(self) -> str:
        """Current registry as Prometheus text exposition."""
        return exposition(self.registry)

    def dump(self, path: Union[str, Path]) -> Path:
        """Write the registry to ``path``.

        A ``.jsonl`` suffix selects the JSONL event-log shape (snapshot
        appended, preserving any live span events already in the file);
        anything else gets the text exposition.
        """
        target = Path(path)
        if target.suffix == ".jsonl":
            if self.events is not None:
                write_snapshot(self.registry, self.events)
            else:
                with open(target, "a", encoding="utf-8") as fh:
                    write_snapshot(self.registry, fh)
            return target
        return write_exposition(self.registry, target)


#: process-wide singleton every instrumented module guards on
OBS = Observability()

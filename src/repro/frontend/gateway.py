"""Admission gateway: the HTTP server's lock-free decision path.

:class:`AdmitGateway` answers "admit this request to this site?" from a
published :class:`~repro.control.snapshot.FleetSnapshot` instead of the
service's live gate objects.  The service's tick loop (a background
thread, or PR 7/8's worker processes) keeps folding telemetry and
moving the real AIMD gates; the gateway re-reads the latest snapshot
before every draw, so the HTTP decision path never takes a lock and its
p99 is decoupled from window-compute time.

Bit-identical parity with :class:`~repro.control.admission.GatedFrontEnd`
is the contract (pinned in ``tests/test_frontend.py``): the gateway
holds one real :class:`~repro.control.admission.AimdGate` per site,
seeded from an *independent* substream of the site's root seed
(:func:`http_gate_stream` — ``spawn_key=(2,)``, disjoint from the
service's gate/sampler children at ``(0,)``/``(1,)``), syncs its
admission probability from the snapshot, and then calls the gate's own
:meth:`~repro.control.admission.AimdGate.admit` — the same counter
bumps, the same single uniform draw per request, the same draw order.

Request-class awareness rides on top without disturbing parity:
``order_protect`` (off by default) boosts the effective admission
probability for ORDER-class interactions — the paper's session-value
argument that an almost-complete purchase is worth more than a fresh
browse — while keeping exactly one RNG draw per request, so with
``order_protect=0.0`` the decision stream is bit-identical to
``GatedFrontEnd`` on the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..control.admission import AimdGate
from ..control.service import SiteSpec
from ..control.snapshot import FleetSnapshot
from ..obs import OBS
from ..simulator.website import ORDER

__all__ = [
    "AdmitGateway",
    "AdmitResult",
    "UnknownSiteError",
    "http_gate_stream",
]


class UnknownSiteError(KeyError):
    """The gateway hosts no site by that name (HTTP 404)."""


def http_gate_stream(spec: SiteSpec) -> np.random.SeedSequence:
    """The HTTP gateway's admission RNG substream for one site.

    ``SeedSequence(seed).spawn(2)`` already allocated the children with
    spawn keys ``(0,)`` (service gate) and ``(1,)`` (sampler) — the
    explicit ``spawn_key=(2,)`` child is the next sibling in the same
    tree, independent of both, so gateway coin-flips never correlate
    with the simulation the meter is measuring.
    """
    return np.random.SeedSequence(spec.seed, spawn_key=(2,))


@dataclass(frozen=True)
class AdmitResult:
    """One gateway decision, JSON-shaped for the HTTP response."""

    site: str
    admitted: bool
    admission_probability: float
    request_class: str
    degraded: bool
    held: bool
    window_index: int
    snapshot_seq: int


class AdmitGateway:
    """Per-site admission draws against the latest published snapshot.

    ``snapshot_source`` is any zero-argument callable returning the
    newest :class:`FleetSnapshot` (or ``None`` before the first
    publication) — in practice ``lambda: service.snapshot``, which is a
    single attribute load of an immutable object and therefore safe
    from any thread.  The gateway itself is confined to the server's
    event-loop thread; only the snapshot crosses threads.
    """

    def __init__(
        self,
        specs: Sequence[SiteSpec],
        snapshot_source: Callable[[], Optional[FleetSnapshot]],
        *,
        order_protect: float = 0.0,
    ) -> None:
        if not 0.0 <= order_protect <= 1.0:
            raise ValueError("order_protect must be in [0, 1]")
        self._snapshot_source = snapshot_source
        self.order_protect = order_protect
        # the "#http" label keeps gateway admission counters separate
        # from the in-simulation gates' metrics for the same site
        self._gates: Dict[str, AimdGate] = {
            spec.name: AimdGate(
                decrease_factor=spec.decrease_factor,
                increase_step=spec.increase_step,
                min_admission=spec.min_admission,
                confidence_floor=spec.confidence_floor,
                seed=http_gate_stream(spec),
                site=f"{spec.name}#http",
            )
            for spec in specs
        }

    @property
    def sites(self) -> Sequence[str]:
        return tuple(self._gates)

    def gate(self, site: str) -> AimdGate:
        """The gateway's own gate for ``site`` (stats inspection)."""
        try:
            return self._gates[site]
        except KeyError:
            raise UnknownSiteError(site) from None

    def snapshot(self) -> Optional[FleetSnapshot]:
        """The newest published snapshot (None before the first)."""
        return self._snapshot_source()

    def admit(
        self, site: str, request_class: str = "browse"
    ) -> AdmitResult:
        """One admission draw for ``site`` at the published probability.

        Exactly one uniform draw per call regardless of class, so the
        decision stream at ``order_protect=0.0`` matches
        ``GatedFrontEnd`` bit for bit on the same trace.
        """
        gate = self.gate(site)
        snapshot = self._snapshot_source()
        entry = None
        if snapshot is not None:
            entry = snapshot.sites.get(site)
        if entry is not None:
            gate.admission_probability = entry.admission_probability
        published = gate.admission_probability
        boosted = (
            self.order_protect > 0.0 and request_class == ORDER
        )
        if boosted:
            gate.admission_probability = min(
                1.0, published + self.order_protect
            )
        admitted = gate.admit()
        if boosted:
            gate.admission_probability = published
        if OBS.enabled:
            OBS.inc(
                "repro_http_admit_total",
                help="HTTP admission outcomes, by site and request class",
                site=site,
                request_class=request_class,
                outcome="admitted" if admitted else "rejected",
            )
        return AdmitResult(
            site=site,
            admitted=admitted,
            admission_probability=published,
            request_class=request_class,
            degraded=entry.degraded if entry is not None else False,
            held=entry.held if entry is not None else False,
            window_index=entry.window_index if entry is not None else -1,
            snapshot_seq=snapshot.seq if snapshot is not None else 0,
        )

    def decide(self, site: str) -> Dict[str, object]:
        """The site's current published decision state, no draw.

        ``POST /decide`` is the read-only sibling of ``/admit``: load
        balancers that batch their own Bernoulli draws only need the
        probability and the decision flags, not a coin flip per call.
        """
        self.gate(site)  # 404 on unknown sites, same as /admit
        snapshot = self._snapshot_source()
        entry = None
        if snapshot is not None:
            entry = snapshot.sites.get(site)
        if entry is None:
            return {
                "site": site,
                "admission_probability": 1.0,
                "overloaded": False,
                "degraded": False,
                "held": False,
                "confidence": 1.0,
                "window_index": -1,
                "snapshot_seq": snapshot.seq if snapshot else 0,
            }
        return {
            "site": site,
            "admission_probability": entry.admission_probability,
            "overloaded": entry.overloaded,
            "degraded": entry.degraded,
            "held": entry.held,
            "confidence": entry.confidence,
            "window_index": entry.window_index,
            "snapshot_seq": snapshot.seq if snapshot else 0,
        }

    def state_dict(self) -> Dict[str, Dict[str, object]]:
        """The gateway gates' run-local state, JSON-serializable.

        The gateway's AIMD gates carry their own RNG substreams
        (``spawn_key=(2,)``); without checkpointing them a restarted
        server would re-seed from zero and replay the head of each
        site's draw sequence instead of continuing it mid-trace.
        """
        return {
            name: gate.state_dict() for name, gate in self._gates.items()
        }

    def load_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Restore :meth:`state_dict` output (unknown sites rejected)."""
        for name, raw in state.items():
            if name not in self._gates:
                raise UnknownSiteError(name)
            self._gates[name].load_state(dict(raw))

    def health(self) -> Dict[str, object]:
        """Liveness payload: healthy, or why not.

        Statuses (anything but ``"ok"`` answers 503): ``starting``
        (no snapshot published yet), ``warming_up`` (the seed snapshot
        is out but no site has decided a real window — an orchestrator
        must not route to a fleet whose gates have never seen
        telemetry), ``degraded`` (lost shards; takes precedence).
        """
        snapshot = self._snapshot_source()
        if snapshot is None:
            return {"status": "starting", "sites": len(self._gates)}
        if not snapshot.healthy:
            status = "degraded"
        elif not snapshot.warmed:
            status = "warming_up"
        else:
            status = "ok"
        payload: Dict[str, object] = {
            "status": status,
            "sites": len(self._gates),
            "snapshot_seq": snapshot.seq,
            "tick": snapshot.tick,
            "meter_version": snapshot.meter_version,
        }
        if snapshot.lost_sites:
            payload["lost_sites"] = list(snapshot.lost_sites)
        if snapshot.drifted_sites:
            payload["drifted_sites"] = list(snapshot.drifted_sites)
        return payload

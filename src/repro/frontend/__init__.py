"""HTTP front end: the capacity meter behind a network boundary.

``repro serve-http`` runs :class:`HttpCapacityServer` — admit/decide/
healthz/metrics over hand-rolled asyncio HTTP/1.1 — answering from the
capacity service's lock-free published snapshots while the service
ticks in the background; ``repro loadgen`` drives it open-loop with
seeded TPC-W traffic and writes the ``BENCH_http.json`` tail-latency
report the CI SLO gate consumes.
"""

from .gateway import (
    AdmitGateway,
    AdmitResult,
    UnknownSiteError,
    http_gate_stream,
)
from .loadgen import (
    PlannedRequest,
    build_schedule,
    resolve_loadgen_mix,
    run_load,
    schedule_digest,
)
from .server import HttpCapacityServer, ServerStats

__all__ = [
    "AdmitGateway",
    "AdmitResult",
    "HttpCapacityServer",
    "PlannedRequest",
    "ServerStats",
    "UnknownSiteError",
    "build_schedule",
    "http_gate_stream",
    "resolve_loadgen_mix",
    "run_load",
    "schedule_digest",
]

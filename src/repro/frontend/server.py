"""Hand-rolled asyncio HTTP/1.1 server for the admission gateway.

No new runtime deps: the protocol layer is ``asyncio.start_server``
plus ~a page of HTTP/1.1 parsing (request line, headers,
``Content-Length`` bodies, keep-alive).  Routes:

- ``POST /admit``  — one admission draw (:meth:`AdmitGateway.admit`)
- ``POST /decide`` — published decision state, no draw
- ``GET /healthz`` — liveness; 503 + ``"degraded"`` when the sharded
  service is holding decisions for lost shards (``--no-recover``)
- ``GET /metrics`` — :mod:`repro.obs` text exposition

GIL awareness is structural: the server runs on an event loop in the
main thread while the capacity service ticks on a worker thread (or in
PR 7's worker processes); the only shared state is the immutable
published :class:`~repro.control.snapshot.FleetSnapshot`, read with a
single attribute load.  The decision path therefore never blocks on
window compute, which is what the SLO gate in CI measures.

Overload protection on the decision path mirrors what the gate itself
does for the backend: a bounded wait queue (queue depth over
``queue_limit`` → immediate ``503 queue_full``) and a per-request
deadline measured from head receipt (slot waits and body reads that
overrun it → ``504 deadline_exceeded``, counted in ``repro.obs``).

Graceful drain (SIGTERM, via the CLI's ``_graceful_signals``): stop
accepting, unpark idle keep-alive connections, let every in-flight
request finish and flush its response (bounded by ``drain_grace``),
then close.  In-flight requests are never dropped — pinned by
``tests/test_frontend.py``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..obs import OBS, TAIL_LATENCY_BUCKETS
from .gateway import AdmitGateway, UnknownSiteError

__all__ = ["HttpCapacityServer", "ServerStats"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServerStats:
    """Plain counters, always on (no OBS dependency)."""

    connections: int = 0
    requests: int = 0
    admitted: int = 0
    rejected: int = 0
    queue_full: int = 0
    deadline_exceeded: int = 0
    bad_requests: int = 0
    not_found: int = 0
    #: requests that arrived before SIGTERM and completed during drain
    drained_in_flight: int = 0

    def summary(self) -> str:
        return (
            f"requests={self.requests} admitted={self.admitted} "
            f"rejected={self.rejected} queue_full={self.queue_full} "
            f"deadline_exceeded={self.deadline_exceeded} "
            f"bad={self.bad_requests} not_found={self.not_found} "
            f"drained_in_flight={self.drained_in_flight}"
        )


class _ConnState:
    """One client connection's lifecycle flags for the drain logic."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False


class HttpCapacityServer:
    """The admission gateway behind an HTTP/1.1 boundary."""

    def __init__(
        self,
        gateway: AdmitGateway,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 256,
        concurrency: int = 32,
        deadline: float = 0.5,
        drain_grace: float = 5.0,
        max_body: int = 65536,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.gateway = gateway
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.concurrency = concurrency
        self.deadline = deadline
        self.drain_grace = drain_grace
        self.max_body = max_body
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._waiting = 0
        self._draining = False
        self._connections: Set[_ConnState] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (port 0 picks a free port)."""
        # the Semaphore binds to the running loop: create it here, not
        # in __init__, so the server object can be built anywhere
        self._slots = asyncio.Semaphore(self.concurrency)
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = int(sockets[0].getsockname()[1])

    @property
    def busy_count(self) -> int:
        """Connections currently serving a request (drain-test probe)."""
        return sum(1 for state in self._connections if state.busy)

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, then close.

        Stops accepting, closes *idle* keep-alive connections (their
        parked reads wake with EOF), waits up to ``drain_grace`` for
        busy connections to flush their responses, then force-closes
        whatever is left.
        """
        self._draining = True
        if self._server is not None:
            # close() alone stops accepting; wait_closed() is skipped
            # deliberately — since 3.12 it also waits for connection
            # handlers, which drain() is about to manage itself
            self._server.close()
        for state in list(self._connections):
            if not state.busy:
                state.writer.close()
        limit = time.perf_counter() + self.drain_grace
        while (
            any(state.busy for state in self._connections)
            and time.perf_counter() < limit
        ):
            await asyncio.sleep(0.005)
        for state in list(self._connections):
            state.writer.close()
        while self._connections and time.perf_counter() < limit + 1.0:
            await asyncio.sleep(0.005)

    # ------------------------------------------------------------------
    # connection loop
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        state = _ConnState(writer)
        self._connections.add(state)
        self.stats.connections += 1
        try:
            while not self._draining:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, 431, {"error": "headers too large"}, True
                    )
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    OSError,
                ):
                    break
                # no await between readuntil returning and the busy
                # flag: drain() can never close a connection that has
                # already received a request head
                state.busy = True
                try:
                    keep = await self._serve_one(head, reader, writer)
                finally:
                    state.busy = False
                if self._draining:
                    self.stats.drained_in_flight += 1
                    break
                if not keep:
                    break
        finally:
            self._connections.discard(state)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _serve_one(
        self,
        head: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Parse, route and answer one request; False closes the conn."""
        t0 = time.perf_counter()
        deadline_at = t0 + self.deadline
        self.stats.requests += 1
        parsed = self._parse_head(head)
        if parsed is None:
            self.stats.bad_requests += 1
            return await self._respond(
                writer, 400, {"error": "malformed request"}, True
            )
        method, path, headers = parsed
        route = f"{method} {path}"
        try:
            status, payload = await self._route(
                method, path, headers, reader, deadline_at
            )
        except asyncio.TimeoutError:
            self.stats.deadline_exceeded += 1
            if OBS.enabled:
                OBS.inc(
                    "repro_http_deadline_exceeded_total",
                    help="requests that overran the per-request deadline",
                    route=route,
                )
            status, payload = 504, {"error": "deadline_exceeded"}
        except UnknownSiteError as exc:
            self.stats.not_found += 1
            status, payload = 404, {"error": f"unknown site {exc.args[0]!r}"}
        except asyncio.IncompleteReadError:
            self.stats.bad_requests += 1
            return False  # client went away mid-body; nothing to answer
        if OBS.enabled:
            OBS.observe(
                "repro_http_request_seconds",
                time.perf_counter() - t0,
                help="HTTP request service time, by route and status",
                buckets=TAIL_LATENCY_BUCKETS,
                route=route,
                status=str(status),
            )
        # close on any non-2xx too: error paths may leave an unread
        # body in the buffer, which would desync keep-alive framing
        close = (
            self._draining
            or status >= 400
            or headers.get("connection") == "close"
        )
        return await self._respond(writer, status, payload, close)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        reader: asyncio.StreamReader,
        deadline_at: float,
    ) -> Tuple[int, Any]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            health = self.gateway.health()
            status = 200 if health.get("status") == "ok" else 503
            return status, health
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, OBS.exposition()
        if path in ("/admit", "/decide"):
            if method != "POST":
                return 405, {"error": "use POST"}
            body = await self._read_body(headers, reader, deadline_at)
            if body is None:
                self.stats.bad_requests += 1
                return 413, {"error": "body too large"}
            try:
                doc = json.loads(body.decode("utf-8") or "{}")
                site = doc["site"]
                if not isinstance(site, str):
                    raise TypeError("site must be a string")
            except (ValueError, KeyError, TypeError) as exc:
                self.stats.bad_requests += 1
                return 400, {"error": f"bad request body: {exc}"}
            if path == "/decide":
                return 200, self.gateway.decide(site)
            request_class = doc.get("class", "browse")
            if not isinstance(request_class, str):
                self.stats.bad_requests += 1
                return 400, {"error": "class must be a string"}
            return await self._admit(site, request_class, deadline_at)
        self.stats.not_found += 1
        return 404, {"error": f"no route {path}"}

    async def _admit(
        self, site: str, request_class: str, deadline_at: float
    ) -> Tuple[int, Any]:
        """The SLO'd path: bounded queue, deadline, one gateway draw."""
        assert self._slots is not None, "server not started"
        if self._waiting >= self.queue_limit:
            self.stats.queue_full += 1
            if OBS.enabled:
                OBS.inc(
                    "repro_http_queue_full_total",
                    help="admit requests shed because the wait queue "
                    "was at queue_limit",
                )
            return 503, {"error": "queue_full"}
        self._waiting += 1
        try:
            remaining = deadline_at - time.perf_counter()
            if remaining <= 0:
                raise asyncio.TimeoutError
            await asyncio.wait_for(self._slots.acquire(), remaining)
        finally:
            self._waiting -= 1
        try:
            result = self.gateway.admit(site, request_class)
        finally:
            self._slots.release()
        if result.admitted:
            self.stats.admitted += 1
        else:
            self.stats.rejected += 1
        return 200, {
            "site": result.site,
            "admitted": result.admitted,
            "admission_probability": result.admission_probability,
            "class": result.request_class,
            "degraded": result.degraded,
            "held": result.held,
            "window_index": result.window_index,
            "snapshot_seq": result.snapshot_seq,
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_head(
        head: bytes,
    ) -> Optional[Tuple[str, str, Dict[str, str]]]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            return None
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return None
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()
        return parts[0], parts[1], headers

    async def _read_body(
        self,
        headers: Dict[str, str],
        reader: asyncio.StreamReader,
        deadline_at: float,
    ) -> Optional[bytes]:
        """Deadline-bounded body read; None flags an oversized body."""
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > self.max_body:
            return None
        if length == 0:
            return b""
        remaining = deadline_at - time.perf_counter()
        if remaining <= 0:
            raise asyncio.TimeoutError
        return await asyncio.wait_for(
            reader.readexactly(length), remaining
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        close: bool,
    ) -> bool:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, OSError):
            return False
        return not close

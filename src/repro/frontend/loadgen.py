"""Seeded open-loop load driver for the HTTP admission front end.

Open loop means arrivals are scheduled in advance from the seed
(Poisson or constant inter-arrivals at the target RPS) and fired at
their scheduled instants regardless of how fast earlier responses come
back — the only arrival process that measures a server honestly under
load.  Latency is measured from each request's *scheduled* start, not
from when the driver got around to writing it, so queueing delay the
server causes is charged to the server (no coordinated omission).

Everything that shapes traffic is derived from ``numpy``'s seeded
generator: same seed → byte-identical schedule
(:func:`schedule_digest` pins this in tests) and an identical
``BENCH_http.json`` modulo measured timings.  The traffic shape is
TPC-W: interactions are drawn from a
:class:`~repro.workload.tpcw.TrafficMix` (``tpcw`` selects the
benchmark's canonical WIPS shopping mix), and each request carries its
interaction name and Browse/Order class to ``POST /admit``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..workload.tpcw import STANDARD_MIXES, TrafficMix

__all__ = [
    "PlannedRequest",
    "build_schedule",
    "percentiles",
    "resolve_loadgen_mix",
    "run_load",
    "schedule_digest",
]


def resolve_loadgen_mix(name: str) -> TrafficMix:
    """A driver mix by name; ``tpcw`` is the canonical shopping mix."""
    if name == "tpcw":
        return STANDARD_MIXES["shopping"]
    try:
        return STANDARD_MIXES[name]
    except KeyError:
        raise ValueError(
            f"unknown mix {name!r}; pick one of "
            f"{['tpcw', *STANDARD_MIXES]}"
        ) from None


@dataclass(frozen=True)
class PlannedRequest:
    """One scheduled arrival: when, which site, which interaction."""

    index: int
    at: float  # seconds after the run's start instant
    site: str
    interaction: str
    request_class: str

    def line(self) -> str:
        """Canonical text form (digest + determinism tests)."""
        return (
            f"{self.index}\t{self.at:.9f}\t{self.site}"
            f"\t{self.interaction}\t{self.request_class}"
        )


def build_schedule(
    *,
    rps: float,
    duration: float,
    mix: TrafficMix,
    sites: List[str],
    seed: int,
    arrivals: str = "poisson",
) -> List[PlannedRequest]:
    """The full request schedule, deterministically from the seed."""
    if rps <= 0:
        raise ValueError("rps must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not sites:
        raise ValueError("need at least one site")
    if arrivals not in ("poisson", "constant"):
        raise ValueError("arrivals must be 'poisson' or 'constant'")
    rng = np.random.default_rng(seed)
    if arrivals == "poisson":
        # draw a safety margin of exponential gaps, keep those landing
        # inside the window: one cumsum, no python-loop accumulation
        expected = int(rps * duration)
        margin = expected + max(64, int(4 * np.sqrt(expected + 1)))
        gaps = rng.exponential(1.0 / rps, size=margin)
        times = np.cumsum(gaps)
        while times.size and times[-1] < duration:
            gaps = rng.exponential(1.0 / rps, size=margin)
            times = np.concatenate([times, times[-1] + np.cumsum(gaps)])
        times = times[times < duration]
    else:
        times = np.arange(0.0, duration, 1.0 / rps)
    site_idx = rng.integers(0, len(sites), size=times.size)
    schedule: List[PlannedRequest] = []
    for i in range(times.size):
        request = mix.sample(rng)
        schedule.append(
            PlannedRequest(
                index=i,
                at=float(times[i]),
                site=sites[int(site_idx[i])],
                interaction=request.name,
                request_class=request.category,
            )
        )
    return schedule


def schedule_digest(schedule: List[PlannedRequest]) -> str:
    """SHA-256 over the canonical schedule lines."""
    digest = hashlib.sha256()
    for planned in schedule:
        digest.update(planned.line().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def percentiles(samples: List[float]) -> Dict[str, float]:
    """p50/p99/p99.9/mean/max of a latency sample, in milliseconds."""
    if not samples:
        return {
            "p50": 0.0, "p99": 0.0, "p999": 0.0, "mean": 0.0, "max": 0.0
        }
    array = np.asarray(samples, dtype=float) * 1000.0
    return {
        "p50": float(np.percentile(array, 50)),
        "p99": float(np.percentile(array, 99)),
        "p999": float(np.percentile(array, 99.9)),
        "mean": float(array.mean()),
        "max": float(array.max()),
    }


class _Client:
    """A tiny keep-alive HTTP/1.1 client pool over raw asyncio streams.

    ``request`` checks a connection out of the pool, reconnecting on
    any transport error (the retry still counts the original scheduled
    start, so reconnect cost is charged to the measurement like any
    other server-induced delay).
    """

    def __init__(self, host: str, port: int, size: int) -> None:
        self.host = host
        self.port = port
        self._pool: "asyncio.Queue[Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]]" = (
            asyncio.Queue()
        )
        for _ in range(size):
            self._pool.put_nowait(None)  # lazily connected slots

    async def _connect(
        self,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port)

    async def request(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes]:
        """One round trip; returns (status, response body)."""
        conn = await self._pool.get()
        try:
            if conn is None:
                conn = await self._connect()
            reader, writer = conn
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"\r\n"
            ).encode("latin-1")
            try:
                writer.write(head + body)
                await writer.drain()
                status, payload, keep = await self._read_response(reader)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
                OSError,
            ):
                # stale keep-alive connection: reconnect once and retry
                writer.close()
                conn = await self._connect()
                reader, writer = conn
                writer.write(head + body)
                await writer.drain()
                status, payload, keep = await self._read_response(reader)
            if not keep:
                writer.close()
                conn = None
            return status, payload
        except BaseException:
            if conn is not None:
                conn[1].close()
            conn = None
            raise
        finally:
            self._pool.put_nowait(conn)

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> Tuple[int, bytes, bool]:
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        length = 0
        keep = True
        for line in lines[1:]:
            name, _, value = line.partition(":")
            lowered = name.strip().lower()
            if lowered == "content-length":
                length = int(value.strip())
            elif lowered == "connection":
                keep = value.strip().lower() != "close"
        payload = await reader.readexactly(length) if length else b""
        return status, payload, keep

    async def close(self) -> None:
        while not self._pool.empty():
            conn = self._pool.get_nowait()
            if conn is not None:
                conn[1].close()


async def _fire(
    client: _Client,
    planned: PlannedRequest,
    t0: float,
    timeout: float,
    out: Dict[str, Any],
) -> None:
    """Fire one scheduled request and record its outcome."""
    target = t0 + planned.at
    delay = target - time.perf_counter()
    if delay > 0:
        await asyncio.sleep(delay)
    body = json.dumps(
        {
            "site": planned.site,
            "class": planned.request_class,
            "interaction": planned.interaction,
        }
    ).encode("utf-8")
    try:
        status, payload = await asyncio.wait_for(
            client.request("POST", "/admit", body), timeout
        )
    except asyncio.TimeoutError:
        out["timeouts"] += 1
        return
    except OSError:
        out["errors"] += 1
        return
    # latency from the *scheduled* instant: queueing the server caused
    # is the server's, whether it queued in its socket or its semaphore
    out["latencies"].append(time.perf_counter() - target)
    if status == 200:
        doc = json.loads(payload.decode("utf-8"))
        if doc.get("admitted"):
            out["admitted"] += 1
        else:
            out["rejected"] += 1
    else:
        out["errors"] += 1
        if status >= 500:
            out["status_5xx"] += 1


async def _run_async(
    schedule: List[PlannedRequest],
    host: str,
    port: int,
    *,
    timeout: float,
    connections: int,
) -> Dict[str, Any]:
    client = _Client(host, port, connections)
    out: Dict[str, Any] = {
        "admitted": 0,
        "rejected": 0,
        "errors": 0,
        "timeouts": 0,
        "status_5xx": 0,
        "latencies": [],
    }
    t0 = time.perf_counter()
    tasks = [
        asyncio.ensure_future(_fire(client, planned, t0, timeout, out))
        for planned in schedule
    ]
    try:
        await asyncio.gather(*tasks)
    finally:
        await client.close()
    out["wall_s"] = time.perf_counter() - t0
    return out


def run_load(
    *,
    host: str,
    port: int,
    rps: float,
    duration: float,
    mix_name: str,
    sites: List[str],
    seed: int,
    arrivals: str = "poisson",
    timeout: float = 2.0,
    connections: int = 16,
) -> Dict[str, Any]:
    """Drive the server open-loop and return the BENCH_http report."""
    mix = resolve_loadgen_mix(mix_name)
    schedule = build_schedule(
        rps=rps,
        duration=duration,
        mix=mix,
        sites=sites,
        seed=seed,
        arrivals=arrivals,
    )
    raw = asyncio.run(
        _run_async(
            schedule, host, port, timeout=timeout, connections=connections
        )
    )
    completed = raw["admitted"] + raw["rejected"]
    wall = float(raw["wall_s"]) or 1e-9
    return {
        "target": f"{host}:{port}",
        "rps": rps,
        "duration_s": duration,
        "arrivals": arrivals,
        "mix": mix_name,
        "sites": list(sites),
        "seed": seed,
        "connections": connections,
        "timeout_s": timeout,
        "schedule_sha256": schedule_digest(schedule),
        "requests": len(schedule),
        "admitted": raw["admitted"],
        "rejected": raw["rejected"],
        "errors": raw["errors"],
        "timeouts": raw["timeouts"],
        "status_5xx": raw["status_5xx"],
        "admit_latency_ms": percentiles(raw["latencies"]),
        "achieved_rps": completed / wall,
        "wall_s": wall,
        "cpu_count": os.cpu_count(),
    }

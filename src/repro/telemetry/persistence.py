"""Measurement-run persistence.

A :class:`~repro.telemetry.sampler.MeasurementRun` is the complete
record of one testbed execution — per-interval client statistics,
per-tier physical samples and both metric vectors.  Saving runs lets
the CLI (and downstream users) separate the expensive simulation step
from training and analysis, and archive the exact data behind a result.

Format: JSON, transparently gzip-compressed when the path ends in
``.gz``.  Every dataclass field is stored explicitly, so files remain
readable by standard tooling.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

from ..simulator.network import LinkSample
from ..simulator.server import TierSample
from ..simulator.website import ClientSample, WebsiteSample
from .sampler import IntervalRecord, MeasurementRun

__all__ = ["run_to_dict", "run_from_dict", "save_run", "load_run"]

_FORMAT = "repro.measurement-run/1"


def _write_text(path: Path, text: str) -> None:
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(text)
    else:
        path.write_text(text)


def _read_text(path: Path) -> str:
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            return fh.read()
    return path.read_text()


def run_to_dict(run: MeasurementRun) -> dict:
    """JSON-serializable payload of a measurement run.

    The dict round-trips losslessly through :func:`run_from_dict`
    (``json`` preserves float values exactly), which is what lets the
    parallel engine ship runs between worker processes and the artifact
    cache store them on disk without perturbing downstream results.
    """
    return {
        "format": _FORMAT,
        "workload": run.workload,
        "interval": run.interval,
        "records": [
            {
                "client": asdict(record.website.client),
                "tiers": {
                    name: asdict(sample)
                    for name, sample in record.website.tiers.items()
                },
                "links": {
                    name: asdict(sample)
                    for name, sample in record.website.links.items()
                },
                "hpc": record.hpc,
                "os": record.os,
            }
            for record in run.records
        ],
    }


def save_run(run: MeasurementRun, path: Union[str, Path]) -> None:
    """Serialize a measurement run (gzip when the path ends in .gz).

    The write is retried with bounded backoff — run archival is the
    expensive artifact; losing it to a transient filesystem error means
    re-simulating.
    """
    # local import: repro.faults imports this package at module level
    from ..faults.retry import retry_io

    text = json.dumps(run_to_dict(run))
    retry_io(lambda: _write_text(Path(path), text))


def run_from_dict(payload: dict) -> MeasurementRun:
    """Rebuild a measurement run from a :func:`run_to_dict` payload."""
    if payload.get("format") != _FORMAT:
        raise ValueError("payload is not a serialized measurement run")
    run = MeasurementRun(
        workload=str(payload["workload"]),
        interval=float(payload["interval"]),
    )
    for item in payload["records"]:
        website = WebsiteSample(
            client=ClientSample(**item["client"]),
            tiers={
                name: TierSample(**fields)
                for name, fields in item["tiers"].items()
            },
            links={
                name: LinkSample(**fields)
                for name, fields in item["links"].items()
            },
        )
        run.records.append(
            IntervalRecord(
                website=website,
                hpc={
                    tier: dict(metrics)
                    for tier, metrics in item["hpc"].items()
                },
                os={
                    tier: dict(metrics) for tier, metrics in item["os"].items()
                },
            )
        )
    return run


def load_run(path: Union[str, Path]) -> MeasurementRun:
    """Restore a run saved with :func:`save_run`.

    Reads are retried on transient I/O errors; a well-formed read of a
    non-run payload still fails immediately.
    """
    from ..faults.retry import retry_io

    text = retry_io(lambda: _read_text(Path(path)))
    try:
        return run_from_dict(json.loads(text))
    except ValueError:
        raise ValueError(f"{path} is not a saved measurement run") from None

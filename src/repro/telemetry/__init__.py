"""Telemetry: metric synthesis, sampling, datasets, collection cost.

Replaces the paper's PerfCtr kernel patch and Sysstat deployment:
hardware-counter synthesis (:mod:`~repro.telemetry.hpc`), the 64
OS-level metrics (:mod:`~repro.telemetry.osmetrics`), 1 s sampling with
30 s window aggregation (:mod:`~repro.telemetry.sampler`), streaming
O(window) aggregation (:mod:`~repro.telemetry.streaming`), labelled
dataset containers (:mod:`~repro.telemetry.dataset`) and collection
overhead models (:mod:`~repro.telemetry.perfctr`).
"""

from .dataset import Dataset, Instance
from .hpc import HPC_METRIC_NAMES, HpcModel
from .osmetrics import OS_METRIC_NAMES, OsMetricsModel
from .persistence import load_run, save_run
from .perfctr import (
    PERFCTR_PROFILE,
    SYSSTAT_PROFILE,
    CollectorProfile,
    MetricsCollector,
)
from .sampler import (
    HPC_LEVEL,
    HYBRID_LEVEL,
    OS_LEVEL,
    IntervalRecord,
    MeasurementRun,
    TelemetryError,
    TelemetrySampler,
    WindowStats,
    aggregate_window,
    build_dataset,
    metric_matrix,
    metric_row,
)
from .streaming import (
    RunningCorrelation,
    StreamingWindow,
    StreamingWindowAggregator,
    WindowQuality,
)

__all__ = [
    "CollectorProfile",
    "Dataset",
    "HPC_LEVEL",
    "HPC_METRIC_NAMES",
    "HYBRID_LEVEL",
    "HpcModel",
    "Instance",
    "IntervalRecord",
    "MeasurementRun",
    "MetricsCollector",
    "OS_LEVEL",
    "OS_METRIC_NAMES",
    "OsMetricsModel",
    "PERFCTR_PROFILE",
    "RunningCorrelation",
    "SYSSTAT_PROFILE",
    "StreamingWindow",
    "StreamingWindowAggregator",
    "TelemetryError",
    "TelemetrySampler",
    "WindowQuality",
    "WindowStats",
    "aggregate_window",
    "build_dataset",
    "load_run",
    "metric_matrix",
    "metric_row",
    "save_run",
]

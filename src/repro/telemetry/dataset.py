"""Training/testing instance containers.

The paper's Section II defines an instance ``u*`` as an assignment of
measured values to attribute variables ``{A1..An}`` plus a binary class
variable ``C`` (overload=1 / underload=0), built by averaging 1 s
runtime statistics over a 30 s sampling window.  A :class:`Dataset` is
an ordered collection of such instances with a consistent attribute
schema, convertible to numpy matrices for the learners.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

__all__ = ["Instance", "Dataset"]

UNDERLOAD = 0
OVERLOAD = 1


@dataclass(frozen=True)
class Instance:
    """One labelled measurement window.

    ``attributes`` maps metric names to their window-averaged values;
    ``label`` is the class variable C; ``bottleneck`` (when overloaded)
    names the ground-truth bottleneck tier for training the BPT.
    """

    attributes: Mapping[str, float]
    label: int
    t_start: float = 0.0
    t_end: float = 0.0
    tier: str = ""
    workload: str = ""
    bottleneck: Optional[str] = None

    def __post_init__(self) -> None:
        if self.label not in (UNDERLOAD, OVERLOAD):
            raise ValueError("label must be 0 (underload) or 1 (overload)")

    def vector(self, names: Sequence[str]) -> np.ndarray:
        """Attribute values in the order given by ``names``."""
        try:
            return np.array([self.attributes[n] for n in names], dtype=float)
        except KeyError as exc:
            raise KeyError(f"instance missing attribute {exc}") from exc


class Dataset:
    """An ordered set of instances sharing an attribute schema."""

    def __init__(
        self,
        instances: Iterable[Instance] = (),
        attribute_names: Optional[Sequence[str]] = None,
    ):
        self.instances: List[Instance] = list(instances)
        if attribute_names is not None:
            self.attribute_names: List[str] = list(attribute_names)
        elif self.instances:
            self.attribute_names = sorted(self.instances[0].attributes)
        else:
            self.attribute_names = []
        for inst in self.instances:
            missing = set(self.attribute_names) - set(inst.attributes)
            if missing:
                raise ValueError(f"instance missing attributes {sorted(missing)}")
        #: memoized matrix()/labels() results, invalidated by append()
        self._matrix_cache: Dict[Tuple[str, ...], np.ndarray] = {}
        self._labels_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self.instances)

    def __getitem__(self, idx: int) -> Instance:
        return self.instances[idx]

    def append(self, instance: Instance) -> None:
        missing = set(self.attribute_names) - set(instance.attributes)
        if missing:
            raise ValueError(f"instance missing attributes {sorted(missing)}")
        self.instances.append(instance)
        self._matrix_cache.clear()
        self._labels_cache = None

    # ------------------------------------------------------------------
    def matrix(self, names: Optional[Sequence[str]] = None) -> np.ndarray:
        """(n_instances, n_attributes) float matrix.

        Results are memoized per attribute tuple — synopsis training
        and batch prediction ask for the same projections repeatedly —
        and returned read-only so cache sharing stays safe.
        """
        names = tuple(names) if names is not None else tuple(self.attribute_names)
        cached = self._matrix_cache.get(names)
        if cached is None:
            if not self.instances:
                cached = np.empty((0, len(names)))
            else:
                cached = np.array(
                    [
                        [inst.attributes[n] for n in names]
                        for inst in self.instances
                    ],
                    dtype=float,
                )
            cached.flags.writeable = False
            self._matrix_cache[names] = cached
        return cached

    def labels(self) -> np.ndarray:
        if self._labels_cache is None:
            labels = np.array(
                [inst.label for inst in self.instances], dtype=int
            )
            labels.flags.writeable = False
            self._labels_cache = labels
        return self._labels_cache

    def class_counts(self) -> Tuple[int, int]:
        """(n_underload, n_overload)."""
        labels = self.labels()
        return int((labels == UNDERLOAD).sum()), int((labels == OVERLOAD).sum())

    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[Instance], bool]) -> "Dataset":
        """New dataset with the instances satisfying ``predicate``."""
        return Dataset(
            [i for i in self.instances if predicate(i)], self.attribute_names
        )

    def select_attributes(self, names: Sequence[str]) -> "Dataset":
        """New dataset restricted to the given attribute subset."""
        unknown = set(names) - set(self.attribute_names)
        if unknown:
            raise KeyError(f"unknown attributes {sorted(unknown)}")
        return Dataset(
            [
                Instance(
                    attributes={n: i.attributes[n] for n in names},
                    label=i.label,
                    t_start=i.t_start,
                    t_end=i.t_end,
                    tier=i.tier,
                    workload=i.workload,
                    bottleneck=i.bottleneck,
                )
                for i in self.instances
            ],
            names,
        )

    def merged_with(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets with identical schemas."""
        if set(self.attribute_names) != set(other.attribute_names):
            raise ValueError("cannot merge datasets with different schemas")
        return Dataset(
            self.instances + other.instances, self.attribute_names
        )

    def shuffled(self, seed: int = 0) -> "Dataset":
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.instances))
        return Dataset(
            [self.instances[i] for i in order], self.attribute_names
        )

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Serialize to JSON (schema + instances)."""
        payload = {
            "attribute_names": self.attribute_names,
            "instances": [
                {
                    "attributes": dict(i.attributes),
                    "label": i.label,
                    "t_start": i.t_start,
                    "t_end": i.t_end,
                    "tier": i.tier,
                    "workload": i.workload,
                    "bottleneck": i.bottleneck,
                }
                for i in self.instances
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Dataset":
        payload = json.loads(Path(path).read_text())
        return cls(
            [Instance(**item) for item in payload["instances"]],
            payload["attribute_names"],
        )

"""Synthetic OS-level metrics (sysstat vocabulary).

The paper collects 64 OS-level metrics per tier with Sysstat 7.0.3 for
its comparison baseline.  This model emits the same-sized vector from
the simulator's physical state.

The deliberate *observability gap* relative to the hardware counters —
the reason OS metrics under-perform for the browsing mix in Table I —
is mechanical, not cosmetic:

* OS CPU utilization **clips at 100%** well before true overload of a
  tier that saturates on few heavy requests, so it cannot separate
  "busy but keeping up" from "overloaded";
* the OS **run queue sees only runnable threads**: queries queued
  inside MySQL on the connection pool are invisible, so ``runq_sz``
  pins at the connection count at saturation;
* buffer-pool churn is served from the OS page cache (the TPC-W
  dataset fits in RAM), so there is **no disk-I/O or page-fault
  signature** of database overload — the memory traffic shows up only
  in bus/L2 hardware events;
* **gauges snapshot, counters integrate**: sar reads instantaneous
  queue-length gauges (``runq-sz``, load averages, socket counts) once
  per second, and queue lengths near saturation are extremely bursty,
  so these gauges carry heavy sampling noise (``gauge_noise``) — unlike
  hardware event counts, which are exact integrals over the interval.
  Crucially the burst noise is *correlated in time* (a queue excursion
  persists for many seconds), modelled as an AR(1) process with a ~20 s
  correlation time, so averaging 30 snapshots into a window barely
  reduces it.  Distinguishing a run queue hovering at 22 from one
  pinned at the 24-connection cap through such snapshots is hopeless,
  which is why the MySQL-side OS metrics stay uninformative even where
  a clean time-average would separate the states.  CPU percentages get
  the same treatment at a smaller scale: jiffy accounting drifts
  systematically within a load phase, so near-saturation idle readings
  (2% vs 0.5%) blur together.

What the OS *does* see — run-queue growth and context-switch storms on
the app tier under ordering traffic — keeps its accuracy competitive
there, matching Table I(b).

OS metrics also carry more measurement noise than the hardware
counters (sysstat derives rates from /proc snapshots), and their
collection is far more intrusive (see
:data:`~repro.telemetry.perfctr.SYSSTAT_PROFILE`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..simulator.server import HardwareSpec, TierSample

__all__ = ["OsMetricsModel", "OS_METRIC_NAMES"]

#: The 64 sysstat-style metrics reported per tier per interval.
OS_METRIC_NAMES: List[str] = [
    # CPU
    "cpu_user", "cpu_nice", "cpu_system", "cpu_iowait", "cpu_idle",
    # tasks / scheduler
    "proc_per_s", "cswch_per_s", "runq_sz", "plist_sz",
    "ldavg_1", "ldavg_5", "ldavg_15",
    # memory
    "kbmemfree", "kbmemused", "pct_memused", "kbbuffers", "kbcached",
    "kbswpfree", "kbswpused", "pct_swpused", "kbswpcad",
    "frmpg_per_s", "bufpg_per_s", "campg_per_s",
    # paging
    "pgpgin_per_s", "pgpgout_per_s", "fault_per_s", "majflt_per_s",
    "pswpin_per_s", "pswpout_per_s",
    # block I/O
    "tps", "rtps", "wtps", "bread_per_s", "bwrtn_per_s",
    # network interface
    "rxpck_per_s", "txpck_per_s", "rxbyt_per_s", "txbyt_per_s",
    "rxcmp_per_s", "txcmp_per_s", "rxmcst_per_s",
    "rxerr_per_s", "txerr_per_s", "coll_per_s", "rxdrop_per_s",
    "txdrop_per_s",
    # sockets
    "totsck", "tcpsck", "udpsck", "rawsck", "ip_frag", "tcp_tw",
    # kernel tables
    "dentunusd", "file_nr", "inode_nr", "pty_nr",
    # interrupts & TCP
    "intr_per_s", "tcp_active_per_s", "tcp_passive_per_s",
    "tcp_iseg_per_s", "tcp_oseg_per_s", "tcp_retrans_per_s",
    # memory commit
    "mem_commit_pct",
]


class OsMetricsModel:
    """Maps a :class:`TierSample` (+ NIC rates) to 64 sysstat metrics.

    The model is stateful: load averages are exponential moving
    averages of the run queue, as the kernel computes them.
    """

    def __init__(
        self,
        spec: HardwareSpec,
        *,
        role: str = "app",
        noise: float = 0.05,
        gauge_noise: Optional[float] = None,
        seed: int = 0,
    ):
        if role not in ("app", "db"):
            raise ValueError("role must be 'app' or 'db'")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.spec = spec
        self.role = role
        self.noise = noise
        #: sampling noise of instantaneous gauges (run queue, load
        #: averages, socket counts): 1 Hz snapshots of bursty queue
        #: state, an order of magnitude noisier than rate counters
        self.gauge_noise = 7.0 * noise if gauge_noise is None else gauge_noise
        if self.gauge_noise < 0:
            raise ValueError("gauge noise must be non-negative")
        self._rng = np.random.default_rng(seed)
        self._ldavg = {"1": 0.0, "5": 0.0, "15": 0.0}
        # user/system split of busy time per role
        self._user_share = 0.82 if role == "app" else 0.72
        #: AR(1) states of the correlated noise processes, keyed by the
        #: gauge they perturb
        self._ar1: Dict[str, float] = {}
        #: correlation time (seconds) of queue-burst excursions
        self.burst_correlation_s = 20.0

    # ------------------------------------------------------------------
    def _noisy(self, value: float, floor_jitter: float = 0.0) -> float:
        out = value
        if self.noise > 0 and value != 0.0:
            out = value * float(self._rng.lognormal(0.0, self.noise))
        if floor_jitter > 0:
            out += float(self._rng.uniform(0.0, floor_jitter))
        return out

    def _ar1_step(self, name: str, sigma: float, dt: float) -> float:
        """Advance a unit-variance OU process scaled by ``sigma``."""
        rho = float(np.exp(-dt / self.burst_correlation_s))
        prev = self._ar1.get(name, 0.0)
        state = rho * prev + float(
            np.sqrt(max(0.0, 1.0 - rho * rho)) * self._rng.normal()
        )
        self._ar1[name] = state
        return sigma * state

    def _gauge(self, name: str, value: float, dt: float = 1.0) -> float:
        """One snapshot of a bursty instantaneous gauge.

        The multiplicative log-noise follows an AR(1) process: queue
        excursions persist across samples, so a 30-sample window
        average retains most of the burst variance.
        """
        if self.gauge_noise <= 0 or value == 0.0:
            return value
        return value * float(np.exp(self._ar1_step(name, self.gauge_noise, dt)))

    def _cpu_pct(self, name: str, value: float, dt: float = 1.0) -> float:
        """CPU percentage with correlated jiffy-accounting drift.

        /proc/stat counts in 10 ms jiffies charged to whole categories
        and mischarges drift systematically within a load phase, so the
        difference between 99.5% and 98% busy stays below the noise
        floor even after window averaging — precisely the regime where
        a tier is saturated but still meeting its SLA.
        """
        if self.noise <= 0:
            return value
        drift = self._ar1_step(f"cpu:{name}", 16.0 * self.noise, dt)
        return min(100.0, max(0.0, self._noisy(value) + drift))

    def _update_ldavg(self, runq: float, dt: float) -> None:
        for key, minutes in (("1", 1.0), ("5", 5.0), ("15", 15.0)):
            alpha = 1.0 - float(np.exp(-dt / (60.0 * minutes)))
            self._ldavg[key] += alpha * (runq - self._ldavg[key])

    # ------------------------------------------------------------------
    def observe(
        self,
        sample: TierSample,
        *,
        rx_bytes_per_s: float = 0.0,
        tx_bytes_per_s: float = 0.0,
        rx_pck_per_s: float = 0.0,
        tx_pck_per_s: float = 0.0,
    ) -> Dict[str, float]:
        """The 64-metric vector for one interval."""
        duration = max(sample.duration, 1e-9)
        cores = self.spec.cores
        thr = sample.throughput

        # ---- CPU accounting: clips at 100%, the key observability gap
        busy = min(1.0, sample.utilization)
        monitor = min(0.5, sample.background_work / (duration * cores))
        user = busy * self._user_share
        system = busy * (1.0 - self._user_share) + monitor
        iowait = 0.004
        idle = max(0.0, 1.0 - user - system - iowait)

        # ---- scheduler: runnable threads only (internal queues unseen),
        # observed through one bursty snapshot per interval
        runq = self._gauge("runq", sample.runnable_avg, duration)
        self._update_ldavg(runq, duration)
        # Tomcat's CPU-bound servlet threads timeslice heavily once they
        # outnumber the cores; MySQL threads mostly block on condition
        # variables, so preemption barely scales with its run queue.
        preempt = 250.0 if self.role == "app" else 25.0
        cswch = 80.0 + thr * 10.0 + max(0.0, runq - cores) * preempt
        # Tomcat/MySQL keep pre-allocated thread/connection pools: the
        # process list shows the pool, not the in-flight request count
        # (a thread blocked on JDBC and an idle pool thread are both
        # just sleeping tasks).
        plist = 92.0 + sample.workers

        # ---- memory: everything fits in RAM; no swap, no major faults.
        # Stacks are pre-allocated with the pools, so usage barely moves
        # with load.
        mem_kb = self.spec.memory_mb * 1024.0
        used_frac = 0.38 + 0.0004 * sample.workers
        kbmemused = mem_kb * min(0.97, used_frac)
        kbcached = mem_kb * (0.30 if self.role == "db" else 0.18)
        fault = 120.0 + thr * 25.0

        # ---- block I/O: log writes only; reads hit the page cache
        wtps = (2.0 if self.role == "app" else 4.0) + thr * (
            0.2 if self.role == "app" else 0.5
        )
        rtps = 0.5
        bwrtn = wtps * 8.0  # sectors

        # ---- sockets: HTTP keep-alive and the fixed JDBC pool keep
        # connection counts nearly load-independent
        tcpsck = 18.0 + sample.workers * (0.4 if self.role == "app" else 1.0)

        intr = 120.0 + rx_pck_per_s + tx_pck_per_s + wtps + rtps

        values: Dict[str, float] = {
            "cpu_user": self._cpu_pct("user", 100.0 * user, duration),
            "cpu_nice": 0.0,
            "cpu_system": self._cpu_pct("system", 100.0 * system, duration),
            "cpu_iowait": self._cpu_pct("iowait", 100.0 * iowait, duration),
            "cpu_idle": self._cpu_pct("idle", 100.0 * idle, duration),
            "proc_per_s": 1.2,
            "cswch_per_s": cswch,
            "runq_sz": runq,
            "plist_sz": plist,
            "ldavg_1": self._ldavg["1"],
            "ldavg_5": self._ldavg["5"],
            "ldavg_15": self._ldavg["15"],
            "kbmemfree": mem_kb - kbmemused,
            "kbmemused": kbmemused,
            "pct_memused": 100.0 * kbmemused / mem_kb,
            "kbbuffers": mem_kb * 0.04,
            "kbcached": kbcached,
            "kbswpfree": 1048576.0,
            "kbswpused": 0.0,
            "pct_swpused": 0.0,
            "kbswpcad": 0.0,
            "frmpg_per_s": 2.0,
            "bufpg_per_s": 0.5,
            "campg_per_s": 1.0,
            "pgpgin_per_s": 4.0,
            "pgpgout_per_s": bwrtn / 2.0,
            "fault_per_s": fault,
            "majflt_per_s": 0.02,
            "pswpin_per_s": 0.0,
            "pswpout_per_s": 0.0,
            "tps": rtps + wtps,
            "rtps": rtps,
            "wtps": wtps,
            "bread_per_s": rtps * 8.0,
            "bwrtn_per_s": bwrtn,
            "rxpck_per_s": rx_pck_per_s,
            "txpck_per_s": tx_pck_per_s,
            "rxbyt_per_s": rx_bytes_per_s,
            "txbyt_per_s": tx_bytes_per_s,
            "rxcmp_per_s": 0.0,
            "txcmp_per_s": 0.0,
            "rxmcst_per_s": 0.1,
            "rxerr_per_s": 0.0,
            "txerr_per_s": 0.0,
            "coll_per_s": 0.0,
            "rxdrop_per_s": 0.0,
            "txdrop_per_s": 0.0,
            "totsck": self._gauge("totsck", tcpsck + 34.0, duration),
            "tcpsck": self._gauge("tcpsck", tcpsck, duration),
            "udpsck": 6.0,
            "rawsck": 0.0,
            "ip_frag": 0.0,
            "tcp_tw": self._gauge("tcp_tw", 4.0 + thr * 1.5, duration),
            "dentunusd": 15_000.0,
            "file_nr": 1_500.0 + sample.workers * 3.0,
            "inode_nr": 22_000.0,
            "pty_nr": 2.0,
            "intr_per_s": intr,
            "tcp_active_per_s": 0.5,
            "tcp_passive_per_s": thr * (1.0 if self.role == "app" else 0.0),
            "tcp_iseg_per_s": rx_pck_per_s,
            "tcp_oseg_per_s": tx_pck_per_s,
            "tcp_retrans_per_s": 0.05,
            "mem_commit_pct": 55.0 + 0.01 * sample.workers,
        }
        return {
            name: self._noisy(value, floor_jitter=0.01)
            for name, value in values.items()
        }

"""Streaming window aggregation with O(window) memory.

The paper's pipeline is *online*: statistics are sampled every second
and folded into 30 s decision windows as the site runs, not replayed
from a stored log.  :class:`StreamingWindowAggregator` reproduces that
posture: each 1 s :class:`~repro.telemetry.sampler.IntervalRecord` is
pushed into the current window incrementally — no re-scan of history,
no unbounded retention — and a completed window emerges as the same
per-tier averaged metric dicts and :class:`~repro.telemetry.sampler.WindowStats`
the offline :func:`~repro.telemetry.sampler.build_dataset` /
:func:`~repro.core.capacity.build_coordinated_instances` pair produces,
bit-for-bit on the same records.

Bit-for-bit equivalence is engineered, not hoped for: the aggregator
buffers the current window's metric rows in a preallocated
``(window, n_attributes)`` ring per tier and reduces it with the same
``mean(axis=0)`` call the batch path applies to the same rows, and the
high-level client/tier statistics accumulate in the same sequential
order :func:`~repro.telemetry.sampler.aggregate_window` sums them in.

:class:`RunningCorrelation` is the Welford-style incremental Pearson
correlation used for online PI tracking (paper Equation 2) — constant
memory, one update per sample, no stored series.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..simulator.website import WebsiteSample
from .sampler import IntervalRecord, WindowStats, metric_row

__all__ = [
    "RunningCorrelation",
    "StreamingWindow",
    "StreamingWindowAggregator",
]


class RunningCorrelation:
    """Incremental Pearson correlation (Welford-style co-moments).

    Tracks running means and centered second moments of two series in
    O(1) memory; :attr:`value` matches the offline
    :func:`~repro.core.pi.correlation` semantics, including its
    constant-series guard: a series whose variation is at rounding-noise
    level relative to its magnitude correlates as 0.
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean_x = 0.0
        self._mean_y = 0.0
        self._m2_x = 0.0
        self._m2_y = 0.0
        self._cov = 0.0
        self._max_abs_x = 0.0
        self._max_abs_y = 0.0

    def update(self, x: float, y: float) -> None:
        """Fold one (x, y) sample into the running moments."""
        self.n += 1
        dx = x - self._mean_x
        self._mean_x += dx / self.n
        self._m2_x += dx * (x - self._mean_x)
        dy = y - self._mean_y
        self._mean_y += dy / self.n
        # co-moment uses the pre-update x delta and post-update y mean
        self._cov += dx * (y - self._mean_y)
        self._m2_y += dy * (y - self._mean_y)
        self._max_abs_x = max(self._max_abs_x, abs(x))
        self._max_abs_y = max(self._max_abs_y, abs(y))

    @property
    def value(self) -> float:
        """Pearson correlation of everything seen so far (0 if < 2)."""
        if self.n < 2:
            return 0.0
        sx = (self._m2_x / self.n) ** 0.5
        sy = (self._m2_y / self.n) ** 0.5
        tol_x = 1e-12 * max(1.0, self._max_abs_x)
        tol_y = 1e-12 * max(1.0, self._max_abs_y)
        if sx <= tol_x or sy <= tol_y:
            return 0.0
        return (self._cov / self.n) / (sx * sy)


@dataclass(frozen=True)
class StreamingWindow:
    """One completed decision window emitted by the aggregator."""

    index: int
    metrics: Dict[str, Dict[str, float]]
    stats: WindowStats


class _TierAccumulator:
    """Per-tier metric-row buffer for the current window."""

    __slots__ = ("names", "ring")

    def __init__(self, names: List[str], window: int):
        self.names = names
        #: current window's metric rows; reduced with the identical
        #: ``mean(axis=0)`` the batch path applies to the same rows
        self.ring = np.empty((window, len(names)), dtype=float)


class StreamingWindowAggregator:
    """Fold 1 s interval records into decision windows incrementally.

    Parameters mirror the batch pipeline: ``level`` picks the metric
    vocabulary, ``tiers`` the per-tier metric dicts to average,
    ``window`` the number of sampling intervals per decision.  State is
    O(window): one ``(window, n_attributes)`` row buffer per tier plus
    scalar accumulators.  ``retain_records`` optionally keeps the last
    N raw records in :attr:`recent` for debugging (0 keeps none).

    ``push`` returns the completed :class:`StreamingWindow` on every
    ``window``-th record, ``None`` otherwise.  Attribute schemas are
    inferred from the first record (sorted, like the batch path) and
    validated on every subsequent tick, so a mid-run schema change
    fails loudly with the offending interval named.
    """

    def __init__(
        self,
        *,
        level: str,
        tiers: Sequence[str],
        window: int = 30,
        attributes: Optional[Dict[str, Sequence[str]]] = None,
        retain_records: int = 0,
    ):
        if window <= 0:
            raise ValueError("window must be a positive number of intervals")
        if not tiers:
            raise ValueError("need at least one tier")
        if retain_records < 0:
            raise ValueError("retain_records must be non-negative")
        self.level = level
        self.tiers = list(tiers)
        self.window = window
        self._explicit_attributes = attributes
        self._acc: Optional[Dict[str, _TierAccumulator]] = None
        self._fill = 0  # rows of the current window already folded
        self.ticks_seen = 0
        self.windows_emitted = 0
        #: bounded raw-record tail for debugging
        self.recent: Deque[IntervalRecord] = deque(maxlen=retain_records)
        # high-level window accumulators (same sequential order as
        # aggregate_window's sums, so the emitted stats are identical);
        # stats cover *all* website tiers, like aggregate_window, even
        # when metrics are collected for a subset
        self._t_start = 0.0
        self._t_end = 0.0
        self._submitted = 0
        self._completed = 0
        self._dropped = 0
        self._response_time_sum = 0.0
        self._util_sum: Dict[str, float] = {}
        self._queue_sum: Dict[str, float] = {}
        self._workers: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _start_accumulators(self, record: IntervalRecord) -> None:
        self._acc = {}
        for tier in self.tiers:
            if self._explicit_attributes is not None:
                names = list(self._explicit_attributes[tier])
            else:
                names = sorted(record.metrics(self.level, tier))
            self._acc[tier] = _TierAccumulator(names, self.window)

    def _reset_window(self, sample: WebsiteSample) -> None:
        self._fill = 0
        self._t_start = sample.t_start
        self._submitted = 0
        self._completed = 0
        self._dropped = 0
        self._response_time_sum = 0.0
        self._util_sum = {tier: 0.0 for tier in sample.tiers}
        self._queue_sum = {tier: 0.0 for tier in sample.tiers}
        self._workers = {
            tier: tier_sample.workers
            for tier, tier_sample in sample.tiers.items()
        }

    # ------------------------------------------------------------------
    def push(self, record: IntervalRecord) -> Optional[StreamingWindow]:
        """Fold one interval record; emit the window when it completes."""
        if self._acc is None:
            self._start_accumulators(record)
        if self._fill == 0:
            self._reset_window(record.website)
        strict = self._explicit_attributes is None
        for tier in self.tiers:
            acc = self._acc[tier]
            acc.ring[self._fill] = metric_row(
                record.metrics(self.level, tier),
                acc.names,
                index=self.ticks_seen,
                level=self.level,
                tier=tier,
                strict=strict,
            )
        for tier, sample in record.website.tiers.items():
            self._util_sum[tier] += sample.utilization
            self._queue_sum[tier] += sample.queue_avg
        client = record.website.client
        self._submitted += client.submitted
        self._completed += client.completed
        self._dropped += client.dropped
        self._response_time_sum += client.response_time_sum
        self._t_end = record.t_end
        self.ticks_seen += 1
        self._fill += 1
        self.recent.append(record)
        if self._fill < self.window:
            return None
        return self._emit()

    def _emit(self) -> StreamingWindow:
        assert self._acc is not None
        metrics: Dict[str, Dict[str, float]] = {}
        for tier in self.tiers:
            acc = self._acc[tier]
            metrics[tier] = {
                name: float(value)
                for name, value in zip(acc.names, acc.ring.mean(axis=0))
            }
        util: Dict[str, float] = {}
        queue: Dict[str, float] = {}
        distress: Dict[str, float] = {}
        for tier in self._util_sum:
            util[tier] = self._util_sum[tier] / self.window
            queue[tier] = self._queue_sum[tier] / self.window
            backlog = queue[tier] / (queue[tier] + self._workers[tier])
            distress[tier] = util[tier] + 0.5 * backlog
        stats = WindowStats(
            t_start=self._t_start,
            t_end=self._t_end,
            submitted=self._submitted,
            completed=self._completed,
            dropped=self._dropped,
            response_time_sum=self._response_time_sum,
            tier_utilization=util,
            tier_queue=queue,
            tier_distress=distress,
        )
        emitted = StreamingWindow(
            index=self.windows_emitted, metrics=metrics, stats=stats
        )
        self.windows_emitted += 1
        self._fill = 0
        return emitted

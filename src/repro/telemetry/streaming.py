"""Streaming window aggregation with O(window) memory.

The paper's pipeline is *online*: statistics are sampled every second
and folded into 30 s decision windows as the site runs, not replayed
from a stored log.  :class:`StreamingWindowAggregator` reproduces that
posture: each 1 s :class:`~repro.telemetry.sampler.IntervalRecord` is
pushed into the current window incrementally — no re-scan of history,
no unbounded retention — and a completed window emerges as the same
per-tier averaged metric dicts and :class:`~repro.telemetry.sampler.WindowStats`
the offline :func:`~repro.telemetry.sampler.build_dataset` /
:func:`~repro.core.capacity.build_coordinated_instances` pair produces,
bit-for-bit on the same records.

Bit-for-bit equivalence is engineered, not hoped for: the aggregator
buffers the current window's metric rows in a preallocated
``(window, n_attributes)`` ring per tier and reduces it with the same
``mean(axis=0)`` call the batch path applies to the same rows, and the
high-level client/tier statistics accumulate in the same sequential
order :func:`~repro.telemetry.sampler.aggregate_window` sums them in.

Real perf-counter streams degrade: collectors stall, counters drop out
of a multiplexed set, intervals arrive late.  In ``lenient`` mode the
aggregator tolerates records whose tier set or attribute schema is
incomplete: every (tick, attribute) cell carries a validity bit, window
averages are taken over the valid cells only, and each emitted window
carries a :class:`WindowQuality` describing exactly what was missing so
downstream synopses can impute or abstain.  A fully-valid window takes
the identical ``mean(axis=0)`` fast path, so a clean stream through a
lenient aggregator is still bit-for-bit equal to the batch pipeline.

:class:`RunningCorrelation` is the Welford-style incremental Pearson
correlation used for online PI tracking (paper Equation 2) — constant
memory, one update per sample, no stored series.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import OBS
from ..simulator.website import WebsiteSample
from .sampler import IntervalRecord, TelemetryError, WindowStats, metric_row

__all__ = [
    "PreparedRecord",
    "RunningCorrelation",
    "StreamingWindow",
    "StreamingWindowAggregator",
    "WindowQuality",
]


class RunningCorrelation:
    """Incremental Pearson correlation (Welford-style co-moments).

    Tracks running means and centered second moments of two series in
    O(1) memory; :attr:`value` matches the offline
    :func:`~repro.core.pi.correlation` semantics, including its
    constant-series guard: a series whose variation is at rounding-noise
    level relative to its magnitude correlates as 0.
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean_x = 0.0
        self._mean_y = 0.0
        self._m2_x = 0.0
        self._m2_y = 0.0
        self._cov = 0.0
        self._max_abs_x = 0.0
        self._max_abs_y = 0.0

    def update(self, x: float, y: float) -> None:
        """Fold one (x, y) sample into the running moments."""
        self.n += 1
        dx = x - self._mean_x
        self._mean_x += dx / self.n
        self._m2_x += dx * (x - self._mean_x)
        dy = y - self._mean_y
        self._mean_y += dy / self.n
        # co-moment uses the pre-update x delta and post-update y mean
        self._cov += dx * (y - self._mean_y)
        self._m2_y += dy * (y - self._mean_y)
        self._max_abs_x = max(self._max_abs_x, abs(x))
        self._max_abs_y = max(self._max_abs_y, abs(y))

    @property
    def value(self) -> float:
        """Pearson correlation of everything seen so far (0 if < 2)."""
        if self.n < 2:
            return 0.0
        sx = (self._m2_x / self.n) ** 0.5
        sy = (self._m2_y / self.n) ** 0.5
        tol_x = 1e-12 * max(1.0, self._max_abs_x)
        tol_y = 1e-12 * max(1.0, self._max_abs_y)
        if sx <= tol_x or sy <= tol_y:
            return 0.0
        return (self._cov / self.n) / (sx * sy)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, float]:
        """Exact running moments, for monitor checkpoint/restore."""
        return {
            "n": self.n,
            "mean_x": self._mean_x,
            "mean_y": self._mean_y,
            "m2_x": self._m2_x,
            "m2_y": self._m2_y,
            "cov": self._cov,
            "max_abs_x": self._max_abs_x,
            "max_abs_y": self._max_abs_y,
        }

    def load_state(self, state: Dict[str, float]) -> None:
        """Restore the moments captured by :meth:`state_dict`."""
        self.n = int(state["n"])
        self._mean_x = float(state["mean_x"])
        self._mean_y = float(state["mean_y"])
        self._m2_x = float(state["m2_x"])
        self._m2_y = float(state["m2_y"])
        self._cov = float(state["cov"])
        self._max_abs_x = float(state["max_abs_x"])
        self._max_abs_y = float(state["max_abs_y"])


@dataclass(frozen=True)
class WindowQuality:
    """Telemetry completeness of one decision window.

    ``tier_coverage`` is the fraction of (tick, attribute) cells that
    carried a real measurement per tier — 1.0 for pristine telemetry,
    0.0 for a tier whose collector was silent all window.
    ``missing_attributes`` lists, per tier, the attributes with *zero*
    valid samples (they are absent from the window's metric dict and
    must be imputed or abstained on downstream).
    """

    ticks: int
    tier_coverage: Dict[str, float]
    missing_attributes: Dict[str, Tuple[str, ...]]

    @property
    def complete(self) -> bool:
        """True when every configured tier reported every sample."""
        return all(c >= 1.0 for c in self.tier_coverage.values())

    @property
    def degraded(self) -> bool:
        return not self.complete


@dataclass(frozen=True)
class StreamingWindow:
    """One completed decision window emitted by the aggregator."""

    index: int
    metrics: Dict[str, Dict[str, float]]
    stats: WindowStats
    quality: Optional[WindowQuality] = field(default=None, compare=False)


@dataclass(frozen=True)
class PreparedRecord:
    """One record's per-tier metric rows, extracted once for a fleet.

    When many aggregators with identical schemas fold the *same* record
    object (the multi-site service's clean cohort), the per-attribute
    dict walk in :meth:`StreamingWindowAggregator.push` is pure
    duplicated work.  :meth:`StreamingWindowAggregator.prepare` performs
    it once — against one member's schema — and every member whose
    schema :meth:`~StreamingWindowAggregator.accepts` the result folds
    the shared rows through
    :meth:`~StreamingWindowAggregator.push_prepared`, bit-identical to
    a regular push of the same (complete) record.

    ``tiers`` maps tier name to ``(names, row)``: the attribute order
    the row was extracted in and the extracted float64 values.
    """

    tiers: Dict[str, Tuple[List[str], np.ndarray]]


class _TierAccumulator:
    """Per-tier metric-row buffer (+ validity mask) for one window."""

    __slots__ = ("names", "ring", "valid", "_index")

    def __init__(self, names: List[str], window: int):
        self.names = names
        self._index = {name: j for j, name in enumerate(names)}
        #: current window's metric rows; reduced with the identical
        #: ``mean(axis=0)`` the batch path applies to the same rows
        self.ring = np.empty((window, len(names)), dtype=float)
        #: per-(tick, attribute) validity — a cell is False when the
        #: record lacked that tier or attribute (lenient mode only)
        self.valid = np.ones((window, len(names)), dtype=bool)

    def knows(self, name: str) -> bool:
        return name in self._index

    def grow(self, new_names: List[str], fill: int) -> None:
        """Adopt attributes first seen mid-stream (lenient mode).

        A counter that was dropped when the schema was inferred — e.g.
        faulted out of the very first record — joins the schema the
        moment it reappears; its cells for the rows already folded this
        window are marked invalid.
        """
        window = self.ring.shape[0]
        added = len(new_names)
        for name in new_names:
            self._index[name] = len(self.names)
            self.names.append(name)
        self.ring = np.concatenate(
            [self.ring, np.empty((window, added), dtype=float)], axis=1
        )
        grown = np.zeros((window, added), dtype=bool)
        self.valid = np.concatenate([self.valid, grown], axis=1)
        # rows beyond ``fill`` are rewritten tick by tick; rows before
        # it carried no data for the new attributes
        self.valid[:fill, -added:] = False


class StreamingWindowAggregator:
    """Fold 1 s interval records into decision windows incrementally.

    Parameters mirror the batch pipeline: ``level`` picks the metric
    vocabulary, ``tiers`` the per-tier metric dicts to average,
    ``window`` the number of sampling intervals per decision.  State is
    O(window): one ``(window, n_attributes)`` row buffer per tier plus
    scalar accumulators.  ``retain_records`` optionally keeps the last
    N raw records in :attr:`recent` for debugging (0 keeps none).

    ``push`` returns the completed :class:`StreamingWindow` on every
    ``window``-th record, ``None`` otherwise.  Attribute schemas are
    inferred from the first record (sorted, like the batch path) and
    validated on every subsequent tick; by default a mid-run schema
    change or a record missing a configured tier fails loudly with a
    :class:`~repro.telemetry.sampler.TelemetryError` naming the
    offending interval.  With ``lenient=True`` such records instead
    flow through the *dropout path*: absent cells are masked out of the
    window average and reported in the emitted window's
    :class:`WindowQuality` (the degraded-mode posture the online
    monitor uses).
    """

    def __init__(
        self,
        *,
        level: str,
        tiers: Sequence[str],
        window: int = 30,
        attributes: Optional[Dict[str, Sequence[str]]] = None,
        retain_records: int = 0,
        lenient: bool = False,
    ):
        if window <= 0:
            raise ValueError("window must be a positive number of intervals")
        if not tiers:
            raise ValueError("need at least one tier")
        if retain_records < 0:
            raise ValueError("retain_records must be non-negative")
        self.level = level
        self.tiers = list(tiers)
        self.window = window
        self.lenient = lenient
        self._explicit_attributes = attributes
        #: per-tier accumulators, created lazily on the first record
        #: that carries each tier's metrics (strict mode requires all
        #: tiers on the first record, so lazy == eager there)
        self._acc: Dict[str, _TierAccumulator] = {}
        self._started = False
        self._fill = 0  # rows of the current window already folded
        self.ticks_seen = 0
        self.windows_emitted = 0
        #: bounded raw-record tail for debugging
        self.recent: Deque[IntervalRecord] = deque(maxlen=retain_records)
        # high-level window accumulators (same sequential order as
        # aggregate_window's sums, so the emitted stats are identical);
        # stats cover *all* website tiers, like aggregate_window, even
        # when metrics are collected for a subset
        self._t_start = 0.0
        self._t_end = 0.0
        self._submitted = 0
        self._completed = 0
        self._dropped = 0
        self._response_time_sum = 0.0
        self._util_sum: Dict[str, float] = {}
        self._queue_sum: Dict[str, float] = {}
        self._workers: Dict[str, int] = {}
        # cached metric handles, valid while OBS.registry is the same
        # object (transient; excluded from checkpoint state)
        self._obs_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    def _tier_metrics(self, record: IntervalRecord, tier: str):
        """The tier's metric dict, or None when the record lacks it."""
        try:
            return record.metrics(self.level, tier)
        except KeyError:
            if self.lenient:
                return None
            raise TelemetryError(
                f"interval {self.ticks_seen} carries no "
                f"{self.level!r} metrics for tier {tier!r}; configured "
                f"tiers are {self.tiers} (use lenient=True to route "
                f"missing tiers through the dropout path)"
            ) from None

    def _ensure_accumulator(
        self, record: IntervalRecord, tier: str
    ) -> Optional[_TierAccumulator]:
        acc = self._acc.get(tier)
        if acc is not None:
            return acc
        if self._explicit_attributes is not None:
            names = list(self._explicit_attributes[tier])
        else:
            metrics = self._tier_metrics(record, tier)
            if metrics is None:
                return None  # lenient: schema unknown until tier appears
            names = sorted(metrics)
        acc = self._acc[tier] = _TierAccumulator(names, self.window)
        # rows folded before this tier first appeared carry no data
        acc.valid[: self._fill] = False
        return acc

    def _reset_window(self, sample: WebsiteSample) -> None:
        self._fill = 0
        self._t_start = sample.t_start
        self._submitted = 0
        self._completed = 0
        self._dropped = 0
        self._response_time_sum = 0.0
        self._util_sum = {tier: 0.0 for tier in sample.tiers}
        self._queue_sum = {tier: 0.0 for tier in sample.tiers}
        self._workers = {
            tier: tier_sample.workers
            for tier, tier_sample in sample.tiers.items()
        }
        for acc in self._acc.values():
            acc.valid[:] = True

    # ------------------------------------------------------------------
    def push(self, record: IntervalRecord) -> Optional[StreamingWindow]:
        """Fold one interval record; emit the window when it completes."""
        if self._fill == 0:
            self._reset_window(record.website)
        strict = self._explicit_attributes is None and not self.lenient
        for tier in self.tiers:
            acc = self._ensure_accumulator(record, tier)
            if acc is None:
                continue
            metrics = self._tier_metrics(record, tier)
            if metrics is None:
                acc.valid[self._fill] = False
                continue
            if self.lenient:
                if self._explicit_attributes is None:
                    # inferred schemas grow: an attribute absent from
                    # the record the schema came from still joins once
                    # it shows up (schemas given explicitly are a
                    # contract and extras stay ignored)
                    unknown = sorted(
                        name for name in metrics if not acc.knows(name)
                    )
                    if unknown:
                        acc.grow(unknown, self._fill)
                row = acc.ring[self._fill]
                mask = acc.valid[self._fill]
                for j, name in enumerate(acc.names):
                    value = metrics.get(name)
                    if value is None:
                        row[j] = np.nan
                        mask[j] = False
                    else:
                        row[j] = value
                        mask[j] = True
            else:
                acc.ring[self._fill] = metric_row(
                    metrics,
                    acc.names,
                    index=self.ticks_seen,
                    level=self.level,
                    tier=tier,
                    strict=strict,
                )
        for tier, sample in record.website.tiers.items():
            self._util_sum[tier] += sample.utilization
            self._queue_sum[tier] += sample.queue_avg
        client = record.website.client
        self._submitted += client.submitted
        self._completed += client.completed
        self._dropped += client.dropped
        self._response_time_sum += client.response_time_sum
        self._t_end = record.t_end
        self.ticks_seen += 1
        self._fill += 1
        self.recent.append(record)
        if self._fill < self.window:
            return None
        return self._emit()

    # ------------------------------------------------------------------
    # fleet-shared fold fast path
    # ------------------------------------------------------------------
    def prepare(self, record: IntervalRecord) -> Optional[PreparedRecord]:
        """Extract a record's rows against this aggregator's schema.

        Returns ``None`` when the record is not a *clean fit* — a
        configured tier has no accumulator yet (schema still unknown),
        the record lacks a tier, or a tier's attribute set differs from
        the schema in any way (missing attribute, or an unknown extra
        that the lenient path would grow the schema for).  Those cases
        must take the regular :meth:`push` path, which owns masking and
        schema growth.
        """
        rows: Dict[str, Tuple[List[str], np.ndarray]] = {}
        for tier in self.tiers:
            acc = self._acc.get(tier)
            if acc is None:
                return None
            try:
                metrics = record.metrics(self.level, tier)
            except KeyError:
                return None
            names = acc.names
            if len(metrics) != len(names):
                return None
            try:
                row = np.array(
                    [metrics[name] for name in names], dtype=float
                )
            except KeyError:
                return None
            rows[tier] = (names, row)
        return PreparedRecord(tiers=rows)

    def accepts(self, prepared: PreparedRecord) -> bool:
        """Can :meth:`push_prepared` fold this extraction verbatim?

        True only when every configured tier has an accumulator whose
        attribute order matches the extraction's — sites whose schemas
        diverged (e.g. an attribute grew mid-stream after a fault) fall
        back to the regular path.
        """
        for tier in self.tiers:
            acc = self._acc.get(tier)
            if acc is None:
                return False
            entry = prepared.tiers.get(tier)
            if entry is None:
                return False
            names = entry[0]
            if acc.names is not names and acc.names != names:
                return False
        return True

    def push_prepared(
        self, record: IntervalRecord, prepared: PreparedRecord
    ) -> Optional[StreamingWindow]:
        """Fold one record from pre-extracted rows; emit on completion.

        Callers must have verified :meth:`accepts`; the rows land in the
        ring buffer exactly as the lenient per-attribute loop would
        write them for the same complete record, so the emitted window
        is bit-for-bit identical.
        """
        if self._fill == 0:
            self._reset_window(record.website)
        fill = self._fill
        for tier in self.tiers:
            acc = self._acc[tier]
            acc.ring[fill] = prepared.tiers[tier][1]
            acc.valid[fill] = True
        for tier, sample in record.website.tiers.items():
            self._util_sum[tier] += sample.utilization
            self._queue_sum[tier] += sample.queue_avg
        client = record.website.client
        self._submitted += client.submitted
        self._completed += client.completed
        self._dropped += client.dropped
        self._response_time_sum += client.response_time_sum
        self._t_end = record.t_end
        self.ticks_seen += 1
        self._fill += 1
        self.recent.append(record)
        if self._fill < self.window:
            return None
        return self._emit()

    def _emit(self) -> StreamingWindow:
        t0 = OBS.clock() if OBS.enabled else None
        metrics: Dict[str, Dict[str, float]] = {}
        coverage: Dict[str, float] = {}
        missing: Dict[str, Tuple[str, ...]] = {}
        for tier in self.tiers:
            acc = self._acc.get(tier)
            if acc is None:
                # tier never produced a record: no schema, no metrics
                coverage[tier] = 0.0
                missing[tier] = ()
                continue
            if acc.valid.all():
                # the batch path's exact arithmetic — bit-for-bit
                metrics[tier] = {
                    name: float(value)
                    for name, value in zip(acc.names, acc.ring.mean(axis=0))
                }
                coverage[tier] = 1.0
                missing[tier] = ()
                continue
            averaged: Dict[str, float] = {}
            absent: List[str] = []
            for j, name in enumerate(acc.names):
                cells = acc.ring[acc.valid[:, j], j]
                if cells.size:
                    averaged[name] = float(cells.mean())
                else:
                    absent.append(name)
            coverage[tier] = float(acc.valid.mean())
            missing[tier] = tuple(absent)
            if averaged:
                metrics[tier] = averaged
        util: Dict[str, float] = {}
        queue: Dict[str, float] = {}
        distress: Dict[str, float] = {}
        for tier in self._util_sum:
            util[tier] = self._util_sum[tier] / self.window
            queue[tier] = self._queue_sum[tier] / self.window
            backlog = queue[tier] / (queue[tier] + self._workers[tier])
            distress[tier] = util[tier] + 0.5 * backlog
        stats = WindowStats(
            t_start=self._t_start,
            t_end=self._t_end,
            submitted=self._submitted,
            completed=self._completed,
            dropped=self._dropped,
            response_time_sum=self._response_time_sum,
            tier_utilization=util,
            tier_queue=queue,
            tier_distress=distress,
        )
        emitted = StreamingWindow(
            index=self.windows_emitted,
            metrics=metrics,
            stats=stats,
            quality=WindowQuality(
                ticks=self.window,
                tier_coverage=coverage,
                missing_attributes=missing,
            ),
        )
        self.windows_emitted += 1
        self._fill = 0
        if t0 is not None:
            cache = self._obs_cache
            if cache is None or cache[0] is not OBS.registry:
                registry = OBS.registry
                cache = self._obs_cache = (
                    registry,
                    registry.counter(
                        "repro_streaming_windows_total",
                        help="decision windows emitted by streaming "
                        "aggregators",
                    ),
                    registry.counter(
                        "repro_streaming_ticks_total",
                        help="interval records folded by streaming "
                        "aggregators",
                    ),
                    registry.counter(
                        "repro_streaming_degraded_windows_total",
                        help="emitted windows with incomplete telemetry",
                    ),
                )
            cache[1].inc()
            # ticks are flushed per emitted window (a window completes
            # after exactly ``window`` pushes) to keep the per-record
            # hot path free of metric operations
            cache[2].inc(self.window)
            if emitted.quality is not None and emitted.quality.degraded:
                cache[3].inc()
            OBS.observe_span("window_emit", OBS.clock() - t0)
        return emitted

    def copy_state_from(self, other: "StreamingWindowAggregator") -> None:
        """Become a bit-exact replica of ``other``'s fold state.

        The fleet backend folds each record once per *cohort* of
        state-identical sites (the representative's aggregator) and
        materializes the other members from it on divergence or
        checkpoint — this is that materialization.  Configuration
        (``window``, ``level``, ``tiers``) is not copied; callers
        guarantee it already matches.
        """
        if self.window != other.window:
            raise ValueError(
                "cannot copy state across aggregators with different "
                f"windows ({self.window} vs {other.window})"
            )
        self._fill = other._fill
        self.ticks_seen = other.ticks_seen
        self.windows_emitted = other.windows_emitted
        self._t_start = other._t_start
        self._t_end = other._t_end
        self._submitted = other._submitted
        self._completed = other._completed
        self._dropped = other._dropped
        self._response_time_sum = other._response_time_sum
        self._util_sum = dict(other._util_sum)
        self._queue_sum = dict(other._queue_sum)
        self._workers = dict(other._workers)
        acc_copy: Dict[str, _TierAccumulator] = {}
        for tier, acc in other._acc.items():
            clone = _TierAccumulator(list(acc.names), self.window)
            np.copyto(clone.ring, acc.ring)
            np.copyto(clone.valid, acc.valid)
            acc_copy[tier] = clone
        self._acc = acc_copy
        if self.recent.maxlen:
            self.recent = deque(other.recent, maxlen=self.recent.maxlen)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything needed to resume mid-window, bit-for-bit.

        The bounded :attr:`recent` debug tail is deliberately not
        captured — it never influences decisions.
        """
        return {
            "fill": self._fill,
            "ticks_seen": self.ticks_seen,
            "windows_emitted": self.windows_emitted,
            "tiers": {
                tier: {
                    "names": list(acc.names),
                    "rows": acc.ring[: self._fill].tolist(),
                    "valid": acc.valid[: self._fill].tolist(),
                }
                for tier, acc in self._acc.items()
            },
            "stats": {
                "t_start": self._t_start,
                "t_end": self._t_end,
                "submitted": self._submitted,
                "completed": self._completed,
                "dropped": self._dropped,
                "response_time_sum": self._response_time_sum,
                "util_sum": dict(self._util_sum),
                "queue_sum": dict(self._queue_sum),
                "workers": dict(self._workers),
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore the mid-window state captured by :meth:`state_dict`."""
        self._fill = int(state["fill"])
        self.ticks_seen = int(state["ticks_seen"])
        self.windows_emitted = int(state["windows_emitted"])
        self._acc = {}
        for tier, payload in state["tiers"].items():
            acc = _TierAccumulator(list(payload["names"]), self.window)
            rows = np.asarray(payload["rows"], dtype=float)
            valid = np.asarray(payload["valid"], dtype=bool)
            if rows.size:
                acc.ring[: self._fill] = rows
            if valid.size:
                acc.valid[: self._fill] = valid
            self._acc[tier] = acc
        stats = state["stats"]
        self._t_start = float(stats["t_start"])
        self._t_end = float(stats["t_end"])
        self._submitted = int(stats["submitted"])
        self._completed = int(stats["completed"])
        self._dropped = int(stats["dropped"])
        self._response_time_sum = float(stats["response_time_sum"])
        self._util_sum = {k: float(v) for k, v in stats["util_sum"].items()}
        self._queue_sum = {k: float(v) for k, v in stats["queue_sum"].items()}
        self._workers = {k: int(v) for k, v in stats["workers"].items()}

"""Metric collection agents and their runtime cost.

The paper reads hardware counters through the PerfCtr kernel patch in
*global mode* with a deliberately minimal tool ("just initialize and
read hardware counters"), and OS metrics with Sysstat.  Counter
maintenance itself is free in hardware; the only cost is the periodic
read — a few register reads for PerfCtr versus parsing a swath of
``/proc`` for sysstat, which burns measurable CPU and pollutes the L2.

Section V.D measures the end-to-end impact: **under 0.5% throughput
loss for hardware-counter collection versus about 4% for OS-level
collection**.  :class:`MetricsCollector` reproduces the mechanism: each
sampling tick injects the collector's CPU burst (and cache footprint)
into every tier as background work, so the cost shows up in measured
throughput and response times exactly as in the paper's experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.engine import Simulator
from ..simulator.website import MultiTierWebsite

__all__ = [
    "CollectorProfile",
    "PERFCTR_PROFILE",
    "SYSSTAT_PROFILE",
    "MetricsCollector",
]


@dataclass(frozen=True)
class CollectorProfile:
    """Cost model of one metrics-collection agent.

    ``cpu_cost_s`` is nominal CPU seconds consumed per sample on each
    tier; ``footprint_kb`` is the collector's cache working set while it
    runs (sysstat walks large /proc text buffers, PerfCtr touches a few
    registers).
    """

    name: str
    cpu_cost_s: float
    footprint_kb: float
    interval: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_cost_s < 0 or self.footprint_kb < 0:
            raise ValueError("collector costs must be non-negative")
        if self.interval <= 0:
            raise ValueError("collection interval must be positive")

    def cpu_fraction(self, speed_factor: float, cores: int) -> float:
        """Fraction of a tier's CPU this collector consumes."""
        return self.cpu_cost_s / (self.interval * speed_factor * cores)


#: PerfCtr global-mode reads: a handful of MSR reads per CPU.
PERFCTR_PROFILE = CollectorProfile(
    name="perfctr-hpc", cpu_cost_s=0.002, footprint_kb=8.0
)

#: Sysstat: fork sadc, parse /proc/stat, /proc/meminfo, /proc/net/dev, ...
SYSSTAT_PROFILE = CollectorProfile(
    name="sysstat-os", cpu_cost_s=0.035, footprint_kb=96.0
)


class MetricsCollector:
    """Periodic collection agent running on every tier of a website."""

    def __init__(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        profile: CollectorProfile,
    ):
        self.sim = sim
        self.website = website
        self.profile = profile
        self.samples_taken = 0
        self._timer = sim.every(profile.interval, self._collect)

    def _collect(self) -> None:
        self.samples_taken += 1
        for tier in self.website.tiers.values():
            tier.run_background(
                self.profile.cpu_cost_s,
                footprint_kb=self.profile.footprint_kb,
            )

    def stop(self) -> None:
        self._timer.cancel()

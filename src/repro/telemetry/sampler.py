"""Runtime statistics collection and windowed instance construction.

The paper collects hardware-counter and OS-level statistics **on each
tier every second**; the average over a 30-second interval, combined
with the corresponding high-level state, forms one training instance
(Section IV.A).  This module reproduces that pipeline:

* :class:`TelemetrySampler` ticks at the 1 s sampling interval,
  draining the website's physical counters and passing them through the
  :class:`~repro.telemetry.hpc.HpcModel` and
  :class:`~repro.telemetry.osmetrics.OsMetricsModel` of each tier;
* :class:`MeasurementRun` holds the resulting per-interval records for
  one workload execution;
* :func:`build_dataset` averages records over fixed windows and labels
  each window with a caller-supplied oracle, yielding the
  :class:`~repro.telemetry.dataset.Dataset` a synopsis is trained on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..obs import OBS
from ..simulator.engine import Simulator
from ..simulator.website import MultiTierWebsite, WebsiteSample
from .dataset import Dataset, Instance
from .hpc import HpcModel
from .osmetrics import OsMetricsModel

__all__ = [
    "HPC_LEVEL",
    "OS_LEVEL",
    "HYBRID_LEVEL",
    "IntervalRecord",
    "MeasurementRun",
    "TelemetryError",
    "TelemetrySampler",
    "WindowStats",
    "aggregate_window",
    "build_dataset",
    "metric_row",
    "metric_matrix",
]


class TelemetryError(ValueError):
    """A record violated the telemetry contract (missing tier/schema).

    Subclasses ``ValueError`` so existing schema-validation handlers
    keep working, while letting fault-aware consumers distinguish
    telemetry-shape problems from ordinary argument errors.
    """

HPC_LEVEL = "hpc"
OS_LEVEL = "os"
#: combined attribute space (paper Section VII future work: "combine
#: hardware counter level metrics with OS level metrics")
HYBRID_LEVEL = "hybrid"


@dataclass
class IntervalRecord:
    """Everything observed during one sampling interval."""

    website: WebsiteSample
    hpc: Dict[str, Dict[str, float]]
    os: Dict[str, Dict[str, float]]

    @property
    def t_start(self) -> float:
        return self.website.t_start

    @property
    def t_end(self) -> float:
        return self.website.t_end

    def metrics(self, level: str, tier: str) -> Dict[str, float]:
        if level == HPC_LEVEL:
            return self.hpc[tier]
        if level == OS_LEVEL:
            return self.os[tier]
        if level == HYBRID_LEVEL:
            combined = {f"hpc.{k}": v for k, v in self.hpc[tier].items()}
            combined.update(
                {f"os.{k}": v for k, v in self.os[tier].items()}
            )
            return combined
        raise KeyError(f"unknown metric level {level!r}")


@dataclass
class MeasurementRun:
    """One workload execution's worth of interval records."""

    workload: str
    interval: float
    records: List[IntervalRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def duration(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].t_end - self.records[0].t_start


@dataclass
class WindowStats:
    """Aggregated high-level state of one window, used for labelling."""

    t_start: float
    t_end: float
    submitted: int
    completed: int
    dropped: int
    response_time_sum: float
    tier_utilization: Dict[str, float]
    tier_queue: Dict[str, float]
    tier_distress: Dict[str, float]

    @property
    def mean_response_time(self) -> float:
        return self.response_time_sum / self.completed if self.completed else 0.0

    @property
    def throughput(self) -> float:
        span = self.t_end - self.t_start
        return self.completed / span if span > 0 else 0.0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.submitted if self.submitted else 0.0

    @property
    def bottleneck(self) -> str:
        """Tier under the most distress (meaningful when overloaded)."""
        return max(self.tier_distress, key=self.tier_distress.get)


class TelemetrySampler:
    """Samples a website every ``interval`` seconds into a run record.

    By default every interval record is retained in :attr:`run` — the
    batch posture, right for offline training where the whole run is
    windowed afterwards.  For *online* monitoring pass ``on_record`` (a
    per-tick consumer, e.g.
    :meth:`~repro.core.monitor.OnlineCapacityMonitor.push`) and bound
    ``retain`` so arbitrarily long runs hold O(retain) memory instead
    of growing without limit; ``retain=0`` keeps nothing.
    """

    def __init__(
        self,
        sim: Simulator,
        website: MultiTierWebsite,
        *,
        workload: str = "",
        interval: float = 1.0,
        hpc_noise: float = 0.03,
        os_noise: float = 0.05,
        seed: int = 0,
        on_record: Optional[Callable[["IntervalRecord"], None]] = None,
        retain: Optional[int] = None,
    ):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        if retain is not None and retain < 0:
            raise ValueError("retain must be non-negative when given")
        self.sim = sim
        self.website = website
        self.on_record = on_record
        self.retain = retain
        self.samples_taken = 0
        self.run = MeasurementRun(workload=workload, interval=interval)
        self._hpc_models = {
            name: HpcModel(tier.spec, noise=hpc_noise, seed=seed * 1000 + i)
            for i, (name, tier) in enumerate(website.tiers.items())
        }
        # the front tier behaves like an app server (thread timeslicing,
        # user-heavy CPU split); deeper tiers like database servers
        self._os_models = {
            name: OsMetricsModel(
                tier.spec,
                role="app" if i == 0 else "db",
                noise=os_noise,
                seed=seed * 1000 + 500 + i,
            )
            for i, (name, tier) in enumerate(website.tiers.items())
        }
        self._timer = sim.every(interval, self._tick)

    def stop(self) -> None:
        self._timer.cancel()

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        t0 = OBS.clock() if OBS.enabled else None
        ws = self.website.sample()
        duration = max(ws.client.duration, 1e-9)

        # attribute link traffic to tiers by the "src->dst" link names;
        # client-facing traffic lands on the front (first) tier.  This
        # works for the two-tier site and for arbitrary tier chains.
        net = {
            name: dict(
                rx_bytes_per_s=0.0,
                tx_bytes_per_s=0.0,
                rx_pck_per_s=0.0,
                tx_pck_per_s=0.0,
            )
            for name in ws.tiers
        }
        for link_name, link in ws.links.items():
            src, _, dst = link_name.partition("->")
            if dst in net:
                net[dst]["rx_bytes_per_s"] += link.byte_rate
                net[dst]["rx_pck_per_s"] += link.packet_rate
            if src in net:
                net[src]["tx_bytes_per_s"] += link.byte_rate
                net[src]["tx_pck_per_s"] += link.packet_rate
        front = next(iter(ws.tiers))
        net[front]["rx_bytes_per_s"] += ws.client.request_bytes / duration
        net[front]["tx_bytes_per_s"] += ws.client.response_bytes / duration
        client_pck = ws.client.completed * 2.0 / duration
        net[front]["rx_pck_per_s"] += client_pck
        net[front]["tx_pck_per_s"] += client_pck
        record = IntervalRecord(
            website=ws,
            hpc={
                name: model.observe(ws.tiers[name])
                for name, model in self._hpc_models.items()
            },
            os={
                name: self._os_models[name].observe(
                    ws.tiers[name], **net.get(name, {})
                )
                for name in self._os_models
            },
        )
        self.samples_taken += 1
        records = self.run.records
        records.append(record)
        if self.retain is not None and len(records) > self.retain:
            del records[: len(records) - self.retain]
        if self.on_record is not None:
            self.on_record(record)
        if t0 is not None:
            OBS.inc(
                "repro_sampler_ticks_total",
                help="sampling intervals collected across all tiers",
            )
            OBS.observe_span("sampler_tick", OBS.clock() - t0)


# ----------------------------------------------------------------------
# window aggregation
# ----------------------------------------------------------------------
def aggregate_window(records: Sequence[IntervalRecord]) -> WindowStats:
    """Collapse consecutive interval records into one window's stats."""
    if not records:
        raise ValueError("cannot aggregate an empty window")
    tiers = list(records[0].website.tiers)
    util: Dict[str, float] = {}
    queue: Dict[str, float] = {}
    distress: Dict[str, float] = {}
    for tier in tiers:
        samples = [r.website.tiers[tier] for r in records]
        util[tier] = sum(s.utilization for s in samples) / len(samples)
        queue[tier] = sum(s.queue_avg for s in samples) / len(samples)
        workers = samples[0].workers
        # Utilization identifies the constrained resource; the queue is
        # only a bounded tie-breaker between co-saturated tiers.  An
        # unbounded queue term would misattribute the bottleneck to the
        # *front* tier, where the whole admission backlog naturally
        # piles up while a deeper tier is the real constraint.
        backlog = queue[tier] / (queue[tier] + workers)
        distress[tier] = util[tier] + 0.5 * backlog
    clients = [r.website.client for r in records]
    return WindowStats(
        t_start=records[0].t_start,
        t_end=records[-1].t_end,
        submitted=sum(c.submitted for c in clients),
        completed=sum(c.completed for c in clients),
        dropped=sum(c.dropped for c in clients),
        response_time_sum=sum(c.response_time_sum for c in clients),
        tier_utilization=util,
        tier_queue=queue,
        tier_distress=distress,
    )


def metric_row(
    metrics: Mapping[str, float],
    names: Sequence[str],
    *,
    index: int,
    level: str,
    tier: str,
    strict: bool = True,
) -> List[float]:
    """One interval's metric dict as a row in ``names`` order, validated.

    A record missing an expected attribute raises a descriptive error
    naming the offending interval instead of a bare ``KeyError``; with
    ``strict`` (the schema was inferred, not caller-chosen) extra
    attributes are schema drift and raise too, rather than being
    silently dropped.
    """
    try:
        row = [metrics[name] for name in names]
    except KeyError as exc:
        raise ValueError(
            f"interval {index} ({level}/{tier}) is missing attribute "
            f"{exc.args[0]!r}; every record in a run must share the "
            f"attribute schema {sorted(names)}"
        ) from None
    if strict and len(metrics) != len(names):
        extra = sorted(set(metrics) - set(names))
        raise ValueError(
            f"interval {index} ({level}/{tier}) has unexpected "
            f"attributes {extra} beyond the run's schema {sorted(names)}"
        )
    return row


def metric_matrix(
    records: Sequence[IntervalRecord],
    *,
    level: str,
    tier: str,
    names: Sequence[str],
    strict: bool = True,
    start_index: int = 0,
) -> np.ndarray:
    """(n_records, n_attributes) float matrix of one tier's metrics.

    The shared fast path under :func:`build_dataset`,
    :func:`~repro.core.capacity.build_coordinated_instances` and the
    streaming aggregator: window averaging then becomes one vectorized
    ``mean(axis=0)`` per window instead of a per-dict Python loop.
    ``start_index`` offsets the interval number used in error messages.
    """
    return np.array(
        [
            metric_row(
                record.metrics(level, tier),
                names,
                index=start_index + i,
                level=level,
                tier=tier,
                strict=strict,
            )
            for i, record in enumerate(records)
        ],
        dtype=float,
    )


def build_dataset(
    run: MeasurementRun,
    *,
    level: str,
    tier: str,
    labeler: Callable[[WindowStats], int],
    window: int = 30,
    attributes: Optional[Sequence[str]] = None,
) -> Dataset:
    """Windowed, labelled dataset for one (tier, metric level).

    ``window`` counts sampling intervals per instance (the paper uses
    30 one-second samples).  A trailing partial window is discarded.
    ``labeler`` maps the window's high-level state to the class
    variable; pair it with the oracles in :mod:`repro.core.labeler`.

    Metric-dict key sets are validated across the whole run: a record
    missing an attribute (or, when the schema is inferred from the
    first record, carrying extras) raises a descriptive error naming
    the interval.  Window averaging is vectorized — one numpy mean per
    window over a prebuilt metric matrix.
    """
    if window <= 0:
        raise ValueError("window must be a positive number of intervals")
    n_windows = len(run.records) // window
    n_used = n_windows * window
    strict = attributes is None
    names: List[str] = (
        list(attributes)
        if attributes
        else sorted(run.records[0].metrics(level, tier)) if run.records else []
    )
    instances: List[Instance] = []
    if n_windows:
        rows = metric_matrix(
            run.records[:n_used],
            level=level,
            tier=tier,
            names=names,
            strict=strict,
        )
        for w in range(n_windows):
            start = w * window
            chunk = run.records[start : start + window]
            averaged = {
                name: float(value)
                for name, value in zip(
                    names, rows[start : start + window].mean(axis=0)
                )
            }
            stats = aggregate_window(chunk)
            label = labeler(stats)
            instances.append(
                Instance(
                    attributes=averaged,
                    label=label,
                    t_start=stats.t_start,
                    t_end=stats.t_end,
                    tier=tier,
                    workload=run.workload,
                    bottleneck=stats.bottleneck if label else None,
                )
            )
    return Dataset(instances, names)

"""Synthetic hardware performance counters.

The paper reads Pentium 4 (NetBurst) event counters in PerfCtr's
*global* mode — system-wide counts, not per-process — every second.
This module synthesizes the same counter vocabulary from the physical
state the simulator exposes per sampling interval.

The derivations encode the micro-architectural response the learners
exploit:

* **instructions retired** track useful work completed, so they stall
  when throughput droops;
* **cycles** track busy cores, so they saturate at overload;
* their ratio, **IPC**, is the paper's canonical *yield* metric;
* **L2 miss rate** and **stall cycles** rise with cache/buffer-pool
  pressure — the *cost* metrics — because the contention models feed
  straight into them;
* secondary events (branch mispredictions, TLB misses, bus
  transactions) respond to thread churn and memory traffic with their
  own sensitivities and noise, giving the attribute-selection stage a
  realistic haystack to search.

All counters receive multiplicative log-normal measurement noise; the
noise scale is configurable and seeded for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..simulator.server import HardwareSpec, TierSample

__all__ = ["HpcModel", "HPC_METRIC_NAMES"]

#: Canonical metric vocabulary emitted per tier per interval.
HPC_METRIC_NAMES: List[str] = [
    "instructions",
    "cycles",
    "ipc",
    "l1d_misses",
    "l2_references",
    "l2_misses",
    "l2_miss_rate",
    "stall_cycles",
    "stall_fraction",
    "branch_instructions",
    "branch_mispredictions",
    "branch_miss_rate",
    "itlb_misses",
    "dtlb_misses",
    "bus_transactions",
    "memory_bytes",
]


@dataclass(frozen=True)
class _ArchParams:
    """Sensitivities of derived events (roughly NetBurst-flavoured)."""

    l1d_miss_per_instr: float = 0.025
    l2_ref_per_instr: float = 0.022  # L2 references = L1 misses reaching L2
    miss_penalty_cycles: float = 180.0
    base_stall_fraction: float = 0.18
    branch_per_instr: float = 0.17
    base_branch_miss: float = 0.015
    branch_miss_per_runnable: float = 0.0006
    itlb_per_instr: float = 0.0004
    dtlb_per_instr: float = 0.0012
    tlb_churn_per_runnable: float = 0.00004
    cacheline_bytes: float = 64.0


class HpcModel:
    """Maps a :class:`TierSample` to a hardware-counter metric vector."""

    def __init__(
        self,
        spec: HardwareSpec,
        *,
        noise: float = 0.03,
        seed: int = 0,
        arch: _ArchParams = _ArchParams(),
    ):
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.spec = spec
        self.noise = noise
        self.arch = arch
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _noisy(self, value: float) -> float:
        if self.noise <= 0 or value == 0.0:
            return value
        return float(value * self._rng.lognormal(0.0, self.noise))

    def observe(self, sample: TierSample) -> Dict[str, float]:
        """Counter metrics for one interval (rates are per-second).

        Count-type metrics are normalized to per-second rates so that
        windows of different lengths are comparable; ratio metrics
        (ipc, miss rates, stall fraction) are dimensionless.
        """
        arch = self.arch
        duration = max(sample.duration, 1e-9)

        # cycles: unhalted clock cycles across all CPUs (global mode)
        busy_cycles = sample.core_busy_time * self.spec.frequency_ghz * 1e9

        # instructions: useful request work + monitoring background work
        work = sample.work_done + sample.background_work
        instructions = work * self.spec.instructions_per_work

        ipc = instructions / busy_cycles if busy_cycles > 0 else 0.0

        l2_refs = instructions * arch.l2_ref_per_instr
        miss_rate = sample.miss_rate_avg
        l2_misses = l2_refs * miss_rate
        l1d = instructions * arch.l1d_miss_per_instr * (1.0 + miss_rate)

        stall = (
            busy_cycles * arch.base_stall_fraction
            + l2_misses * arch.miss_penalty_cycles
        )
        stall = min(stall, busy_cycles * 0.98)
        stall_fraction = stall / busy_cycles if busy_cycles > 0 else 0.0

        branches = instructions * arch.branch_per_instr
        branch_miss_rate = min(
            0.2,
            arch.base_branch_miss
            + arch.branch_miss_per_runnable * sample.runnable_avg,
        )
        branch_misses = branches * branch_miss_rate

        tlb_churn = arch.tlb_churn_per_runnable * sample.runnable_avg
        itlb = instructions * (arch.itlb_per_instr + tlb_churn)
        dtlb = instructions * (arch.dtlb_per_instr + 2.0 * tlb_churn)

        bus = l2_misses * 1.1  # fills + write-backs
        mem_bytes = bus * arch.cacheline_bytes

        raw = {
            "instructions": instructions / duration,
            "cycles": busy_cycles / duration,
            "ipc": ipc,
            "l1d_misses": l1d / duration,
            "l2_references": l2_refs / duration,
            "l2_misses": l2_misses / duration,
            "l2_miss_rate": miss_rate,
            "stall_cycles": stall / duration,
            "stall_fraction": stall_fraction,
            "branch_instructions": branches / duration,
            "branch_mispredictions": branch_misses / duration,
            "branch_miss_rate": branch_miss_rate,
            "itlb_misses": itlb / duration,
            "dtlb_misses": dtlb / duration,
            "bus_transactions": bus / duration,
            "memory_bytes": mem_bytes / duration,
        }
        return {name: self._noisy(value) for name, value in raw.items()}

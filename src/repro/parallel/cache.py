"""Content-addressed on-disk cache for expensive experiment artifacts.

Regenerating the paper's tables rebuilds the same measurement runs and
trained synopses on every CLI or CI invocation.  :class:`ArtifactCache`
makes those artifacts restart-cheap: each one is stored under a key
derived from *everything that determines its content* —

* a schema version (:data:`SCHEMA_VERSION`), bumped whenever the
  serialized representation or the generating code changes shape;
* the full :class:`~repro.experiments.pipeline.PipelineConfig`
  (including the nested testbed config), serialized field by field;
* the artifact's own coordinates (kind, workload, tier, level,
  learner, synopsis configuration).

The key material is canonical JSON (sorted keys); the address is its
SHA-256.  Two processes that agree on config and code therefore agree
on the address, so a cache can be shared between parallel workers and
across CLI invocations — a second ``repro table1`` run performs zero
simulation and zero training.

Entries are one gzip-compressed JSON file each, written atomically
(temp file + ``os.replace``) so concurrent workers never observe a
torn entry.  The cache never invalidates by time: a key either exists
with the right content or does not exist.  Stale entries from older
schema versions are only removed by :meth:`ArtifactCache.clear`.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tempfile
from collections import Counter
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..obs import OBS

__all__ = ["SCHEMA_VERSION", "ArtifactCache", "default_cache_dir"]

#: bump when the serialized artifact formats (run payloads, synopsis
#: dicts) or the deterministic generation pipeline changes shape
#: (v2: synopsis payloads gained imputation marginals and prior votes)
SCHEMA_VERSION = 2


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def _jsonable(value: object) -> object:
    """Canonical JSON-compatible form of key material."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, **asdict(value)}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class ArtifactCache:
    """Filesystem-backed content-addressed artifact store.

    ``hits`` / ``misses`` / ``stores`` count per artifact *kind* (e.g.
    ``"run"``, ``"synopsis"``) so callers — and the warm-cache CI gate
    — can assert that a warmed invocation skipped every rebuild.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        self.stores: Counter = Counter()
        self.evictions: Counter = Counter()

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    def key(self, kind: str, **fields: object) -> str:
        """Stable SHA-256 address of one artifact."""
        material = json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "kind": kind,
                "fields": _jsonable(fields),
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{key}.json.gz"

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def get(self, kind: str, key: str) -> Optional[dict]:
        """Cached artifact payload, or None (counted as hit/miss).

        A present-but-unreadable entry — truncated gzip, corrupt JSON,
        an entry missing its ``artifact`` body — is *evicted*: the file
        is removed so the subsequent rebuild's :meth:`put` replaces it,
        instead of every future run paying the decode failure again.
        Evictions are counted per kind and surfaced by
        ``repro cache stats``.
        """
        path = self.path_for(kind, key)
        try:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.misses[kind] += 1
            if OBS.enabled:
                OBS.inc(
                    "repro_cache_requests_total",
                    help="artifact cache lookups by kind and outcome",
                    kind=kind,
                    outcome="miss",
                )
            return None
        except (OSError, EOFError, json.JSONDecodeError, UnicodeDecodeError):
            self._evict(kind, path)
            return None
        if not isinstance(entry, dict) or "artifact" not in entry:
            self._evict(kind, path)
            return None
        self.hits[kind] += 1
        if OBS.enabled:
            OBS.inc(
                "repro_cache_requests_total",
                help="artifact cache lookups by kind and outcome",
                kind=kind,
                outcome="hit",
            )
        return entry["artifact"]

    def _evict(self, kind: str, path: Path) -> None:
        """Remove a corrupt entry; the caller rebuilds and re-stores."""
        try:
            path.unlink()
        except OSError:
            pass  # already gone, or unremovable — either way a miss
        self.evictions[kind] += 1
        self.misses[kind] += 1
        if OBS.enabled:
            OBS.inc(
                "repro_cache_evictions_total",
                help="corrupt cache entries removed, by kind",
                kind=kind,
            )
            OBS.inc(
                "repro_cache_requests_total",
                help="artifact cache lookups by kind and outcome",
                kind=kind,
                outcome="miss",
            )

    def put(self, kind: str, key: str, artifact: dict, **describe: object) -> Path:
        """Atomically store one artifact payload under its address.

        The write is retried with bounded backoff (transient filesystem
        errors on shared/networked cache directories); a final failure
        still raises.
        """
        # local import: repro.faults imports the core stack, which would
        # cycle back here at module-import time
        from ..faults.retry import retry_io

        path = self.path_for(kind, key)
        entry = {"kind": kind, "describe": _jsonable(describe), "artifact": artifact}
        payload = json.dumps(entry).encode("utf-8")

        def write() -> None:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as raw:
                    with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as gz:
                        gz.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

        retry_io(write)
        self.stores[kind] += 1
        if OBS.enabled:
            OBS.inc(
                "repro_cache_stores_total",
                help="artifacts written to the cache, by kind",
                kind=kind,
            )
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def entries(self) -> Dict[str, Dict[str, int]]:
        """Per-kind ``{"count": ..., "bytes": ...}`` from a disk scan."""
        summary: Dict[str, Dict[str, int]] = {}
        if not self.root.is_dir():
            return summary
        for path in sorted(self.root.glob("*-*.json.gz")):
            kind = path.name.split("-", 1)[0]
            bucket = summary.setdefault(kind, {"count": 0, "bytes": 0})
            bucket["count"] += 1
            bucket["bytes"] += path.stat().st_size
        return summary

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed.

        Safe against concurrent writers: an entry that disappears
        between the directory scan and its unlink (another process
        evicted it, or a temp file was renamed into place) is simply
        not counted rather than raising.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*-*.json.gz"):
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            removed += 1
        for path in self.root.glob("*.tmp"):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        return removed

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Session counters: per-kind hits / misses / stores / evictions."""
        kinds = (
            set(self.hits)
            | set(self.misses)
            | set(self.stores)
            | set(self.evictions)
        )
        return {
            kind: {
                "hits": self.hits[kind],
                "misses": self.misses[kind],
                "stores": self.stores[kind],
                "evictions": self.evictions[kind],
            }
            for kind in sorted(kinds)
        }

    def stats_rows(self) -> list:
        """Human-readable stats (disk contents + session counters)."""
        rows = [f"cache {self.root} (schema v{SCHEMA_VERSION})"]
        entries = self.entries()
        if not entries:
            rows.append("  empty")
        for kind, info in sorted(entries.items()):
            rows.append(
                f"  {kind:10} {info['count']:5d} entries "
                f"{info['bytes'] / 1024:10.1f} KiB"
            )
        for kind, info in self.counters().items():
            rows.append(
                f"  session {kind}: {info['hits']} hits, "
                f"{info['misses']} misses, {info['stores']} stores, "
                f"{info['evictions']} evictions"
            )
        return rows

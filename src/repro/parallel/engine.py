"""Process-pool fan-out for experiment artifacts.

The artifacts behind the paper's tables are *embarrassingly parallel*:
the six measurement runs are independent simulations, and every
(workload, tier, level, learner) synopsis depends only on its own
training run.  :func:`warm_pipeline` builds them on a
:class:`~repro.parallel.pool.WorkerPool` — the same long-lived-worker
substrate the sharded :class:`~repro.control.shard.ShardedCapacityService`
runs on — and adopts the results into an
:class:`~repro.experiments.pipeline.ExperimentPipeline`'s memos, after
which the existing lazy accessors (and every experiment built on them)
run entirely from memory.

Determinism / bit-equality
--------------------------
Parallel results are bit-identical to a serial build:

* every artifact is generated from the same ``PipelineConfig`` with the
  same derived seed, in its own process, with no shared mutable state;
* runs cross process boundaries as :func:`run_to_dict` payloads, which
  round-trip every float exactly;
* results are merged in canonical task order (the order a serial build
  would produce them), never in completion order.

Workers share the parent's :class:`~repro.parallel.cache.ArtifactCache`
directory when one is configured, so a warm fan-out degenerates to a
parallel cache read and repeated invocations skip simulation and
training entirely.

Failure semantics
-----------------
The pool is *supervised*: a worker that dies mid-build surfaces as a
:class:`~repro.parallel.pool.WorkerCrash` naming the worker index and
exit code rather than a hung ``recv``, and the ``with`` exit escalates
``join -> terminate -> kill`` so no zombie workers outlive a failed
warm-up.  Artifact builds are pure functions of the config, so callers
may simply retry ``warm_pipeline`` after a crash — already-memoized and
cache-hit artifacts are never rebuilt.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import OBS
from ..telemetry.persistence import run_from_dict, run_to_dict
from .cache import ArtifactCache
from .pool import WorkerPool

__all__ = ["WarmReport", "warm_pipeline", "resolve_jobs"]

#: run kinds in canonical (serial) build order
_RUN_KINDS = ("training", "test", "stress")


def resolve_jobs(jobs: Optional[int]) -> int:
    """``jobs`` with the documented default of ``os.cpu_count()``."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError("jobs must be a positive worker count")
    return jobs


@dataclass
class WarmReport:
    """What a :func:`warm_pipeline` call did."""

    jobs: int = 1
    runs_built: int = 0
    runs_cached: int = 0
    synopses_built: int = 0
    synopses_cached: int = 0
    run_keys: List[Tuple[str, str]] = field(default_factory=list)
    synopsis_keys: List[Tuple[str, str, str, str]] = field(default_factory=list)


# ----------------------------------------------------------------------
# worker entry points (module-level: picklable under any start method)
# ----------------------------------------------------------------------
def _build_run_task(config, kind: str, workload: str, cache_root) -> Dict:
    """Build (or cache-load) one measurement run in a worker process."""
    from ..experiments.pipeline import ExperimentPipeline

    cache = ArtifactCache(cache_root) if cache_root is not None else None
    pipeline = ExperimentPipeline(config, cache=cache)
    run = getattr(pipeline, f"{kind}_run")(workload)
    return {"payload": run_to_dict(run), "built": pipeline.builds["run"]}


def _build_synopsis_task(
    config,
    workload: str,
    tier: str,
    level: str,
    learner: str,
    run_payload: Optional[Dict],
    cache_root,
) -> Dict:
    """Train (or cache-load) one synopsis in a worker process."""
    from ..experiments.pipeline import ExperimentPipeline

    cache = ArtifactCache(cache_root) if cache_root is not None else None
    pipeline = ExperimentPipeline(config, cache=cache)
    if run_payload is not None:
        pipeline.adopt_run("training", workload, run_from_dict(run_payload))
    synopsis = pipeline.synopsis(workload, tier, level, learner)
    return {"payload": synopsis.to_dict(), "built": pipeline.builds["synopsis"]}


# ----------------------------------------------------------------------
def warm_pipeline(
    pipeline,
    jobs: Optional[int] = None,
    *,
    test_workloads: Optional[Sequence[str]] = None,
    include_stress: bool = False,
    levels: Optional[Sequence[str]] = None,
    learners: Optional[Sequence[str]] = None,
    tiers: Optional[Sequence[str]] = None,
) -> WarmReport:
    """Fan the pipeline's runs and synopses out over worker processes.

    With ``jobs == 1`` everything is built serially in-process (the
    reference order); with more jobs, independent artifacts build
    concurrently and are merged in that same canonical order.  Already
    memoized artifacts are never rebuilt.
    """
    from ..experiments.pipeline import (
        LEVELS,
        PIPELINE_TIERS,
        TEST_WORKLOADS,
        TRAINING_WORKLOADS,
    )
    from ..learners.base import learner_names

    jobs = resolve_jobs(jobs)
    test_workloads = tuple(test_workloads if test_workloads is not None else TEST_WORKLOADS)
    levels = tuple(levels if levels is not None else LEVELS)
    learners = tuple(learners if learners is not None else learner_names())
    tiers = tuple(tiers if tiers is not None else PIPELINE_TIERS)

    report = WarmReport(jobs=jobs)

    # canonical task lists, in the order a serial build would run them
    run_tasks: List[Tuple[str, str]] = [
        ("training", w) for w in TRAINING_WORKLOADS
    ] + [("test", w) for w in test_workloads]
    if include_stress:
        run_tasks += [("stress", w) for w in TRAINING_WORKLOADS]
    run_tasks = [
        (kind, w) for kind, w in run_tasks if not pipeline.has_run(kind, w)
    ]
    synopsis_tasks: List[Tuple[str, str, str, str]] = [
        (w, tier, level, learner)
        for w in TRAINING_WORKLOADS
        for tier in tiers
        for level in levels
        for learner in learners
        if not pipeline.has_synopsis(w, tier, level, learner)
    ]
    report.run_keys = list(run_tasks)
    report.synopsis_keys = list(synopsis_tasks)

    t0 = OBS.clock() if OBS.enabled else None
    if t0 is not None:
        OBS.set(
            "repro_parallel_jobs",
            jobs,
            help="worker count of the most recent warm_pipeline call",
        )
        OBS.inc(
            "repro_parallel_tasks_total",
            amount=len(run_tasks),
            help="artifact build tasks scheduled, by kind",
            kind="run",
        )
        OBS.inc(
            "repro_parallel_tasks_total",
            amount=len(synopsis_tasks),
            help="artifact build tasks scheduled, by kind",
            kind="synopsis",
        )

    cache_root = pipeline.cache.root if pipeline.cache is not None else None

    if jobs == 1 or not (run_tasks or synopsis_tasks):
        before = dict(pipeline.builds)
        for kind, workload in run_tasks:
            getattr(pipeline, f"{kind}_run")(workload)
        for workload, tier, level, learner in synopsis_tasks:
            pipeline.synopsis(workload, tier, level, learner)
        report.runs_built = pipeline.builds["run"] - before.get("run", 0)
        report.synopses_built = (
            pipeline.builds["synopsis"] - before.get("synopsis", 0)
        )
        report.runs_cached = len(run_tasks) - report.runs_built
        report.synopses_cached = len(synopsis_tasks) - report.synopses_built
        if t0 is not None:
            OBS.observe_span("parallel_warm", OBS.clock() - t0)
        return report

    config = pipeline.config
    max_workers = min(jobs, max(len(run_tasks), len(synopsis_tasks), 1))
    with WorkerPool(max_workers) as pool:
        # phase 1: measurement runs, merged in canonical (task) order
        run_results = pool.map_ordered(
            _build_run_task,
            [
                (config, kind, workload, cache_root)
                for kind, workload in run_tasks
            ],
        )
        for (kind, workload), result in zip(run_tasks, run_results):
            pipeline.adopt_run(
                kind, workload, run_from_dict(result["payload"])
            )
            report.runs_built += result["built"]
        report.runs_cached = len(run_tasks) - report.runs_built

        # phase 2: synopses, each shipped its own training run payload
        train_payloads = {
            w: run_to_dict(pipeline.training_run(w))
            for w in sorted({task[0] for task in synopsis_tasks})
        }
        synopsis_results = pool.map_ordered(
            _build_synopsis_task,
            [
                (
                    config,
                    workload,
                    tier,
                    level,
                    learner,
                    train_payloads[workload],
                    cache_root,
                )
                for workload, tier, level, learner in synopsis_tasks
            ],
        )
        from ..core.synopsis import PerformanceSynopsis

        for key, result in zip(synopsis_tasks, synopsis_results):
            pipeline.adopt_synopsis(
                *key, PerformanceSynopsis.from_dict(result["payload"])
            )
            report.synopses_built += result["built"]
        report.synopses_cached = len(synopsis_tasks) - report.synopses_built
    if t0 is not None:
        OBS.observe_span("parallel_warm", OBS.clock() - t0)
    return report

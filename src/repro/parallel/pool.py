"""Long-lived worker processes with targeted dispatch.

:class:`~concurrent.futures.ProcessPoolExecutor` hands tasks to
*whichever* worker frees up first — fine for stateless artifact builds,
useless for sharded serving, where worker ``i`` owns shard ``i``'s
mutable :class:`~repro.control.fleet.FleetState` and every chunk of
traffic must land on the worker that holds its sites.
:class:`WorkerPool` is the thin substrate both cases share:

* one long-lived process per worker over a duplex
  :class:`~multiprocessing.connection.Connection`, tasks executed FIFO
  per worker;
* a warm-up handshake — each worker runs the pool's ``initializer``
  (e.g. rebuilding a broadcast meter payload into a live shard) and
  reports readiness before :meth:`WorkerPool.__init__` returns, so
  startup cost never pollutes steady-state timing;
* *targeted* dispatch (:meth:`submit` / :meth:`result` per worker
  index) with deterministic collection helpers on top:
  :meth:`broadcast` (everyone, results in worker order) and
  :meth:`map_ordered` (round-robin, results in task order — the
  canonical-merge contract :func:`~repro.parallel.engine.warm_pipeline`
  relies on);
* raw reply access (:meth:`result_bytes` + :meth:`load_result`) so a
  caller can pull chunk ``k``'s reply off every pipe, hand out chunk
  ``k + 1``, and only then pay the unpickling cost — overlapping the
  parent's merge work with the workers' compute.

Payloads cross the pipes as :data:`pickle.HIGHEST_PROTOCOL` blobs via
``send_bytes`` (measurably faster than ``Connection.send``'s default
protocol for numpy-heavy payloads), and pickle's per-``dumps``
memoization means objects shared within one task result — e.g. cohort
windows shared by many decisions — are serialized once.

Supervision
-----------
The pool assumes workers can die.  Every reply read distinguishes the
three failure modes a real process fabric exhibits:

* a task that *raised* travels back as an ``("err", ...)`` reply and
  surfaces as :class:`WorkerError` with the remote traceback;
* a worker that *crashed* (SIGKILL, OOM, segfault) surfaces as
  :class:`WorkerCrash` carrying its exitcode — detected eagerly via
  ``Connection.poll`` + liveness checks rather than a blocking ``recv``
  that would hang on a half-dead pipe;
* a worker that *hangs* surfaces as :class:`WorkerTimeout` once the
  caller-supplied reply deadline passes (``timeout=None`` keeps the
  historical block-forever behaviour, but still detects crashes).

:meth:`respawn` replaces a dead (or condemned) worker with a fresh
process over a fresh pipe and re-runs the pool initializer warm-up, so
a supervisor can rebuild worker state (e.g. resume a shard from its
checkpoint) without tearing the whole pool down.  Transient IPC errors
(EINTR/EAGAIN) retry with bounded backoff via
:func:`repro.faults.retry.retry_io`; :meth:`close` escalates
join → terminate → kill so shutdown can never hang on a wedged worker.
"""

from __future__ import annotations

import multiprocessing
import pickle
import signal
import time
import traceback
from multiprocessing.connection import Connection
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..faults.retry import retry_io

__all__ = ["WorkerCrash", "WorkerError", "WorkerPool", "WorkerTimeout"]

#: transient IPC errors worth retrying with bounded backoff; anything
#: else (BrokenPipeError, EOFError) means the peer is gone
_TRANSIENT_IPC = (InterruptedError, BlockingIOError)

#: granularity of the poll loop used for liveness + deadline checks
_POLL_STEP = 0.05


class WorkerError(RuntimeError):
    """A task (or the initializer) raised inside a worker process.

    Carries the worker-side traceback text so the parent's stack trace
    shows *both* sides of the pipe.
    """

    def __init__(self, worker: int, message: str, remote_traceback: str):
        super().__init__(
            f"worker {worker}: {message}\n"
            f"--- worker traceback ---\n{remote_traceback}"
        )
        self.worker = worker
        self.remote_traceback = remote_traceback


class WorkerCrash(WorkerError):
    """The worker *process* died before replying (kill/OOM/segfault)."""

    def __init__(self, worker: int, exitcode: Optional[int]):
        super().__init__(
            worker,
            f"worker process died before replying (exitcode={exitcode})",
            "<no worker traceback: the process is gone>",
        )
        self.exitcode = exitcode


class WorkerTimeout(WorkerError):
    """The worker produced no reply within the supervision deadline."""

    def __init__(self, worker: int, timeout: float):
        super().__init__(
            worker,
            f"no reply within {timeout:.3f}s (worker presumed hung)",
            "<no worker traceback: the worker never replied>",
        )
        self.timeout = timeout


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _worker_main(
    conn: Connection,
    worker_index: int,
    initializer: Optional[Callable[..., Any]],
    initargs: Tuple[Any, ...],
) -> None:
    """Worker loop: handshake, then execute tasks FIFO until "stop"."""
    # a terminal ctrl-C delivers SIGINT to the whole foreground process
    # group; if workers died on it mid-task the parent's graceful
    # shutdown would find half-written pipes.  The parent coordinates
    # shutdown ("stop", then close() escalation), so workers ignore it.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):
        pass  # non-main thread or exotic platform: keep the default
    try:
        if initializer is not None:
            initializer(worker_index, *initargs)
        conn.send_bytes(_dumps(("ok", worker_index)))
    except BaseException as exc:  # noqa: B036 - report, then die
        conn.send_bytes(
            _dumps(
                (
                    "err",
                    f"initializer failed: {type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
            )
        )
        return
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except EOFError:
            return  # parent died or closed without "stop"
        if message[0] == "stop":
            return
        _, fn, args, kwargs = message
        try:
            reply: Tuple[Any, ...] = ("ok", fn(*args, **kwargs))
        except BaseException as exc:  # noqa: B036 - ship it to the parent
            reply = (
                "err",
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            )
        conn.send_bytes(_dumps(reply))


class WorkerPool:
    """``workers`` long-lived processes with per-worker FIFO pipes."""

    def __init__(
        self,
        workers: int,
        *,
        initializer: Optional[Callable[..., Any]] = None,
        initargs: Tuple[Any, ...] = (),
        context: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        if context is None:
            # fork (where available) inherits broadcast initargs without
            # pickling them per worker; spawn platforms pickle them once
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
        self.size = workers
        self._context = context
        self._initializer = initializer
        self._initargs: List[Tuple[Any, ...]] = [initargs] * workers
        self._conns: List[Connection] = []
        self._procs: List[Any] = []
        self._closed = False
        for index in range(workers):
            conn, proc = self._spawn(index, initializer, initargs)
            self._conns.append(conn)
            self._procs.append(proc)
        # warm-up barrier: every worker finished its initializer
        for index in range(workers):
            self.load_result(self.result_bytes(index), index)

    def _spawn(
        self,
        index: int,
        initializer: Optional[Callable[..., Any]],
        initargs: Tuple[Any, ...],
    ) -> Tuple[Connection, Any]:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        proc = self._context.Process(
            target=_worker_main,
            args=(child_conn, index, initializer, initargs),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    # ------------------------------------------------------------------
    # liveness and supervision
    # ------------------------------------------------------------------
    def alive(self, worker: int) -> bool:
        """Is ``worker``'s process currently running?"""
        return bool(self._procs[worker].is_alive())

    def exitcode(self, worker: int) -> Optional[int]:
        """``worker``'s process exitcode (None while it runs)."""
        code = self._procs[worker].exitcode
        return None if code is None else int(code)

    def pid(self, worker: int) -> Optional[int]:
        """``worker``'s process id (None before start)."""
        pid = self._procs[worker].pid
        return None if pid is None else int(pid)

    def poll(self, worker: int) -> bool:
        """Non-blocking: is a reply (or a crash) waiting on ``worker``?

        True means the next :meth:`result` call will not block on the
        task itself — either the reply bytes are buffered on the pipe
        or the worker died and collection will raise its crash.  Lets
        callers run background work (e.g. a retrain build) without ever
        stalling their own loop.
        """
        if not self._procs[worker].is_alive():
            return True
        try:
            return bool(self._conns[worker].poll(0))
        except (OSError, ValueError, EOFError):
            return True

    def _crash(self, worker: int) -> WorkerCrash:
        """Build a :class:`WorkerCrash`, harvesting the exitcode first.

        A broken pipe can surface before the dead child has been
        reaped, when ``exitcode`` still reads ``None``; a short join
        makes the code available to the supervisor's accounting.
        """
        proc = self._procs[worker]
        try:
            proc.join(timeout=1.0)
        except (OSError, ValueError, AssertionError):
            pass
        return WorkerCrash(worker, self.exitcode(worker))

    def reap(self, worker: int) -> None:
        """Force ``worker``'s process down and close its pipe.

        Escalates terminate → kill so a wedged worker can't stall the
        caller; idempotent on an already-dead worker.  The slot stays
        allocated — :meth:`respawn` brings it back.
        """
        proc = self._procs[worker]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():
            proc.kill()
            proc.join()
        try:
            self._conns[worker].close()
        except OSError:
            pass

    def respawn(
        self, worker: int, *, initargs: Optional[Tuple[Any, ...]] = None
    ) -> None:
        """Replace ``worker`` with a fresh process over a fresh pipe.

        The old process (if still running) is reaped first; the new one
        runs the pool's initializer warm-up — with ``initargs``
        overriding the originals when given (e.g. pointing a rebuilt
        shard at its recovery checkpoint) — and this call returns only
        after the handshake, so the worker is ready for tasks.
        Initializer failure surfaces as :class:`WorkerError`.
        """
        self.reap(worker)
        if initargs is not None:
            self._initargs[worker] = initargs
        conn, proc = self._spawn(
            worker, self._initializer, self._initargs[worker]
        )
        self._conns[worker] = conn
        self._procs[worker] = proc
        self.load_result(self.result_bytes(worker), worker)

    # ------------------------------------------------------------------
    # targeted dispatch
    # ------------------------------------------------------------------
    def submit(
        self, worker: int, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> None:
        """Queue one task on ``worker`` (tasks run FIFO per worker).

        Transient IPC errors (EINTR/EAGAIN) retry with bounded backoff;
        a broken pipe means the worker died and raises
        :class:`WorkerCrash`.
        """
        blob = _dumps(("call", fn, args, kwargs))
        try:
            retry_io(
                lambda: self._conns[worker].send_bytes(blob),
                retry_on=_TRANSIENT_IPC,
                base_delay=0.01,
                max_delay=0.1,
            )
        except (BrokenPipeError, EOFError, OSError, ValueError):
            raise self._crash(worker) from None

    def result_bytes(
        self, worker: int, timeout: Optional[float] = None
    ) -> bytes:
        """The next raw reply blob from ``worker``.

        Waits in a bounded poll loop rather than a blocking ``recv``:
        a worker that died surfaces as :class:`WorkerCrash` (even with
        ``timeout=None``) and one that produced nothing within
        ``timeout`` seconds as :class:`WorkerTimeout`.
        """
        conn = self._conns[worker]
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                ready = retry_io(
                    lambda: conn.poll(_POLL_STEP),
                    retry_on=_TRANSIENT_IPC,
                    base_delay=0.01,
                    max_delay=0.1,
                )
                if ready:
                    return conn.recv_bytes()
            except (EOFError, BrokenPipeError, OSError):
                raise self._crash(worker) from None
            if not self._procs[worker].is_alive():
                # the process is gone; drain any reply it flushed
                # before dying, then report the crash
                try:
                    if conn.poll(0):
                        return conn.recv_bytes()
                except (EOFError, BrokenPipeError, OSError):
                    pass
                raise self._crash(worker)
            if deadline is not None and time.monotonic() >= deadline:
                raise WorkerTimeout(worker, timeout or 0.0)

    def load_result(self, blob: bytes, worker: int = -1) -> Any:
        """Decode a raw reply blob, raising :class:`WorkerError` on err.

        ``worker`` threads the origin index into the raised error so
        shard-level handling can name the failed shard.
        """
        reply = pickle.loads(blob)
        if reply[0] == "ok":
            return reply[1]
        _, message, remote_traceback = reply
        raise WorkerError(worker, message, remote_traceback)

    def result(self, worker: int, timeout: Optional[float] = None) -> Any:
        """The next decoded reply from ``worker``."""
        return self.load_result(self.result_bytes(worker, timeout), worker)

    def call(
        self, worker: int, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Any:
        """Synchronous round-trip on one worker."""
        self.submit(worker, fn, *args, **kwargs)
        return self.result(worker)

    # ------------------------------------------------------------------
    # deterministic collection helpers
    # ------------------------------------------------------------------
    def broadcast(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> List[Any]:
        """Run ``fn`` on every worker; results in worker order."""
        for worker in range(self.size):
            self.submit(worker, fn, *args, **kwargs)
        return [self.result(worker) for worker in range(self.size)]

    def map_ordered(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple[Any, ...]],
    ) -> List[Any]:
        """Run ``fn(*task)`` for every task; results in *task* order.

        Tasks go round-robin with at most one outstanding per worker, so
        completion order can never leak into the result order (the same
        canonical-merge guarantee the old executor path provided by
        zipping futures with the submission list).
        """
        results: List[Any] = [None] * len(tasks)
        for index, task in enumerate(tasks):
            worker = index % self.size
            if index >= self.size:
                # the worker's previous task (index - size) finishes
                # before it accepts this one; collect it now
                results[index - self.size] = self.result(worker)
            self.submit(worker, fn, *task)
        for index in range(max(0, len(tasks) - self.size), len(tasks)):
            results[index] = self.result(index % self.size)
        return results

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker and reap the processes (idempotent).

        Escalates join → terminate → kill per worker so shutdown can
        never hang on a wedged or signal-ignoring process; every child
        is fully reaped (no zombies) before this returns.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send_bytes(_dumps(("stop",)))
            except (OSError, ValueError):
                pass  # worker already gone
        for proc, conn in zip(self._procs, self._conns):
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
            if proc.is_alive():
                proc.kill()  # SIGKILL cannot be ignored
                proc.join()
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

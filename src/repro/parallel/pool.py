"""Long-lived worker processes with targeted dispatch.

:class:`~concurrent.futures.ProcessPoolExecutor` hands tasks to
*whichever* worker frees up first — fine for stateless artifact builds,
useless for sharded serving, where worker ``i`` owns shard ``i``'s
mutable :class:`~repro.control.fleet.FleetState` and every chunk of
traffic must land on the worker that holds its sites.
:class:`WorkerPool` is the thin substrate both cases share:

* one long-lived process per worker over a duplex
  :class:`~multiprocessing.connection.Connection`, tasks executed FIFO
  per worker;
* a warm-up handshake — each worker runs the pool's ``initializer``
  (e.g. rebuilding a broadcast meter payload into a live shard) and
  reports readiness before :meth:`WorkerPool.__init__` returns, so
  startup cost never pollutes steady-state timing;
* *targeted* dispatch (:meth:`submit` / :meth:`result` per worker
  index) with deterministic collection helpers on top:
  :meth:`broadcast` (everyone, results in worker order) and
  :meth:`map_ordered` (round-robin, results in task order — the
  canonical-merge contract :func:`~repro.parallel.engine.warm_pipeline`
  relies on);
* raw reply access (:meth:`result_bytes` + :meth:`load_result`) so a
  caller can pull chunk ``k``'s reply off every pipe, hand out chunk
  ``k + 1``, and only then pay the unpickling cost — overlapping the
  parent's merge work with the workers' compute.

Payloads cross the pipes as :data:`pickle.HIGHEST_PROTOCOL` blobs via
``send_bytes`` (measurably faster than ``Connection.send``'s default
protocol for numpy-heavy payloads), and pickle's per-``dumps``
memoization means objects shared within one task result — e.g. cohort
windows shared by many decisions — are serialized once.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from multiprocessing.connection import Connection
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["WorkerError", "WorkerPool"]


class WorkerError(RuntimeError):
    """A task (or the initializer) raised inside a worker process.

    Carries the worker-side traceback text so the parent's stack trace
    shows *both* sides of the pipe.
    """

    def __init__(self, worker: int, message: str, remote_traceback: str):
        super().__init__(
            f"worker {worker}: {message}\n"
            f"--- worker traceback ---\n{remote_traceback}"
        )
        self.worker = worker
        self.remote_traceback = remote_traceback


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _worker_main(
    conn: Connection,
    worker_index: int,
    initializer: Optional[Callable[..., Any]],
    initargs: Tuple[Any, ...],
) -> None:
    """Worker loop: handshake, then execute tasks FIFO until "stop"."""
    try:
        if initializer is not None:
            initializer(worker_index, *initargs)
        conn.send_bytes(_dumps(("ok", worker_index)))
    except BaseException as exc:  # noqa: B036 - report, then die
        conn.send_bytes(
            _dumps(
                (
                    "err",
                    f"initializer failed: {type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
            )
        )
        return
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except EOFError:
            return  # parent died or closed without "stop"
        if message[0] == "stop":
            return
        _, fn, args, kwargs = message
        try:
            reply: Tuple[Any, ...] = ("ok", fn(*args, **kwargs))
        except BaseException as exc:  # noqa: B036 - ship it to the parent
            reply = (
                "err",
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            )
        conn.send_bytes(_dumps(reply))


class WorkerPool:
    """``workers`` long-lived processes with per-worker FIFO pipes."""

    def __init__(
        self,
        workers: int,
        *,
        initializer: Optional[Callable[..., Any]] = None,
        initargs: Tuple[Any, ...] = (),
        context: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        if context is None:
            # fork (where available) inherits broadcast initargs without
            # pickling them per worker; spawn platforms pickle them once
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
        self.size = workers
        self._conns: List[Connection] = []
        self._procs: List[Any] = []
        self._closed = False
        for index in range(workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            proc = context.Process(
                target=_worker_main,
                args=(child_conn, index, initializer, initargs),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        # warm-up barrier: every worker finished its initializer
        for index in range(workers):
            self.load_result(self.result_bytes(index))

    # ------------------------------------------------------------------
    # targeted dispatch
    # ------------------------------------------------------------------
    def submit(
        self, worker: int, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> None:
        """Queue one task on ``worker`` (tasks run FIFO per worker)."""
        self._conns[worker].send_bytes(
            _dumps(("call", fn, args, kwargs))
        )

    def result_bytes(self, worker: int) -> bytes:
        """The next raw reply blob from ``worker`` (blocking)."""
        try:
            return self._conns[worker].recv_bytes()
        except EOFError:
            raise WorkerError(
                worker,
                "worker process died before replying",
                f"exitcode={self._procs[worker].exitcode}",
            ) from None

    def load_result(self, blob: bytes) -> Any:
        """Decode a raw reply blob, raising :class:`WorkerError` on err."""
        reply = pickle.loads(blob)
        if reply[0] == "ok":
            return reply[1]
        _, message, remote_traceback = reply
        raise WorkerError(-1, message, remote_traceback)

    def result(self, worker: int) -> Any:
        """The next decoded reply from ``worker`` (blocking)."""
        reply = pickle.loads(self.result_bytes(worker))
        if reply[0] == "ok":
            return reply[1]
        _, message, remote_traceback = reply
        raise WorkerError(worker, message, remote_traceback)

    def call(
        self, worker: int, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Any:
        """Synchronous round-trip on one worker."""
        self.submit(worker, fn, *args, **kwargs)
        return self.result(worker)

    # ------------------------------------------------------------------
    # deterministic collection helpers
    # ------------------------------------------------------------------
    def broadcast(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> List[Any]:
        """Run ``fn`` on every worker; results in worker order."""
        for worker in range(self.size):
            self.submit(worker, fn, *args, **kwargs)
        return [self.result(worker) for worker in range(self.size)]

    def map_ordered(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple[Any, ...]],
    ) -> List[Any]:
        """Run ``fn(*task)`` for every task; results in *task* order.

        Tasks go round-robin with at most one outstanding per worker, so
        completion order can never leak into the result order (the same
        canonical-merge guarantee the old executor path provided by
        zipping futures with the submission list).
        """
        results: List[Any] = [None] * len(tasks)
        for index, task in enumerate(tasks):
            worker = index % self.size
            if index >= self.size:
                # the worker's previous task (index - size) finishes
                # before it accepts this one; collect it now
                results[index - self.size] = self.result(worker)
            self.submit(worker, fn, *task)
        for index in range(max(0, len(tasks) - self.size), len(tasks)):
            results[index] = self.result(index % self.size)
        return results

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and reap the processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send_bytes(_dumps(("stop",)))
            except (OSError, ValueError):
                pass  # worker already gone
        for proc, conn in zip(self._procs, self._conns):
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

"""Parallel experiment engine and persistent artifact cache.

Two pieces make regeneration of the paper's artifacts cheap enough for
the online setting the paper argues for:

* :mod:`repro.parallel.engine` — a process-pool fan-out over the
  independent artifacts (measurement runs, per-(workload, tier, level,
  learner) synopses) with a deterministic-merge guarantee: parallel
  results are bit-identical to a serial build;
* :mod:`repro.parallel.cache` — a content-addressed on-disk cache so a
  second invocation (CLI or CI) skips simulation and training
  entirely.

See ``docs/architecture.md`` for the cache keying rules.
"""

from .cache import SCHEMA_VERSION, ArtifactCache, default_cache_dir
from .engine import WarmReport, resolve_jobs, warm_pipeline

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactCache",
    "default_cache_dir",
    "WarmReport",
    "resolve_jobs",
    "warm_pipeline",
]

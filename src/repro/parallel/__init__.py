"""Parallel experiment engine and persistent artifact cache.

Three pieces make regeneration of the paper's artifacts cheap enough
for the online setting the paper argues for:

* :mod:`repro.parallel.pool` — long-lived worker processes with a
  warm-up handshake and *targeted* dispatch, shared by the artifact
  fan-out below and the sharded
  :class:`~repro.control.shard.ShardedCapacityService`;
* :mod:`repro.parallel.engine` — a fan-out over the independent
  artifacts (measurement runs, per-(workload, tier, level, learner)
  synopses) with a deterministic-merge guarantee: parallel results are
  bit-identical to a serial build;
* :mod:`repro.parallel.cache` — a content-addressed on-disk cache so a
  second invocation (CLI or CI) skips simulation and training
  entirely.

See ``docs/architecture.md`` for the cache keying rules.
"""

from .cache import SCHEMA_VERSION, ArtifactCache, default_cache_dir
from .engine import WarmReport, resolve_jobs, warm_pipeline
from .pool import WorkerError, WorkerPool

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactCache",
    "default_cache_dir",
    "WarmReport",
    "WorkerError",
    "WorkerPool",
    "resolve_jobs",
    "warm_pipeline",
]

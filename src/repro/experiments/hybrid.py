"""Extension — hybrid OS+HPC attribute sets (paper Section VII).

The paper closes by noting its model "can be further extended to
combine hardware counter level metrics with OS level metrics to capture
I/O related performance problems."  The telemetry layer supports a
``hybrid`` metric level whose attribute space is the prefixed union of
both vocabularies; this experiment trains coordinated meters at all
three levels and compares them across the four test workloads.

Measured shape — a caution for the paper's proposed extension: where
counter signals dominate (the ordering mix) hybrid selection simply
picks them and matches the HPC level, but doubling the attribute space
also doubles the opportunities for information-gain ranking to admit
noisy OS gauges on spurious within-training correlations.  On small
training sets the hybrid level can therefore *underperform both*
constituents for some workloads; combining the levels needs stronger
regularization than the paper's iterative selection provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..telemetry.sampler import HPC_LEVEL, HYBRID_LEVEL, OS_LEVEL
from .pipeline import ExperimentPipeline, TEST_WORKLOADS

__all__ = ["HybridComparison", "run_hybrid_comparison"]


@dataclass
class HybridComparison:
    """Coordinated overload BA per level per workload."""

    results: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[str]:
        levels = list(self.results)
        out = ["Hybrid-attribute extension (coordinated overload BA):"]
        out.append(
            f"{'Workload':12} " + " ".join(f"{lvl:>8}" for lvl in levels)
        )
        for workload in TEST_WORKLOADS:
            cols = " ".join(
                f"{self.results[lvl][workload]:8.3f}" for lvl in levels
            )
            out.append(f"{workload:12} {cols}")
        return out


def run_hybrid_comparison(pipeline: ExperimentPipeline) -> HybridComparison:
    """Coordinated accuracy at OS, HPC and hybrid metric levels."""
    comparison = HybridComparison()
    for level in (OS_LEVEL, HPC_LEVEL, HYBRID_LEVEL):
        meter = pipeline.meter(level)
        comparison.results[level] = {
            workload: meter.evaluate_instances(
                pipeline.coordinated_instances(workload, level)
            )["overload_ba"]
            for workload in TEST_WORKLOADS
        }
    return comparison

"""Figure 3 — effectiveness of PI in reflecting high-level performance.

The paper drives the testbed into overload with the ordering mix,
selects the PI (yield/cost pair and tier) by the correlation measure
Corr, and plots PI against throughput, both normalized to their
geometric means: the two series agree closely, and PI reacts to
overload episodes at least as fast as throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.pi import (
    PiDefinition,
    correlation,
    normalize_to_geometric_mean,
    pi_series,
    select_best_pi,
    throughput_series,
)
from ..telemetry.sampler import MeasurementRun
from .pipeline import ExperimentPipeline

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    """The two normalized series of Figure 3 plus their agreement."""

    workload: str
    definition: PiDefinition
    times: np.ndarray
    pi_normalized: np.ndarray
    throughput_normalized: np.ndarray
    corr: float

    def rows(self, every: int = 30) -> List[str]:
        """Text rendering: sparklines plus one row per ``every`` intervals."""
        from ..analysis.plotting import series_plot

        out = [
            f"Fig.3 [{self.workload}] PI={self.definition.label}  "
            f"Corr={self.corr:.3f}"
        ]
        out.extend(
            series_plot(
                {
                    "PI/gmean": self.pi_normalized,
                    "thr/gmean": self.throughput_normalized,
                }
            )
        )
        out.append(f"{'t(s)':>8} {'PI/gmean':>10} {'thr/gmean':>10}")
        for i in range(0, len(self.times), every):
            out.append(
                f"{self.times[i]:8.0f} {self.pi_normalized[i]:10.3f} "
                f"{self.throughput_normalized[i]:10.3f}"
            )
        return out


def run_fig3(
    pipeline: ExperimentPipeline, workload: str = "ordering"
) -> Fig3Result:
    """Regenerate Figure 3 from a capacity-stress run.

    The paper drives the testbed *into an overloaded state* and holds
    it around saturation; only there is throughput capacity-limited and
    the PI/throughput comparison meaningful (during a pure ramp,
    throughput tracks offered load instead).  The ordering mix
    saturates the app tier, so Corr should select an app-tier PI and
    the two normalized series should track each other.
    """
    run: MeasurementRun = pipeline.stress_run(workload)
    definition, corr = select_best_pi(run)
    pi = pi_series(run, definition)
    thr = throughput_series(run)
    times = np.array([r.t_start for r in run.records])
    return Fig3Result(
        workload=workload,
        definition=definition,
        times=times,
        pi_normalized=normalize_to_geometric_mean(pi),
        throughput_normalized=normalize_to_geometric_mean(thr),
        corr=correlation(pi, thr),
    )

"""Experiment harness: testbed orchestration and paper artifacts.

One module per paper artifact — Figure 3 (:mod:`~repro.experiments.fig3`),
Table I (:mod:`~repro.experiments.table1`), Figure 4
(:mod:`~repro.experiments.fig4`), the Section V.B timing comparison
(:mod:`~repro.experiments.timing`), the Section V.D collection-overhead
experiment (:mod:`~repro.experiments.overhead`) and the Section V.C
ablations (:mod:`~repro.experiments.ablation`) — all sharing runs,
synopses and meters through :mod:`~repro.experiments.pipeline`.
"""

from .ablation import (
    DeltaAblation,
    FallbackAblation,
    HistoryAblation,
    SchemeAblation,
    run_delta_ablation,
    run_fallback_ablation,
    run_history_ablation,
    run_scheme_ablation,
)
from .fig3 import Fig3Result, run_fig3
from .hybrid import HybridComparison, run_hybrid_comparison
from .fig4 import Fig4Cell, Fig4Result, run_fig4
from .overhead import OverheadResult, run_overhead
from .pipeline import (
    LEVELS,
    PIPELINE_TIERS,
    TEST_WORKLOADS,
    TRAINING_WORKLOADS,
    ExperimentPipeline,
    PipelineConfig,
    get_pipeline,
    reset_pipelines,
)
from .table1 import Table1Cell, Table1Result, run_table1
from .testbed import (
    RunOutput,
    TestbedConfig,
    estimate_saturation,
    interleaved_test_schedule,
    run_schedule,
    steady_test_schedule,
    stress_schedule,
    training_schedule,
    unknown_test_schedule,
)
from .timing import TimingResult, measure_build_and_decide, run_timing

__all__ = [
    "DeltaAblation",
    "ExperimentPipeline",
    "FallbackAblation",
    "Fig3Result",
    "Fig4Cell",
    "Fig4Result",
    "HistoryAblation",
    "HybridComparison",
    "LEVELS",
    "OverheadResult",
    "PipelineConfig",
    "RunOutput",
    "SchemeAblation",
    "TEST_WORKLOADS",
    "TRAINING_WORKLOADS",
    "Table1Cell",
    "Table1Result",
    "TestbedConfig",
    "TimingResult",
    "estimate_saturation",
    "get_pipeline",
    "reset_pipelines",
    "PIPELINE_TIERS",
    "interleaved_test_schedule",
    "measure_build_and_decide",
    "run_delta_ablation",
    "run_fallback_ablation",
    "run_fig3",
    "run_fig4",
    "run_history_ablation",
    "run_hybrid_comparison",
    "run_overhead",
    "run_scheme_ablation",
    "run_schedule",
    "run_table1",
    "run_timing",
    "steady_test_schedule",
    "stress_schedule",
    "training_schedule",
    "unknown_test_schedule",
]

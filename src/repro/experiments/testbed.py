"""Standard experiment testbed: build, size and run workloads.

Reproduces the paper's experimental setup (Section IV.B): a two-tier
Tomcat/MySQL-style website driven by TPC-W traffic, with hardware- and
OS-level statistics sampled every second.

Populations are sized analytically from the traffic mix: the mean
per-tier CPU demand gives each tier's saturation request rate; the
closed-loop EB population needed to reach it follows from the think
time.  All schedules are expressed in multiples of the saturation
population so they survive re-calibration of the simulator, and a
``scale`` factor shrinks run durations for quick tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..simulator import (
    AppServer,
    DatabaseServer,
    MultiTierWebsite,
    PENTIUM4_SPEC,
    PENTIUMD_SPEC,
    Simulator,
)
from ..telemetry.perfctr import CollectorProfile, MetricsCollector
from ..telemetry.sampler import MeasurementRun, TelemetrySampler
from ..workload.generator import (
    Phase,
    ScheduleDriver,
    WorkloadSchedule,
    ramp_up,
    spike,
    staircase,
)
from ..workload.rbe import RemoteBrowserEmulator
from ..workload.tpcw import (
    BROWSING_MIX,
    ORDERING_MIX,
    TrafficMix,
    make_unknown_mix,
)
from ..workload.traces import TraceRecorder

__all__ = [
    "TestbedConfig",
    "RunOutput",
    "estimate_saturation",
    "run_schedule",
    "training_schedule",
    "steady_test_schedule",
    "stress_schedule",
    "interleaved_test_schedule",
    "unknown_test_schedule",
]


@dataclass(frozen=True)
class TestbedConfig:
    """Knobs of the simulated testbed and its client population."""

    think_time_mean: float = 1.0
    continuity: float = 0.3
    app_workers: int = 80
    db_connections: int = 24
    sampling_interval: float = 1.0
    hpc_noise: float = 0.03
    os_noise: float = 0.05
    #: assumed lightly-loaded response time when sizing populations
    base_response_time: float = 0.12


@dataclass
class RunOutput:
    """Everything produced by one testbed execution."""

    run: MeasurementRun
    trace: TraceRecorder
    events_executed: int
    samples_collected: int = 0


def estimate_saturation(
    mix: TrafficMix, config: TestbedConfig = TestbedConfig()
) -> Tuple[float, int]:
    """(saturation request rate, saturation EB population) for a mix.

    The bottleneck tier's aggregate nominal speed divided by the mix's
    mean demand gives the peak service rate; Little's law over the
    think/response loop converts it to a closed-loop population.
    """
    demands = mix.mean_demands()
    app_capacity = PENTIUM4_SPEC.cores * PENTIUM4_SPEC.speed_factor
    db_capacity = PENTIUMD_SPEC.cores * PENTIUMD_SPEC.speed_factor
    rates = []
    if demands["app"] > 0:
        rates.append(app_capacity / demands["app"])
    if demands["db"] > 0:
        rates.append(db_capacity / demands["db"])
    if not rates:
        raise ValueError("mix has zero demand on every tier")
    saturation_rate = min(rates)
    cycle = config.think_time_mean + config.base_response_time
    population = max(1, int(round(saturation_rate * cycle)))
    return saturation_rate, population


# ----------------------------------------------------------------------
# schedule builders (populations in multiples of the saturation point)
# ----------------------------------------------------------------------
def training_schedule(
    mix: TrafficMix,
    config: TestbedConfig = TestbedConfig(),
    *,
    scale: float = 1.0,
) -> WorkloadSchedule:
    """Ramp-up + spike, the paper's training workload composition."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    _, sat = estimate_saturation(mix, config)
    ramp = ramp_up(
        max(1, int(0.3 * sat)),
        int(2.0 * sat),
        2000.0 * scale,
        hold=400.0 * scale,
        mix=mix,
    )
    burst = spike(
        int(0.6 * sat),
        int(2.2 * sat),
        lead=200.0 * scale,
        width=200.0 * scale,
        tail=200.0 * scale,
        mix=mix,
    )
    return ramp.then(burst)


#: staircase load levels (fractions of the saturation population) used
#: by the steady testing workloads, in a non-monotonic order.  Levels
#: cluster around the saturation point on purpose: busy-but-healthy
#: states (0.85-0.92) already clip OS-level utilization at 100%, and
#: moderate overloads (1.1-1.7) droop throughput only mildly — the
#: regime where the paper shows hardware counters separate the states
#: and OS metrics cannot.
_TEST_LEVELS = (0.55, 0.97, 1.3, 0.9, 1.05, 0.75, 1.15, 1.0)

#: levels for capacity-stress runs (Fig. 3): the system hovers at and
#: above saturation so throughput variation is capacity-driven and the
#: PI/throughput correlation is meaningful.
_STRESS_LEVELS = (1.0, 1.25, 0.95, 1.5, 1.05, 1.35)


def steady_test_schedule(
    mix: TrafficMix,
    config: TestbedConfig = TestbedConfig(),
    *,
    scale: float = 1.0,
    step_duration: float = 240.0,
) -> WorkloadSchedule:
    """Staircase through under/over levels for one fixed mix."""
    _, sat = estimate_saturation(mix, config)
    levels = [max(1, int(f * sat)) for f in _TEST_LEVELS]
    return staircase(levels, step_duration * scale, mix=mix)


def stress_schedule(
    mix: TrafficMix,
    config: TestbedConfig = TestbedConfig(),
    *,
    scale: float = 1.0,
    step_duration: float = 240.0,
) -> WorkloadSchedule:
    """Hover at and beyond saturation (the Fig. 3 regime).

    With every level capacity-limited, the throughput series reflects
    what the system can *deliver*, so comparing it against Productivity
    Index series is meaningful (Equation 2's Corr).
    """
    _, sat = estimate_saturation(mix, config)
    levels = [max(1, int(f * sat)) for f in _STRESS_LEVELS]
    return staircase(levels, step_duration * scale, mix=mix)


def interleaved_test_schedule(
    config: TestbedConfig = TestbedConfig(),
    *,
    scale: float = 1.0,
    period: float = 240.0,
) -> WorkloadSchedule:
    """Alternate browsing/ordering at alternating load levels.

    Each mix appears both underloaded and overloaded, so the bottleneck
    keeps shifting between tiers *and* the state keeps flipping — the
    paper's hardest a-priori-known workload.
    """
    _, sat_b = estimate_saturation(BROWSING_MIX, config)
    _, sat_o = estimate_saturation(ORDERING_MIX, config)
    fractions = (0.6, 1.5, 0.85, 1.65)
    phases = []
    for i, fraction in enumerate(fractions):
        mix = BROWSING_MIX if i % 2 == 0 else ORDERING_MIX
        sat = sat_b if i % 2 == 0 else sat_o
        population = max(1, int(fraction * sat))
        phases.append(
            Phase(period * scale, (lambda n: lambda _t: n)(population), mix)
        )
    # second pass with mixes swapped against load levels
    for i, fraction in enumerate(fractions):
        mix = ORDERING_MIX if i % 2 == 0 else BROWSING_MIX
        sat = sat_o if i % 2 == 0 else sat_b
        population = max(1, int(fraction * sat))
        phases.append(
            Phase(period * scale, (lambda n: lambda _t: n)(population), mix)
        )
    return WorkloadSchedule(phases)


def unknown_test_schedule(
    config: TestbedConfig = TestbedConfig(),
    *,
    scale: float = 1.0,
    seed: int = 7,
    step_duration: float = 240.0,
) -> WorkloadSchedule:
    """Staircase under a mix unlike either training extreme."""
    mix = make_unknown_mix(seed=seed)
    return steady_test_schedule(
        mix, config, scale=scale, step_duration=step_duration
    )


# ----------------------------------------------------------------------
def run_schedule(
    schedule: WorkloadSchedule,
    initial_mix: TrafficMix,
    *,
    workload_name: str,
    seed: int = 1,
    config: TestbedConfig = TestbedConfig(),
    collector: Optional[CollectorProfile] = None,
    settle: float = 0.0,
) -> RunOutput:
    """Execute a schedule on a fresh testbed and collect telemetry.

    ``collector`` optionally attaches a metrics-collection agent whose
    CPU cost perturbs the system (the Section V.D experiment);
    ``settle`` runs the schedule's first population for a warm-up
    period before sampling starts.
    """
    sim = Simulator()
    app = AppServer(sim, workers=config.app_workers)
    db = DatabaseServer(sim, connections=config.db_connections)
    website = MultiTierWebsite(sim, app, db)
    trace = TraceRecorder()
    rbe = RemoteBrowserEmulator(
        sim,
        website,
        initial_mix,
        think_time_mean=config.think_time_mean,
        continuity=config.continuity,
        seed=seed,
        on_complete=trace,
    )
    if settle > 0:
        population, mix = schedule.at(0.0)
        if mix is not None:
            rbe.set_mix(mix)
        rbe.set_population(population)
        sim.run(until=settle)
        website.sample()  # discard warm-up statistics
    ScheduleDriver(sim, rbe, schedule)
    sampler = TelemetrySampler(
        sim,
        website,
        workload=workload_name,
        interval=config.sampling_interval,
        hpc_noise=config.hpc_noise,
        os_noise=config.os_noise,
        seed=seed,
    )
    agent = None
    if collector is not None:
        agent = MetricsCollector(sim, website, collector)
    sim.run(until=settle + schedule.duration)
    sampler.stop()
    return RunOutput(
        run=sampler.run,
        trace=trace,
        events_executed=sim.events_executed,
        samples_collected=agent.samples_taken if agent else 0,
    )

"""Section V.B timing — synopsis build + single-decision cost.

The paper measures "the execution time required to build a synopsis and
make a single decision" per learning algorithm: LR 90 ms, Naive 10 ms,
SVM 1710 ms, TAN 50 ms (WEKA, 2008 hardware).  Absolute numbers are
machine- and implementation-specific; the *ordering* is what matters
for the paper's conclusion that TAN is the best accuracy/cost
trade-off:

* SVM is one to two orders of magnitude more expensive than the rest;
* naive Bayes is the cheapest;
* LR with WEKA-style internal attribute elimination costs more than
  TAN.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..learners.base import learner_names, make_learner
from ..telemetry.dataset import Dataset
from .pipeline import ExperimentPipeline

__all__ = [
    "TimingResult",
    "measure_build_and_decide",
    "measure_decision_paths",
    "run_timing",
]

#: WEKA build+decide milliseconds reported by the paper, for reference.
PAPER_MILLISECONDS = {"lr": 90.0, "naive": 10.0, "svm": 1710.0, "tan": 50.0}


@dataclass
class TimingResult:
    """Measured build+decide time per learner (milliseconds)."""

    milliseconds: Dict[str, float]
    n_instances: int
    n_attributes: int
    repeats: int
    loop_milliseconds: Dict[str, float] = field(default_factory=dict)
    batch_milliseconds: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[str]:
        out = [
            f"Build+decide time ({self.n_instances} instances x "
            f"{self.n_attributes} attrs, best of {self.repeats}):",
            f"{'Learner':8} {'measured ms':>12} {'paper ms':>10}",
        ]
        for name in learner_names():
            if name not in self.milliseconds:
                continue
            measured = self.milliseconds[name]
            paper = PAPER_MILLISECONDS.get(name)
            paper_text = f"{paper:10.0f}" if paper is not None else f"{'-':>10}"
            out.append(f"{name:8} {measured:12.2f} {paper_text}")
        if self.batch_milliseconds:
            out.append("")
            out.append(
                f"Decision paths over {self.n_instances} windows "
                "(per-window loop vs one batch call):"
            )
            out.append(
                f"{'Learner':8} {'loop ms':>10} {'batch ms':>10} "
                f"{'speedup':>8}"
            )
            for name in learner_names():
                if name not in self.batch_milliseconds:
                    continue
                loop = self.loop_milliseconds[name]
                batch = self.batch_milliseconds[name]
                speedup = loop / batch if batch > 0 else float("inf")
                out.append(
                    f"{name:8} {loop:10.2f} {batch:10.2f} {speedup:7.1f}x"
                )
        return out


def measure_build_and_decide(
    learner_name: str, dataset: Dataset, *, repeats: int = 3
) -> float:
    """Best-of-N wall time (ms) to fit a learner and classify once."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    X = dataset.matrix()
    y = dataset.labels()
    probe = X[:1]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        learner = make_learner(learner_name)
        learner.fit(X, y)
        learner.predict(probe)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def measure_decision_paths(
    learner_name: str, dataset: Dataset, *, repeats: int = 3
) -> Tuple[float, float]:
    """Best-of-N wall times (ms) to classify every window in a run.

    Returns ``(loop_ms, batch_ms)``: the loop issues one predict call
    per window, the way an online monitor pulls single decisions; the
    batch path classifies the whole run in one vectorized call, the way
    the offline experiments score test datasets.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    X = dataset.matrix()
    y = dataset.labels()
    learner = make_learner(learner_name)
    learner.fit(X, y)
    loop_best = float("inf")
    batch_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for i in range(X.shape[0]):
            learner.predict(X[i : i + 1])
        loop_best = min(loop_best, time.perf_counter() - start)
        start = time.perf_counter()
        learner.predict(X)
        batch_best = min(batch_best, time.perf_counter() - start)
    return loop_best * 1000.0, batch_best * 1000.0


def run_timing(
    pipeline: ExperimentPipeline,
    *,
    learners: Sequence[str] = (),
    repeats: int = 3,
) -> TimingResult:
    """Regenerate the Section V.B timing comparison.

    Uses the ordering-mix app-tier HPC training dataset — the same kind
    of data every synopsis is built from.
    """
    dataset = pipeline.dataset("ordering", "app", "hpc", training=True)
    names = list(learners) or learner_names()
    times = {
        name: measure_build_and_decide(name, dataset, repeats=repeats)
        for name in names
    }
    loop_ms: Dict[str, float] = {}
    batch_ms: Dict[str, float] = {}
    for name in names:
        loop_ms[name], batch_ms[name] = measure_decision_paths(
            name, dataset, repeats=repeats
        )
    return TimingResult(
        milliseconds=times,
        n_instances=len(dataset),
        n_attributes=len(dataset.attribute_names),
        repeats=repeats,
        loop_milliseconds=loop_ms,
        batch_milliseconds=batch_ms,
    )

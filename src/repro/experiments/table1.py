"""Table I — prediction accuracy of individual synopses.

For each testing input mix (browsing → Table I(a), ordering → Table
I(b)), the table reports the balanced accuracy of every workload- and
tier-specific synopsis, at both metric levels, for all four learners.

The paper's observations this reproduction must preserve:

1. only the synopsis from the bottleneck tier *and* built from a
   similar workload is accurate (the diagonal structure);
2. hardware-counter metrics beat OS metrics, dramatically so for the
   browsing mix, whose overload the OS cannot see inside MySQL;
3. SVM and TAN lead, naive Bayes trails them, linear regression is
   worst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..learners.base import learner_names
from ..learners.validation import ConfusionMatrix
from ..telemetry.sampler import HPC_LEVEL, OS_LEVEL
from .pipeline import ExperimentPipeline, TRAINING_WORKLOADS

__all__ = ["Table1Cell", "Table1Result", "run_table1"]

TIERS = ("app", "db")


@dataclass(frozen=True)
class Table1Cell:
    """One accuracy cell of Table I."""

    input_workload: str
    synopsis_workload: str
    tier: str
    level: str
    learner: str
    balanced_accuracy: float


@dataclass
class Table1Result:
    """All cells for one input mix (one sub-table of Table I)."""

    input_workload: str
    cells: List[Table1Cell] = field(default_factory=list)

    def get(
        self, synopsis_workload: str, tier: str, level: str, learner: str
    ) -> float:
        for cell in self.cells:
            if (
                cell.synopsis_workload == synopsis_workload
                and cell.tier == tier
                and cell.level == level
                and cell.learner == learner
            ):
                return cell.balanced_accuracy
        raise KeyError((synopsis_workload, tier, level, learner))

    def best_cell(self) -> Table1Cell:
        return max(self.cells, key=lambda c: c.balanced_accuracy)

    def learners(self) -> List[str]:
        """Learners present in the cells, in canonical table order."""
        present = {cell.learner for cell in self.cells}
        ordered = [name for name in learner_names() if name in present]
        return ordered + sorted(present - set(ordered))

    def rows(self) -> List[str]:
        """Paper-style text table: rows = synopsis, cols = level×learner."""
        learners = self.learners()
        header = f"Table I ({self.input_workload} mix input)"
        sub = (
            f"{'Synopsis':22} "
            + " ".join(f"OS:{l:<5}" for l in learners)
            + "  "
            + " ".join(f"HPC:{l:<4}" for l in learners)
        )
        out = [header, sub]
        for workload in TRAINING_WORKLOADS:
            for tier in TIERS:
                values = []
                for level in (OS_LEVEL, HPC_LEVEL):
                    for learner in learners:
                        values.append(
                            self.get(workload, tier, level, learner)
                        )
                cols = " ".join(f"{v:8.3f}" for v in values)
                out.append(f"{workload + '/' + tier.upper():22} {cols}")
        return out


def run_table1(
    pipeline: ExperimentPipeline,
    input_workload: str,
    *,
    learners: Sequence[str] = (),
) -> Table1Result:
    """Regenerate one sub-table of Table I.

    ``input_workload`` is "browsing" for Table I(a) or "ordering" for
    Table I(b).  Synopses are trained on the pipeline's training runs
    and evaluated on the chosen testing run's tier datasets.
    """
    if input_workload not in ("browsing", "ordering"):
        raise ValueError("Table I inputs are 'browsing' or 'ordering'")
    result = Table1Result(input_workload=input_workload)
    names = list(learners) or learner_names()
    for level in (OS_LEVEL, HPC_LEVEL):
        test_sets = {
            tier: pipeline.dataset(input_workload, tier, level, training=False)
            for tier in TIERS
        }
        for synopsis_workload in TRAINING_WORKLOADS:
            for tier in TIERS:
                for learner in names:
                    synopsis = pipeline.synopsis(
                        synopsis_workload, tier, level, learner
                    )
                    # one vectorized pass per cell; the dataset memoizes
                    # the design matrix per attribute subset, so every
                    # learner sharing a selection reuses the same array
                    test = test_sets[tier]
                    pred = synopsis.predict_batch(
                        test.matrix(synopsis.attributes)
                    )
                    ba = ConfusionMatrix.from_predictions(
                        test.labels(), pred
                    ).balanced_accuracy
                    result.cells.append(
                        Table1Cell(
                            input_workload=input_workload,
                            synopsis_workload=synopsis_workload,
                            tier=tier,
                            level=level,
                            learner=learner,
                            balanced_accuracy=ba,
                        )
                    )
    return result
